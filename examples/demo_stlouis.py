"""Figure 3 reproduction: the SemaSK demo on Downtown St. Louis.

Builds the demo page for the paper's example query ("I am looking for a
bar to watch football that also serves delicious chicken...") in the
"Downtown Saint Louis" neighbourhood and writes it to ``semask_demo.html``.
Pass ``--serve`` to run the interactive demo on http://127.0.0.1:8808/.

Cold starts are snapshot-backed: the first run prepares the corpus and
caches it under ``--snapshot`` (a ``save_prepared`` directory); later
runs restore it through the schema-v3 fast path (persisted HNSW graphs,
no per-point upserts) in a fraction of the preparation time. Pass
``--snapshot ''`` to rebuild in memory every time.

Usage::

    python examples/demo_stlouis.py [--serve] [--out semask_demo.html]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core import semask
from repro.demo import DemoContext, DemoServer, build_demo_page
from repro.eval import get_corpus
from repro.geo import ReverseGeocoder
from repro.serving.bootstrap import load_or_prepare

DEFAULT_QUERY = (
    "I am looking for a bar to watch football that also serves delicious "
    "chicken. Do you have any recommendations?"
)


def make_context(
    poi_count: int | None = 1500, snapshot: str | None = None
) -> DemoContext:
    """The demo's state, restored from ``snapshot`` when possible.

    With a snapshot directory, preparation runs at most once (the PR 4
    ``from_matrix`` restore path loads later starts); without one, the
    in-process corpus cache is used as before.
    """
    if snapshot:
        prepared = load_or_prepare(snapshot, city="SL", count=poi_count)
        system = semask(prepared)
        dataset = prepared.dataset
    else:
        corpus = get_corpus("SL", count=poi_count)
        prepared, dataset = corpus.prepared, corpus.dataset
        system = semask(prepared, llm=corpus.llm)
    return DemoContext(
        system=system,
        dataset=dataset,
        geocoder=ReverseGeocoder(),
        city_code="SL",
        default_neighborhood="Downtown Saint Louis",
        default_query=DEFAULT_QUERY,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", action="store_true",
                        help="run the interactive HTTP demo")
    parser.add_argument("--out", default="semask_demo.html",
                        help="output path for the static page")
    parser.add_argument("--pois", type=int, default=1500,
                        help="POI count (0 = the paper's full 2,462)")
    parser.add_argument("--snapshot", default=".demo-cache/sl",
                        help="prepared-city snapshot directory for fast "
                             "cold starts ('' = rebuild in memory)")
    args = parser.parse_args()

    context = make_context(poi_count=args.pois or None,
                           snapshot=args.snapshot or None)
    if args.serve:
        DemoServer(context).serve_forever()
        return
    page = build_demo_page(context)
    out = Path(args.out)
    out.write_text(page, encoding="utf-8")
    print(f"wrote {out} ({len(page)} bytes); open it in a browser")


if __name__ == "__main__":
    main()
