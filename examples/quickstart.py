"""Quickstart: prepare a city and ask a semantics-aware question.

Runs the full SemaSK pipeline (paper Figure 2) on a downsized Saint Louis:
data preparation (address completion, tip summarization, embeddings into
the vector database) followed by filtering-and-refinement query processing.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.core import DataPreparation, SpatialKeywordQuery, semask
from repro.data import Dataset, YelpStyleGenerator
from repro.geo import SAINT_LOUIS

QUERY = (
    "I am looking for a bar to watch football that also serves delicious "
    "chicken. Do you have any recommendations?"
)


def main() -> None:
    print("== SemaSK quickstart ==")
    t0 = time.time()
    generator = YelpStyleGenerator(seed=7)
    dataset = Dataset(generator.generate_city(SAINT_LOUIS, count=1200), "SL")
    print(f"generated {len(dataset)} POIs in {time.time() - t0:.1f}s")

    t0 = time.time()
    preparation = DataPreparation()
    prepared = preparation.prepare(dataset)
    stats = dataset.statistics()
    print(
        f"prepared in {time.time() - t0:.1f}s — "
        f"avg {stats['avg_tips']:.1f} tips/POI, "
        f"{stats['avg_tip_tokens']:.0f} tip tokens/POI, "
        f"{stats['avg_summary_tokens']:.0f} summary tokens"
    )
    ledger = preparation.llm.ledger
    print(
        f"summarization used {ledger.total_calls()} LLM calls, "
        f"est. cost ${ledger.total_cost_usd():.2f}"
    )

    system = semask(prepared)
    query = SpatialKeywordQuery.around(SAINT_LOUIS.center, QUERY, 5, 5)
    result = system.query(query)

    print(f"\nQuery: {QUERY}")
    print(
        f"filtering took {result.timings.filter_s * 1000:.1f} ms; "
        f"refinement (modelled LLM latency) {result.timings.refine_modeled_s:.1f} s"
    )
    print(f"\nRecommended ({len(result.entries)}):")
    for entry in result.entries:
        record = dataset.get(entry.business_id)
        print(f"  * {entry.name} — {', '.join(record.categories[:2])}")
        print(f"    {entry.reason}")
    print(f"\nFetched but filtered out by the LLM ({len(result.filtered_out)}):")
    for entry in result.filtered_out:
        print(f"  - {entry.name}")


if __name__ == "__main__":
    main()
