"""Conversational refinement: narrowing an answer over multiple turns.

The paper's conclusion points at further semantics-aware query processing
studies; the most natural demo-system extension is follow-up turns. This
example asks for a place to eat, then narrows twice — each turn re-uses
the same spatial range and re-ranks with the LLM under the accumulated
constraints.

Usage::

    python examples/conversational_search.py
"""

from __future__ import annotations

from repro.core import ConversationalSession, SpatialKeywordQuery, semask
from repro.eval import get_corpus
from repro.geo import SAINT_LOUIS


def show(label: str, result) -> None:
    print(f"\n--- {label} ---")
    if not result.entries:
        print("  (no recommendations)")
    for entry in result.entries[:5]:
        print(f"  * {entry.name}")
        print(f"      {entry.reason[:110]}")


def main() -> None:
    corpus = get_corpus("SL", count=1500)
    system = semask(corpus.prepared, llm=corpus.llm, candidate_k=15)
    box = SpatialKeywordQuery.around(
        SAINT_LOUIS.center, "placeholder", 6, 6
    ).range
    session = ConversationalSession(system=system, range=box)

    first = session.ask("I want somewhere nice to grab a bite tonight")
    show("turn 1: somewhere to eat", first)

    second = session.refine("it should have outdoor seating")
    show("turn 2: ...with outdoor seating", second)

    third = session.refine("and a good wine selection")
    show("turn 3: ...and good wine", third)

    print("\nconversation history:", " | ".join(session.history()))
    print(
        f"all {len(session.turns)} turns reused the same 6 km x 6 km range; "
        f"final answer set: {len(third.entries)} POIs"
    )


if __name__ == "__main__":
    main()
