"""Build and persist the five-city synthetic Yelp-style dataset.

Reproduces the paper's data-preparation statistics (§3.1): five cities
with the paper's POI counts, ~11 tips and ~147 tip tokens per POI, and
~55-token LLM summaries. Writes one JSONL file per city plus a stats
table.

Usage::

    python examples/build_dataset.py [--out data/] [--pois N] [--no-summaries]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core import DataPreparation
from repro.data import Dataset, YelpStyleGenerator
from repro.eval import format_table
from repro.geo import EVALUATION_CITIES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="data")
    parser.add_argument("--pois", type=int, default=0,
                        help="POIs per city (0 = the paper's counts)")
    parser.add_argument("--no-summaries", action="store_true",
                        help="skip the LLM tip-summarization step")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    generator = YelpStyleGenerator(seed=args.seed)
    preparation = DataPreparation(summarize=not args.no_summaries)

    rows = []
    total = 0
    for city in EVALUATION_CITIES:
        count = args.pois or None
        dataset = Dataset(generator.generate_city(city, count=count), city.code)
        preparation.complete_address(dataset)
        if not args.no_summaries:
            preparation.summarize_tips(dataset)
        path = out_dir / f"{city.code.lower()}.jsonl.gz"
        dataset.save(path)
        stats = dataset.statistics()
        total += len(dataset)
        rows.append([
            city.code,
            city.name,
            len(dataset),
            f"{stats['avg_tips']:.1f}",
            f"{stats['avg_tip_tokens']:.0f}",
            f"{stats['avg_summary_tokens']:.0f}",
            path.name,
        ])

    print(format_table(
        ["Code", "City", "POIs", "tips/POI", "tip tokens/POI",
         "summary tokens", "file"],
        rows,
    ))
    print(f"\n{total} POIs total "
          "(paper: 19,795 across the same five cities)")
    if not args.no_summaries:
        ledger = preparation.llm.ledger
        print(f"summarization: {ledger.total_calls()} LLM calls, "
              f"est. cost ${ledger.total_cost_usd():.2f}")


if __name__ == "__main__":
    main()
