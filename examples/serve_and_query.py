"""End-to-end tour of the HTTP serving layer (PR 5).

Boots a small prepared city, starts the coalescing HTTP server on an
ephemeral port, and exercises every endpoint with plain ``urllib`` —
health, collection listing, a raw vector ``/search`` with a geo filter,
a natural-language ``/query``, and the snapshot admin pair
(``/admin/save`` then ``/admin/load``). Everything runs offline in one
process; CI runs this file as the serving smoke test.

Usage::

    python examples/serve_and_query.py
"""

from __future__ import annotations

import json
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.core.variants import semask
from repro.eval.corpus import build_corpus
from repro.geo.regions import city_by_code
from repro.serving.http import ServingContext, ServingServer

CITY = "SB"
QUERY = (
    "I am looking for a bar to watch football that also serves "
    "delicious chicken. Do you have any recommendations?"
)


def call(base: str, path: str, body: dict | None = None) -> dict | list:
    """One JSON request; GET when ``body`` is None, POST otherwise."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"} if body else {},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    print(f"== preparing a small {CITY} corpus ==")
    t0 = time.time()
    corpus = build_corpus(CITY, seed=11, count=300)
    prepared = corpus.prepared
    print(f"prepared {len(corpus.dataset)} POIs in {time.time() - t0:.1f}s")

    context = ServingContext(
        prepared.client,
        system=semask(prepared, llm=corpus.llm),
        default_center=city_by_code(CITY).center,
        own_client=False,  # the corpus owns its client
    )
    with ServingServer(context, port=0).start() as server:
        base = server.url
        print(f"serving at {base}\n")

        health = call(base, "/healthz")
        print(f"GET /healthz -> {health['status']}, "
              f"pipeline {health['pipeline']}, "
              f"collections {health['collections']}")

        collections = call(base, "/collections")
        info = collections[0]
        print(f"GET /collections -> {info['name']}: {info['points']} points, "
              f"dim {info['dim']}, hnsw_built={info['hnsw_built']}")

        # Raw vector search: embed client-side, filter to a 5 km box.
        center = city_by_code(CITY).center
        vector = prepared.embedder.embed(QUERY).tolist()
        box = {
            "key": "location",
            "min_lat": center.lat - 0.03, "max_lat": center.lat + 0.03,
            "min_lon": center.lon - 0.03, "max_lon": center.lon + 0.03,
        }
        search = call(base, "/search", {
            "collection": info["name"], "vector": vector, "k": 5,
            "filter": {"geo_bounding_box": box},
        })
        print(f"POST /search -> {len(search['hits'])} hits; top: "
              + ", ".join(h["payload"]["name"] for h in search["hits"][:3]))

        # Full pipeline query: the server embeds, filters, and refines.
        # (15 km range: the 300-POI downsized city is sparse at 5 km.)
        result = call(base, "/query", {"text": QUERY, "range_km": 15})
        names = [e["name"] for e in result["entries"][:3]]
        print(f"POST /query  -> {len(result['entries'])} recommended "
              f"({result['candidates_considered']} candidates); top: "
              + ", ".join(names))

        with tempfile.TemporaryDirectory() as tmp:
            snapshot = str(Path(tmp) / "snapshot")
            saved = call(base, "/admin/save", {
                "collection": info["name"], "directory": snapshot,
            })
            print(f"POST /admin/save -> wrote {saved['directory']}")
            loaded = call(base, "/admin/load", {
                "directory": snapshot, "mmap": True,
            })
            print(f"POST /admin/load -> {loaded['name']}: "
                  f"{loaded['points']} points (mmap)")

        stats = call(base, "/healthz").get("search_coalescer", {})
        print(f"\ncoalescer stats: {stats}")
    print("server shut down cleanly")


if __name__ == "__main__":
    main()
