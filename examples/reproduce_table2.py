"""Reproduce the paper's Table 2 (F1@10 per city, five systems).

By default runs a downsized-but-faithful version (1,200 POIs per city,
15 queries) in a few minutes; pass ``--full`` for the paper-scale run
(full POI counts, 30 queries per city).

Usage::

    python examples/reproduce_table2.py [--full] [--cities IN NS ...] [--k 10]
"""

from __future__ import annotations

import argparse

from repro.eval import format_table2, run_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale run (slower)")
    parser.add_argument("--cities", nargs="+",
                        default=["IN", "NS", "PH", "SB", "SL"])
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    poi_count = None if args.full else 1200
    queries = 30 if args.full else 15
    result = run_table2(
        cities=tuple(args.cities),
        k=args.k,
        queries_per_city=queries,
        seed=args.seed,
        poi_count=poi_count,
    )
    print(format_table2(result))
    print(f"\nelapsed: {result.elapsed_s:.1f}s  "
          f"({'full' if args.full else 'downsized'} run, seed {args.seed})")


if __name__ == "__main__":
    main()
