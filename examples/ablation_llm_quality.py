"""Ablation: how good does the refinement LLM need to be?

Sweeps the simulated refinement model's judgment-noise and lexicon-coverage
knobs and plots F1@10 — interpolating between an ideal judge and a model so
degraded it underperforms embeddings-only retrieval. This quantifies the
design choice at the heart of the paper: the pipeline's quality is the
LLM's judgment quality.

Usage::

    python examples/ablation_llm_quality.py [--pois N] [--queries N]
"""

from __future__ import annotations

import argparse

from repro.eval import build_test_queries, get_corpus
from repro.eval.ablations import llm_quality_sweep
from repro.eval.figures import bar_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pois", type=int, default=0,
                        help="POIs (0 = the paper's Saint Louis count)")
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    corpus = get_corpus("SL", seed=args.seed, count=args.pois or None)
    queries = build_test_queries(corpus, count=args.queries)
    print(f"corpus: {len(corpus.dataset)} POIs, {len(queries)} queries\n")

    points = llm_quality_sweep(corpus, queries)
    chart = {
        f"drop={p.drop_rate:.2f} miss={p.knowledge_slope:.1f}": p.f1
        for p in points
    }
    print("F1@10 vs refinement-model degradation "
          "(drop = judgment noise, miss = lexicon slope):\n")
    print(bar_chart(chart, width=44, max_value=1.0))
    print(
        "\nReading: the real gpt-4o profile sits near the second bar; "
        "once the judge misses most paraphrases, refinement stops paying "
        "for its latency."
    )


if __name__ == "__main__":
    main()
