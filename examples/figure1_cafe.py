"""Figure 1 reproduction: keyword search for "café" misses real cafés.

The paper motivates SemaSK with a Google Maps search for "café" in
Melbourne CBD that only returns businesses whose *text contains the word*
"café", missing popular cafés like "Industry Beans". This script measures
that phenomenon on the synthetic Melbourne: how many true cafés does
boolean keyword matching find versus SemaSK's embedding+LLM pipeline?

Usage::

    python examples/figure1_cafe.py
"""

from __future__ import annotations

from repro.baselines import KeywordMatcher
from repro.core import SpatialKeywordQuery, semask
from repro.eval import get_corpus
from repro.eval.groundtruth import true_concepts
from repro.geo import MELBOURNE
from repro.semantics import default_ontology

QUERY = "cafe"


def main() -> None:
    print("== Figure 1: querying 'café' in Melbourne CBD ==")
    corpus = get_corpus("MEL", count=600)
    graph, _ = default_ontology()
    box = SpatialKeywordQuery.around(MELBOURNE.center, QUERY, 5, 5).range

    in_range = corpus.dataset.in_range(box)
    true_cafes = [
        r
        for r in in_range
        if graph.any_satisfies(true_concepts(r), "cafe")
    ]
    print(f"{len(in_range)} POIs in range; {len(true_cafes)} are truly cafés")

    matcher = KeywordMatcher(match_all=True).fit(list(corpus.dataset))
    keyword_hits = {
        r.business_id for r in true_cafes if matcher.matches(QUERY, r)
    }
    missed = [r for r in true_cafes if r.business_id not in keyword_hits]
    print(
        f"\nKeyword matching finds {len(keyword_hits)}/{len(true_cafes)} cafés."
    )
    print("Missed by keyword search (no 'cafe' token anywhere):")
    for record in missed[:8]:
        print(f"  - {record.name}  [{', '.join(record.categories[:2])}]")

    system = semask(corpus.prepared, llm=corpus.llm, candidate_k=20)
    result = system.query(
        SpatialKeywordQuery(range=box, text="somewhere for a flat white and a pastry")
    )
    semask_hits = {
        e.business_id
        for e in result.entries
        if e.business_id in {r.business_id for r in true_cafes}
    }
    recovered = semask_hits - keyword_hits
    print(
        f"\nSemaSK (semantic query) recommends {len(result.entries)} POIs, "
        f"{len(semask_hits)} of them true cafés,"
    )
    print(
        f"including {len(recovered)} café(s) keyword matching could not find:"
    )
    for business_id in list(recovered)[:8]:
        record = corpus.dataset.get(business_id)
        print(f"  + {record.name}  [{', '.join(record.categories[:2])}]")


if __name__ == "__main__":
    main()
