"""``python -m tools.reprolint [paths...]`` entry point."""

from tools.reprolint.core import main

raise SystemExit(main())
