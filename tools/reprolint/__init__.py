"""reprolint: static analysis for this repo's concurrency invariants."""

from tools.reprolint.core import (
    Finding,
    LintContext,
    lint_source,
    main,
    parse_directives,
    run_paths,
)
from tools.reprolint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "lint_source",
    "main",
    "parse_directives",
    "run_paths",
]
