"""The reprolint rule catalogue (RL01–RL06).

Every rule is a *lexical* encoding of an invariant the repo's concurrent
code depends on — the analyzer checks what it can see in one file's AST
and leaves aliasing/interprocedural cases to the runtime lock-order
auditor (:mod:`repro.testing.lockwatch`). The catalogue:

RL01  write-locked state — mutations of lock-guarded collection state
      happen inside ``with self._write_lock`` (or a method annotated
      ``# reprolint: holds-write-lock``).
RL02  apply-then-log — inside a locked region, no WAL append call
      textually precedes a state mutation (the WAL records *accepted*
      writes; logging first would ack writes that were never applied).
RL03  no blocking I/O under a lock — fsync/open/sleep/socket calls do
      not run while a lock is held (allowlist: ``WriteAheadLog``'s
      fsync-under-lock, which IS the durability contract).
RL04  joinable daemons — every ``threading.Thread(daemon=True)``
      constructed in a class is reachable from a ``close``/``shutdown``
      method that joins it.
RL05  no swallowed broad excepts — ``except Exception`` must re-raise,
      surface the error (use/log/warn/propagate it), or carry a
      ``# reprolint: last-resort`` justification.
RL06  lock-free pickling — classes that hold locks/threads define
      ``__getstate__``/``__reduce__`` so a pickled replica (the
      ``ProcessShardExecutor`` path) never carries them.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint.core import Finding, LintContext

#: Methods that may mutate guarded state without a visible lock: either
#: the object cannot be shared yet (construction / unpickling) or the
#: method is itself the pickling seam.
_EXEMPT_METHODS = {
    "__init__",
    "__new__",
    "__getstate__",
    "__setstate__",
    "_init_fields",
}

#: Container/domain calls that mutate the object they are invoked on.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "update",
    "add",
    "setdefault",
    "sort",
    "reverse",
    "index_point",
    "reindex_point",
    "create_index",
}

#: Call names that block on the outside world (RL03).
_BLOCKING_ATTR_CALLS = {
    "fsync",
    "sleep",
    "connect",
    "accept",
    "recv",
    "recv_bytes",
    "send",
    "send_bytes",
    "sendall",
    "open",
}
_BLOCKING_NAME_CALLS = {"open"}

#: RL03 allowlist: (path suffix, class name) pairs whose lock-held I/O
#: is the intended design. The WAL fsyncs under its lock *on purpose* —
#: an append is durable before the call returns, and the lock is what
#: orders the log against the in-memory apply.
_RL03_ALLOWLIST = (("vectordb/wal.py", "WriteAheadLog"),)

#: Methods whose presence counts as a shutdown/join path (RL04).
_JOINER_METHODS = {"close", "shutdown", "stop", "join", "__exit__"}

#: Calls that surface an exception from a broad handler (RL05).
_SURFACING_CALLS = {
    "warn",
    "warning",
    "error",
    "exception",
    "critical",
    "info",
    "debug",
    "log",
    "print",
    "set_exception",
    "fail",
}

#: threading factories whose product must not be pickled (RL06).
_SYNC_FACTORIES = {"Lock", "RLock", "Condition", "Event", "Thread",
                   "Semaphore", "BoundedSemaphore", "Barrier"}


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------


def _attr_chain(node: ast.expr) -> list[str]:
    """``self._wal.append_points`` -> ["self", "_wal", "append_points"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Subscript):
        return _attr_chain(node.value) + ["[]"] + list(reversed(parts))
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        return _attr_chain(node.func) + ["()"] + list(reversed(parts))
    return list(reversed(parts))


def _is_lockish(expr: ast.expr) -> bool:
    """Does this with-item expression look like a lock?

    True when the terminal attribute or name contains ``lock`` (so
    ``self._write_lock``, ``collection.write_lock``, ``self._locks[i]``
    all count). Condition variables named ``*_cv`` and one-shot flags
    are deliberately out of scope — this is a lexical rule.
    """
    if isinstance(expr, ast.Call):  # e.g. lock.acquire() is not a with-item
        return False
    if isinstance(expr, ast.Subscript):
        return _is_lockish(expr.value)
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    return name is not None and "lock" in name.lower()


def _is_write_lock_item(expr: ast.expr) -> bool:
    """Specifically the collection write lock (RL01/RL02 regions)."""
    chain = _attr_chain(expr)
    return bool(chain) and chain[-1] in ("_write_lock", "write_lock")


def _self_attr_target(node: ast.expr) -> str | None:
    """The ``X`` of ``self.X`` / ``self.X[...]`` targets, else None."""
    if isinstance(node, (ast.Subscript, ast.Starred)):
        return _self_attr_target(node.value)
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return node.attr
    return None


def _iter_class_methods(
    cls: ast.ClassDef,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_classlevel_method(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """classmethod/staticmethod — no ``self``, nothing shared yet."""
    for deco in fn.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else (
            deco.id if isinstance(deco, ast.Name) else None
        )
        if name in ("classmethod", "staticmethod"):
            return True
    return False


def _classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def _class_assigns_write_lock(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _self_attr_target(target) == "_write_lock":
                    return True
    return False


def _guarded_mutations(
    body: list[ast.stmt],
) -> Iterator[tuple[int, str, str]]:
    """Yield ``(line, attr, description)`` for each mutation of a
    ``self._x`` data attribute inside ``body`` (recursive)."""
    for stmt in body:
        for node in ast.walk(stmt):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                attr = _self_attr_target(target)
                if attr and attr.startswith("_") and attr != "_write_lock":
                    yield node.lineno, attr, f"assignment to self.{attr}"
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    len(chain) >= 3
                    and chain[0] == "self"
                    and chain[1].startswith("_")
                    and chain[1] != "_write_lock"
                    and chain[-1] in _MUTATOR_METHODS
                ):
                    yield (
                        node.lineno,
                        chain[1],
                        f"self.{chain[1]}.{chain[-1]}(...) mutation",
                    )


def _locked_lines(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    lock_test=_is_write_lock_item,
) -> set[int]:
    """Every source line lexically inside a matching ``with`` block."""
    lines: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            lock_test(item.context_expr) for item in node.items
        ):
            end = node.end_lineno or node.lineno
            lines.update(range(node.lineno, end + 1))
    return lines


# ----------------------------------------------------------------------
# RL01 — write-locked state mutation
# ----------------------------------------------------------------------


class RL01:
    id = "RL01"
    description = (
        "collection state mutations must hold the write lock "
        "(with self._write_lock, or a holds-write-lock method)"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in _classes(ctx.tree):
            if not _class_assigns_write_lock(cls):
                continue
            for fn in _iter_class_methods(cls):
                if fn.name in _EXEMPT_METHODS or _is_classlevel_method(fn):
                    continue
                if ctx.directives.marks_write_lock_holder(fn.lineno):
                    continue
                locked = _locked_lines(fn)
                for line, attr, what in _guarded_mutations(fn.body):
                    if line not in locked:
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=ctx.path,
                                line=line,
                                message=(
                                    f"{cls.name}.{fn.name}: {what} outside "
                                    "`with self._write_lock` (annotate "
                                    "`# reprolint: holds-write-lock` if a "
                                    "caller holds it)"
                                ),
                            )
                        )
        return findings


# ----------------------------------------------------------------------
# RL02 — apply-then-log ordering
# ----------------------------------------------------------------------


def _wal_append_calls(body: list[ast.stmt]) -> Iterator[tuple[int, str]]:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    chain
                    and chain[-1].startswith("append")
                    and any("wal" in part.lower() for part in chain[:-1])
                ):
                    yield node.lineno, ".".join(chain)


class RL02:
    id = "RL02"
    description = (
        "apply-then-log: WAL appends must not textually precede state "
        "mutations in the same locked region"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in _classes(ctx.tree):
            if not _class_assigns_write_lock(cls):
                continue
            for fn in _iter_class_methods(cls):
                if fn.name in _EXEMPT_METHODS or _is_classlevel_method(fn):
                    continue
                regions: list[tuple[int, int]] = []
                if ctx.directives.marks_write_lock_holder(fn.lineno):
                    regions.append(
                        (fn.lineno, fn.end_lineno or fn.lineno)
                    )
                for node in ast.walk(fn):
                    if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                        _is_write_lock_item(item.context_expr)
                        for item in node.items
                    ):
                        regions.append(
                            (node.lineno, node.end_lineno or node.lineno)
                        )
                if not regions:
                    continue
                appends = list(_wal_append_calls(fn.body))
                mutations = list(_guarded_mutations(fn.body))
                for start, end in regions:
                    for a_line, call in appends:
                        if not start <= a_line <= end:
                            continue
                        late = [
                            (m_line, what)
                            for m_line, _attr, what in mutations
                            if start <= m_line <= end and m_line > a_line
                        ]
                        if late:
                            m_line, what = late[0]
                            findings.append(
                                Finding(
                                    rule=self.id,
                                    path=ctx.path,
                                    line=a_line,
                                    message=(
                                        f"{cls.name}.{fn.name}: {call} "
                                        f"precedes state mutation at line "
                                        f"{m_line} ({what}); apply to "
                                        "memory first, then log"
                                    ),
                                )
                            )
        return findings


# ----------------------------------------------------------------------
# RL03 — no blocking I/O while a lock is held
# ----------------------------------------------------------------------


class RL03:
    id = "RL03"
    description = (
        "no blocking I/O (fsync/open/sleep/socket ops) inside a "
        "`with <lock>` block; allowlist: WriteAheadLog"
    )

    def _allowlisted(self, ctx: LintContext, cls: ast.ClassDef | None) -> bool:
        for suffix, class_name in _RL03_ALLOWLIST:
            if ctx.path.replace("\\", "/").endswith(suffix) and (
                cls is not None and cls.name == class_name
            ):
                return True
        return False

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        # Map each with-block to its enclosing class (for the allowlist).
        scopes: list[tuple[ast.ClassDef | None, ast.AST]] = [(None, ctx.tree)]
        for cls in _classes(ctx.tree):
            scopes.append((cls, cls))
        seen: set[int] = set()
        for cls, scope in reversed(scopes):  # innermost (classes) first
            if self._allowlisted(ctx, cls):
                for node in ast.walk(scope):
                    if isinstance(node, (ast.With, ast.AsyncWith)):
                        seen.add(id(node))
                continue
            for node in ast.walk(scope):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if not any(
                    _is_lockish(item.context_expr) for item in node.items
                ):
                    continue
                for inner in ast.walk(node):
                    if not isinstance(inner, ast.Call):
                        continue
                    func = inner.func
                    name = None
                    if isinstance(func, ast.Attribute):
                        if func.attr in _BLOCKING_ATTR_CALLS:
                            name = ".".join(_attr_chain(func))
                    elif isinstance(func, ast.Name):
                        if func.id in _BLOCKING_NAME_CALLS:
                            name = func.id
                    if name is not None:
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=ctx.path,
                                line=inner.lineno,
                                message=(
                                    f"blocking call {name}(...) while "
                                    "holding a lock (taken at line "
                                    f"{node.lineno}); move the I/O outside "
                                    "the locked region"
                                ),
                            )
                        )
        return findings


# ----------------------------------------------------------------------
# RL04 — daemon threads need a join path
# ----------------------------------------------------------------------


def _is_thread_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "Thread":
        base = func.value
        return isinstance(base, ast.Name) and base.id == "threading"
    return isinstance(func, ast.Name) and func.id == "Thread"


def _is_daemon_true(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _has_join_path(cls: ast.ClassDef) -> bool:
    for fn in _iter_class_methods(cls):
        if fn.name not in _JOINER_METHODS:
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "join":
                    return True
                # close()/shutdown() delegating to another shutdown-ish
                # method still counts as a reachable join path.
                if isinstance(func, ast.Attribute) and (
                    func.attr in _JOINER_METHODS
                ):
                    return True
    return False


class RL04:
    id = "RL04"
    description = (
        "threading.Thread(daemon=True) must be reachable from a "
        "close()/shutdown() method that joins it"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        claimed: set[int] = set()
        for cls in _classes(ctx.tree):
            has_join = _has_join_path(cls)
            for node in ast.walk(cls):
                if isinstance(node, ast.Call) and _is_thread_call(node):
                    claimed.add(id(node))
                    if _is_daemon_true(node) and not has_join:
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=ctx.path,
                                line=node.lineno,
                                message=(
                                    f"{cls.name} starts a daemon thread but "
                                    "defines no close()/shutdown() that "
                                    "joins it — daemon threads leak until "
                                    "interpreter exit"
                                ),
                            )
                        )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _is_thread_call(node)
                and id(node) not in claimed
                and _is_daemon_true(node)
            ):
                findings.append(
                    Finding(
                        rule=self.id,
                        path=ctx.path,
                        line=node.lineno,
                        message=(
                            "daemon thread constructed outside a class "
                            "with a join path; pair it with an explicit "
                            "shutdown/join"
                        ),
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RL05 — broad except handlers must surface or justify
# ----------------------------------------------------------------------


def _is_broad(handler: ast.ExceptHandler) -> bool:
    def broad_name(node: ast.expr | None) -> bool:
        return isinstance(node, ast.Name) and node.id in (
            "Exception",
            "BaseException",
        )

    if handler.type is None:
        return True
    if broad_name(handler.type):
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(broad_name(el) for el in handler.type.elts)
    return False


def _surfaces(handler: ast.ExceptHandler) -> bool:
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if bound and isinstance(node, ast.Name) and node.id == bound and (
            isinstance(node.ctx, ast.Load)
        ):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in _SURFACING_CALLS:
                return True
    return False


class RL05:
    id = "RL05"
    description = (
        "broad `except Exception` must re-raise, surface the error, or "
        "carry `# reprolint: last-resort <why>`"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _surfaces(node):
                continue
            if ctx.directives.marks_last_resort(node.lineno):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "<bare>"
            )
            findings.append(
                Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    message=(
                        f"broad `except {caught}` swallows the error: "
                        "narrow the type, surface the failure, or justify "
                        "with `# reprolint: last-resort <why>`"
                    ),
                )
            )
        return findings


# ----------------------------------------------------------------------
# RL06 — lock-holding classes must pickle lock-free
# ----------------------------------------------------------------------


def _holds_sync_primitives(cls: ast.ClassDef) -> list[tuple[int, str]]:
    held: list[tuple[int, str]] = []
    for node in ast.walk(cls):
        call = None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                if func.value.id == "threading" and (
                    func.attr in _SYNC_FACTORIES
                ):
                    call = f"threading.{func.attr}"
            # field(default_factory=threading.Lock) in dataclasses
            for kw in node.keywords:
                if kw.arg == "default_factory" and isinstance(
                    kw.value, ast.Attribute
                ):
                    base = kw.value.value
                    if isinstance(base, ast.Name) and (
                        base.id == "threading"
                        and kw.value.attr in _SYNC_FACTORIES
                    ):
                        call = f"threading.{kw.value.attr}"
        if call is not None:
            held.append((node.lineno, call))
    return held


class RL06:
    id = "RL06"
    description = (
        "classes holding locks/threads must define __getstate__ or "
        "__reduce__ that strips them before pickling"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in _classes(ctx.tree):
            held = _holds_sync_primitives(cls)
            if not held:
                continue
            method_names = {fn.name for fn in _iter_class_methods(cls)}
            if method_names & {"__getstate__", "__reduce__", "__reduce_ex__"}:
                continue
            line, factory = held[0]
            findings.append(
                Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=cls.lineno,
                    message=(
                        f"{cls.name} holds {factory} (line {line}) but "
                        "defines no __getstate__/__reduce__; pickling it "
                        "(process-shard replicas) would ship a live lock "
                        "or thread"
                    ),
                )
            )
        return findings


ALL_RULES = [RL01(), RL02(), RL03(), RL04(), RL05(), RL06()]
