#!/usr/bin/env python
"""Docs checker: validate markdown links/anchors, smoke-test the quickstart.

Two modes, both stdlib-only (CI runs each):

* default — scan ``README.md`` and ``docs/*.md`` for markdown links.
  Relative file links must point at files that exist; ``#anchor``
  fragments (in-page or cross-page) must match a heading's GitHub-style
  slug. External (``http``/``https``/``mailto``) links are not fetched
  — no network in CI — but must at least parse.
* ``--quickstart`` — extract the README's first fenced ``python`` block
  and execute it (with ``src`` on ``PYTHONPATH``), so the quickstart
  can never rot silently.

Exit code 0 = all good; 1 = problems (each printed on its own line).
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"(?<!!)\[(?P<text>[^\]]+)\]\((?P<target>[^)\s]+)\)")
_IMAGE = re.compile(r"!\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(?P<title>.+?)\s*$", re.MULTILINE)
_FENCE = re.compile(r"^```")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def github_slug(title: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens. Backticks/formatting markers are stripped first."""
    title = re.sub(r"[`*_]", "", title)
    title = title.lower().strip()
    title = re.sub(r"[^\w\- ]", "", title)
    return title.replace(" ", "-")


def strip_code_blocks(text: str) -> str:
    """Blank out fenced code blocks so example links are not checked."""
    lines, in_fence = [], False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return "\n".join(lines)


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        text = strip_code_blocks(path.read_text(encoding="utf-8"))
        slugs: set[str] = set()
        counts: dict[str, int] = {}
        for match in _HEADING.finditer(text):
            slug = github_slug(match.group("title"))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_links() -> list[str]:
    problems: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}
    for doc in doc_files():
        text = strip_code_blocks(doc.read_text(encoding="utf-8"))
        rel = doc.relative_to(REPO)
        for match in list(_LINK.finditer(text)) + list(_IMAGE.finditer(text)):
            target = match.group("target")
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # external: not fetched in CI
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(f"{rel}: broken link -> {target}")
                    continue
            else:
                resolved = doc  # pure in-page anchor
            if fragment:
                if resolved.suffix != ".md":
                    problems.append(
                        f"{rel}: anchor on non-markdown target -> {target}"
                    )
                    continue
                if fragment not in anchors_of(resolved, anchor_cache):
                    problems.append(f"{rel}: unknown anchor -> {target}")
    return problems


def extract_quickstart() -> str:
    """The README's first fenced ``python`` block."""
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    match = re.search(r"```python\n(.*?)```", readme, re.DOTALL)
    if match is None:
        raise SystemExit("README.md has no ```python fenced block")
    return match.group(1)


def run_quickstart() -> int:
    code = extract_quickstart()
    print("--- README quickstart block ---")
    print(code)
    print("--- running ---")
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    with tempfile.NamedTemporaryFile(
        "w", suffix=".py", delete=False
    ) as handle:
        handle.write(code)
        script = handle.name
    try:
        return subprocess.run(
            [sys.executable, script], env=env, timeout=600
        ).returncode
    finally:
        os.unlink(script)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quickstart", action="store_true",
        help="execute the README's first python code block",
    )
    args = parser.parse_args()
    if args.quickstart:
        code = run_quickstart()
        print("quickstart OK" if code == 0 else "quickstart FAILED")
        return code
    problems = check_links()
    for problem in problems:
        print(problem)
    checked = ", ".join(str(f.relative_to(REPO)) for f in doc_files())
    if problems:
        print(f"\n{len(problems)} problem(s) in: {checked}")
        return 1
    print(f"docs OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
