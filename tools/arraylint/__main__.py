"""``python -m tools.arraylint`` entry point."""

import sys

from tools.arraylint.core import main

if __name__ == "__main__":
    sys.exit(main())
