"""The arraylint rule catalogue (AL01–AL05).

Every rule is a *lexical* encoding of a numeric-memory invariant the
vector engine depends on — the analyzer checks what it can see in one
file's AST and leaves actual allocation behaviour (peaks, buffer
sharing across modules) to the runtime auditor
(:mod:`repro.testing.memwatch`). The catalogue:

AL01  explicit dtypes in hot modules — every dtype-carrying numpy
      constructor (``np.array``/``zeros``/``empty``/``fromiter``/
      ``arange``/…) in ``vectordb/``, ``spatial/``, or ``embeddings/``
      passes ``dtype=`` explicitly, and reductions stored into instance
      state declare theirs. Implicit float64 creep doubles resident
      size without a test failing; explicit ``dtype=np.float64`` is a
      reviewable decision and passes.
AL02  no hidden full copies — ``.astype(...)`` without ``copy=False``
      copies even when the dtype already matches (the load-path bug
      class), and ``np.ascontiguousarray``/``np.copy`` applied to a
      class's own vector/matrix storage materializes what may be an
      mmap view. Both are allowed only inside a function annotated
      ``# arraylint: cow-seam``.
AL03  mmap read-only discipline — a function that adopts a
      caller-provided matrix into vector storage (``x._vectors = arg``)
      must visibly handle ``.flags.writeable``, and in-place writes to
      such storage (``self._vectors[i] = …``) need a visible writeable
      guard or a ``cow-seam`` annotation. Adopted matrices may be
      memory-mapped snapshots; writing through them is corruption.
AL04  serialization byte-order hygiene — ``struct`` format strings and
      ``np.frombuffer``/``np.fromfile`` dtypes at serialization
      boundaries must be byte-order-explicit (``"<II"``, ``"<f4"``),
      and a module's reader dtypes must mirror its writer dtypes.
      Native-endian defaults make WAL/snapshot bytes machine-dependent.
AL05  array contracts on public numeric entrypoints — ``search``/
      ``search_batch``/``from_vectors``/``from_matrix``/``upsert`` and
      the distance kernels in hot numpy modules carry an
      ``@array_contract`` declaration so shape/dtype expectations are
      machine-checkable (enforced under memwatch).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePosixPath

from tools.arraylint.core import Finding, LintContext

#: Path components that mark a "hot" numeric module: these hold (or
#: feed) the per-vector data plane, where a stray float64 or hidden
#: copy scales with corpus size.
_HOT_PARTS = {"vectordb", "spatial", "embeddings"}

#: numpy constructors that take a ``dtype=`` and otherwise infer one
#: (AL01). The ``*_like`` family inherits its dtype and is exempt.
_DTYPE_CTORS = {
    "array",
    "asarray",
    "ascontiguousarray",
    "asfortranarray",
    "zeros",
    "ones",
    "empty",
    "full",
    "fromiter",
    "frombuffer",
    "fromfile",
    "arange",
    "linspace",
}

#: numpy reductions whose accumulator dtype matters when the result is
#: stored into instance state (AL01): summing float32 in float64 is the
#: textbook silent upcast.
_REDUCTIONS = {"sum", "mean", "prod", "cumsum", "cumprod"}

#: Attribute names that denote per-vector matrix storage on a class
#: (AL02/AL03): the arrays that may be mmap-adopted.
_STORAGE_MARKERS = ("vector", "matrix")

#: struct callables whose first argument is a format string (AL04).
_STRUCT_FMT_CALLS = {
    "Struct",
    "pack",
    "pack_into",
    "unpack",
    "unpack_from",
    "calcsize",
}

#: Byte-order prefixes that make a struct format / dtype string
#: machine-independent.
_BYTE_ORDER_PREFIXES = ("<", ">", "!", "=")

#: Public numeric entrypoints that must declare an ``@array_contract``
#: (AL05) when defined in a hot module that imports numpy.
_CONTRACT_ENTRYPOINTS = {
    "search",
    "search_batch",
    "from_vectors",
    "from_matrix",
    "upsert",
    "similarity",
    "pairwise_similarity",
    "normalize_rows",
}


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------


def _attr_chain(node: ast.expr) -> list[str]:
    """``self._vectors.flags.writeable`` -> ["self", "_vectors", ...]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _is_hot(path: str) -> bool:
    parts = set(PurePosixPath(path.replace("\\", "/")).parts)
    return bool(parts & _HOT_PARTS)


def _np_call(call: ast.Call) -> str | None:
    """Return ``"arange"`` for ``np.arange(...)``/``numpy.arange(...)``."""
    chain = _attr_chain(call.func)
    if len(chain) == 2 and chain[0] in ("np", "numpy"):
        return chain[1]
    return None


def _has_kw(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _get_kw(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _imports_numpy(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.split(".")[0] == "numpy" for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] == "numpy":
                return True
    return False


def _functions(
    tree: ast.Module,
) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(enclosing_class_or_None, function)`` pairs, outermost
    class attribution winning for nested defs."""

    def visit(node: ast.AST, cls: str | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from visit(child, cls)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)


def _enclosing_function(
    tree: ast.Module, target: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """Innermost function whose span contains ``target`` (by position)."""
    best = None
    for _, fn in _functions(tree):
        if fn.lineno <= target.lineno <= (fn.end_lineno or fn.lineno):
            if best is None or fn.lineno >= best.lineno:
                best = fn
    return best


def _in_cow_seam(ctx: LintContext, node: ast.AST) -> bool:
    fn = _enclosing_function(ctx.tree, node)
    return fn is not None and ctx.directives.marks_cow_seam(fn.lineno)


def _mentions_writeable(fn: ast.AST) -> bool:
    """Does the function body reference ``.flags.writeable`` anywhere
    (either testing it — the COW guard — or setting it on adoption)?"""
    return any(
        isinstance(node, ast.Attribute) and node.attr == "writeable"
        for node in ast.walk(fn)
    )


def _is_storage_attr(node: ast.expr) -> bool:
    """``self._vectors`` / ``index._matrix``-style storage attribute."""
    chain = _attr_chain(node)
    return (
        len(chain) >= 2
        and any(m in chain[-1].lower() for m in _STORAGE_MARKERS)
    )


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return {n for n in names if n not in ("self", "cls")}


# ----------------------------------------------------------------------
# AL01 — explicit dtypes in hot modules
# ----------------------------------------------------------------------


class ExplicitDtypeRule:
    id = "AL01"
    description = (
        "hot-module numpy constructors and stored reductions pass an "
        "explicit dtype (no implicit float64 creep)"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        if not _is_hot(ctx.path):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _np_call(node)
                if (
                    name in _DTYPE_CTORS
                    and not _has_kw(node, "dtype")
                    # frombuffer's dtype may be the second positional.
                    and not (name == "frombuffer" and len(node.args) >= 2)
                ):
                    findings.append(Finding(
                        rule=self.id, path=ctx.path, line=node.lineno,
                        message=(
                            f"np.{name}() without an explicit dtype= in a "
                            "hot module; the inferred default (often "
                            "float64/int64) silently doubles memory"
                        ),
                    ))
            elif isinstance(node, ast.Assign):
                findings.extend(self._stored_reduction(ctx, node))
        return findings

    def _stored_reduction(
        self, ctx: LintContext, node: ast.Assign
    ) -> list[Finding]:
        if not isinstance(node.value, ast.Call):
            return []
        name = _np_call(node.value)
        if name not in _REDUCTIONS or _has_kw(node.value, "dtype"):
            return []
        for target in node.targets:
            chain = _attr_chain(target)
            if len(chain) >= 2 and chain[0] == "self":
                return [Finding(
                    rule=self.id, path=ctx.path, line=node.lineno,
                    message=(
                        f"np.{name}() result stored into instance state "
                        "without an explicit dtype= (float32 inputs "
                        "accumulate in float64 by default)"
                    ),
                )]
        return []


# ----------------------------------------------------------------------
# AL02 — no hidden full copies
# ----------------------------------------------------------------------


class HiddenCopyRule:
    id = "AL02"
    description = (
        "no hidden full-copy ops: .astype() carries copy=False, and "
        "ascontiguousarray/np.copy never materialize adopted storage "
        "outside a cow-seam function"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        if not _is_hot(ctx.path):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                copy_kw = _get_kw(node, "copy")
                copies = not (
                    isinstance(copy_kw, ast.Constant)
                    and copy_kw.value is False
                )
                if copies and not _in_cow_seam(ctx, node):
                    findings.append(Finding(
                        rule=self.id, path=ctx.path, line=node.lineno,
                        message=(
                            ".astype() copies even when the dtype already "
                            "matches; pass copy=False or annotate the "
                            "enclosing function as a cow-seam"
                        ),
                    ))
            elif _np_call(node) in ("ascontiguousarray", "copy"):
                args = list(node.args) + [
                    kw.value for kw in node.keywords if kw.arg == "a"
                ]
                materializes = any(
                    _is_storage_attr(sub)
                    for arg in args
                    for sub in ast.walk(arg)
                    if isinstance(sub, ast.Attribute)
                )
                if materializes and not _in_cow_seam(ctx, node):
                    findings.append(Finding(
                        rule=self.id, path=ctx.path, line=node.lineno,
                        message=(
                            "materializes a class's vector/matrix storage "
                            "(possibly an mmap view) outside an annotated "
                            "cow-seam function"
                        ),
                    ))
        return findings


# ----------------------------------------------------------------------
# AL03 — mmap read-only discipline
# ----------------------------------------------------------------------


class MmapReadOnlyRule:
    id = "AL03"
    description = (
        "adopted matrices are marked writeable=False, and in-place "
        "writes to vector storage sit behind a writeable guard or a "
        "cow-seam annotation"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        if not _is_hot(ctx.path) or not _imports_numpy(ctx.tree):
            return []
        findings: list[Finding] = []
        for _, fn in _functions(ctx.tree):
            guarded = _mentions_writeable(fn)
            seam = ctx.directives.marks_cow_seam(fn.lineno)
            params = _param_names(fn)
            for node in ast.walk(fn):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                if _enclosing_function(ctx.tree, node) is not fn:
                    continue
                if isinstance(node, ast.Assign):
                    findings.extend(self._check_adoption(
                        ctx, fn, node, params, guarded, seam
                    ))
                    findings.extend(self._check_inplace(
                        ctx, node.targets, node.lineno, guarded, seam
                    ))
                else:
                    findings.extend(self._check_inplace(
                        ctx, [node.target], node.lineno, guarded, seam
                    ))
        return findings

    def _check_adoption(
        self,
        ctx: LintContext,
        fn: ast.AST,
        node: ast.Assign,
        params: set[str],
        guarded: bool,
        seam: bool,
    ) -> list[Finding]:
        """``index._vectors = matrix`` where ``matrix`` is a parameter:
        the function adopts caller memory and must freeze its view."""
        if guarded or seam:
            return []
        adopts = any(
            isinstance(t, ast.Attribute)
            and _is_storage_attr(t)
            and isinstance(node.value, ast.Name)
            and node.value.id in params
            for t in node.targets
        )
        if not adopts:
            return []
        return [Finding(
            rule=self.id, path=ctx.path, line=node.lineno,
            message=(
                "adopts a caller-provided matrix into vector storage "
                "without handling .flags.writeable (mmap-backed "
                "snapshots must be frozen read-only on adoption)"
            ),
        )]

    def _check_inplace(
        self,
        ctx: LintContext,
        targets: list[ast.expr],
        line: int,
        guarded: bool,
        seam: bool,
    ) -> list[Finding]:
        """``self._vectors[i] = …`` needs a visible writeable guard."""
        if guarded or seam:
            return []
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and _is_storage_attr(target.value)
                and _attr_chain(target.value)[0] in ("self", "cls")
            ):
                return [Finding(
                    rule=self.id, path=ctx.path, line=line,
                    message=(
                        "in-place write to vector/matrix storage without "
                        "a visible .flags.writeable guard; adopted "
                        "storage may be a read-only mmap (guard it or "
                        "annotate the function cow-seam)"
                    ),
                )]
        return []


# ----------------------------------------------------------------------
# AL04 — serialization byte-order hygiene
# ----------------------------------------------------------------------


class SerializationDtypeRule:
    id = "AL04"
    description = (
        "struct formats and frombuffer/fromfile dtypes at serialization "
        "boundaries are byte-order-explicit, and reader dtypes mirror "
        "writer dtypes"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        read_dtypes: set[str] = set()
        write_dtypes: set[str] = set()
        pack_fmts: set[str] = set()
        unpack_fmts: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if (
                len(chain) == 2
                and chain[0] == "struct"
                and chain[1] in _STRUCT_FMT_CALLS
            ):
                findings.extend(self._check_struct_fmt(
                    ctx, node, chain[1], pack_fmts, unpack_fmts
                ))
                continue
            name = _np_call(node)
            if name in ("frombuffer", "fromfile"):
                findings.extend(self._check_buffer_dtype(
                    ctx, node, name, read_dtypes
                ))
            elif name in _DTYPE_CTORS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                dtype = _get_kw(node, "dtype")
                if dtype is None and (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                ):
                    dtype = node.args[0]
                if (
                    isinstance(dtype, ast.Constant)
                    and isinstance(dtype.value, str)
                    and dtype.value.startswith(_BYTE_ORDER_PREFIXES)
                ):
                    write_dtypes.add(dtype.value)
        if read_dtypes and write_dtypes and read_dtypes != write_dtypes:
            findings.append(Finding(
                rule=self.id, path=ctx.path, line=1,
                message=(
                    "reader/writer dtype asymmetry: frombuffer/fromfile "
                    f"read {sorted(read_dtypes)} but this module writes "
                    f"{sorted(write_dtypes)}"
                ),
            ))
        if pack_fmts and unpack_fmts and pack_fmts != unpack_fmts:
            findings.append(Finding(
                rule=self.id, path=ctx.path, line=1,
                message=(
                    "pack/unpack struct format asymmetry: pack uses "
                    f"{sorted(pack_fmts)} but unpack uses "
                    f"{sorted(unpack_fmts)}"
                ),
            ))
        return findings

    def _check_struct_fmt(
        self,
        ctx: LintContext,
        node: ast.Call,
        method: str,
        pack_fmts: set[str],
        unpack_fmts: set[str],
    ) -> list[Finding]:
        fmt = node.args[0] if node.args else _get_kw(node, "format")
        if not (isinstance(fmt, ast.Constant) and isinstance(fmt.value, str)):
            return []
        if not fmt.value.startswith(_BYTE_ORDER_PREFIXES):
            return [Finding(
                rule=self.id, path=ctx.path, line=node.lineno,
                message=(
                    f'struct format "{fmt.value}" has no byte-order '
                    'prefix; native alignment makes serialized bytes '
                    'machine-dependent (use "<", ">", "!", or "=")'
                ),
            )]
        if method.startswith("pack"):
            pack_fmts.add(fmt.value)
        elif method.startswith("unpack"):
            unpack_fmts.add(fmt.value)
        return []

    def _check_buffer_dtype(
        self,
        ctx: LintContext,
        node: ast.Call,
        name: str,
        read_dtypes: set[str],
    ) -> list[Finding]:
        dtype = _get_kw(node, "dtype")
        if dtype is None and len(node.args) >= 2:
            dtype = node.args[1]
        if dtype is None:
            return [Finding(
                rule=self.id, path=ctx.path, line=node.lineno,
                message=(
                    f"np.{name}() without a dtype reads float64 by "
                    "default; serialization boundaries need a "
                    'byte-order-explicit dtype like "<f4"'
                ),
            )]
        if (
            isinstance(dtype, ast.Constant)
            and isinstance(dtype.value, str)
            and dtype.value.startswith(_BYTE_ORDER_PREFIXES)
        ):
            read_dtypes.add(dtype.value)
            return []
        return [Finding(
            rule=self.id, path=ctx.path, line=node.lineno,
            message=(
                f"np.{name}() dtype is not a byte-order-explicit string "
                'literal (use "<f4"-style so on-disk bytes never depend '
                "on host endianness)"
            ),
        )]


# ----------------------------------------------------------------------
# AL05 — array contracts on public numeric entrypoints
# ----------------------------------------------------------------------


class ArrayContractRule:
    id = "AL05"
    description = (
        "public numeric entrypoints (search*, from_vectors, from_matrix, "
        "upsert, distance kernels) in hot numpy modules declare an "
        "@array_contract"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        if not _is_hot(ctx.path) or not _imports_numpy(ctx.tree):
            return []
        findings: list[Finding] = []
        for _, fn in _functions(ctx.tree):
            if fn.name not in _CONTRACT_ENTRYPOINTS:
                continue
            if any(self._is_contract(d) for d in fn.decorator_list):
                continue
            findings.append(Finding(
                rule=self.id, path=ctx.path, line=fn.lineno,
                message=(
                    f"public numeric entrypoint {fn.name}() lacks an "
                    "@array_contract shape/dtype declaration "
                    "(repro.vectordb.contracts)"
                ),
            ))
        return findings

    @staticmethod
    def _is_contract(decorator: ast.expr) -> bool:
        node = decorator
        if isinstance(node, ast.Call):
            node = node.func
        chain = _attr_chain(node)
        return bool(chain) and chain[-1] == "array_contract"


ALL_RULES = [
    ExplicitDtypeRule(),
    HiddenCopyRule(),
    MmapReadOnlyRule(),
    SerializationDtypeRule(),
    ArrayContractRule(),
]
