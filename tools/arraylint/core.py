"""arraylint core: findings, suppression directives, file runner.

The analyzer encodes this repository's numeric-memory invariants as
named rules (``AL01``–``AL05``, see :mod:`tools.arraylint.rules`) over
the stdlib ``ast``. Each rule is individually suppressible at the
offending line, and one invariant-specific annotation marks the
deliberate materialization points that AL02/AL03 must not flag:

``# arraylint: disable=AL02 -- <justification>``
    Suppress one or more comma-separated rules on this line (or, for a
    comment-only line, on the next code line). The justification is
    recorded and reviewed like code.

``# arraylint: cow-seam [justification]``
    On (or directly above) a ``def``: this function IS the copy-on-write
    / materialization seam — it deliberately copies or writes into
    matrix storage (grow paths, bulk builders over freshly allocated
    arrays). AL02 and AL03 treat its body as allowed.

Run ``python -m tools.arraylint src/`` (exit 0 = clean); see
``docs/static-analysis.md`` for the rule catalogue. The runtime half of
the same contract lives in :mod:`repro.testing.memwatch`, which checks
what a one-file lexical pass cannot (actual allocation peaks, actual
buffer sharing across the mmap adoption path).
"""

from __future__ import annotations

import argparse
import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str = ""

    def render(self) -> str:
        tail = ""
        if self.suppressed:
            why = self.justification or "no justification given"
            tail = f"  [suppressed: {why}]"
        return f"{self.path}:{self.line}: {self.rule} {self.message}{tail}"


@dataclass
class Directives:
    """Per-file ``# arraylint:`` directives, keyed by source line."""

    #: line -> set of rule ids disabled there ("*" disables all)
    disabled: dict[int, set[str]] = field(default_factory=dict)
    #: line -> justification text for the disable
    disable_reason: dict[int, str] = field(default_factory=dict)
    #: lines carrying ``cow-seam``
    cow_seam: set[int] = field(default_factory=set)

    def is_disabled(self, rule: str, line: int) -> bool:
        rules = self.disabled.get(line)
        return rules is not None and (rule in rules or "*" in rules)

    def reason(self, line: int) -> str:
        return self.disable_reason.get(line, "")

    def marks_cow_seam(self, def_line: int) -> bool:
        """``cow-seam`` on the ``def`` line or the line above."""
        return bool(self.cow_seam & {def_line, def_line - 1})


_DIRECTIVE_PREFIX = "arraylint:"


def parse_directives(source: str) -> Directives:
    """Extract every ``# arraylint:`` directive with its effective line.

    Comments are found with :mod:`tokenize` (never fooled by ``#`` inside
    string literals). A directive on a code line applies to that line; a
    directive on a comment-only line applies to the next code line too,
    so long statements can carry their suppression just above.
    """
    directives = Directives()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return directives
    code_lines: set[int] = set()
    comments: list[tuple[int, str]] = []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments.append((tok.start[0], tok.string))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            for line in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(line)

    def apply(line: int, body: str) -> None:
        body = body.strip()
        if body.startswith("disable="):
            spec = body[len("disable="):]
            head, _, reason = spec.partition("--")
            rules = {r.strip().upper() for r in head.split(",") if r.strip()}
            if not rules:
                rules = {"*"}
            directives.disabled.setdefault(line, set()).update(rules)
            if reason.strip():
                directives.disable_reason[line] = reason.strip()
        elif body.startswith("cow-seam"):
            directives.cow_seam.add(line)

    for line, text in comments:
        text = text.lstrip("#").strip()
        if not text.startswith(_DIRECTIVE_PREFIX):
            continue
        body = text[len(_DIRECTIVE_PREFIX):]
        apply(line, body)
        if line not in code_lines:
            # Comment-only line: also bind to the next code line.
            following = [code for code in code_lines if code > line]
            if following:
                apply(min(following), body)
    return directives


@dataclass
class LintContext:
    """Everything one rule needs to check one file."""

    path: str
    source: str
    tree: ast.Module
    directives: Directives


def lint_source(
    source: str,
    path: str = "<string>",
    select: set[str] | None = None,
) -> list[Finding]:
    """Run every (selected) rule over ``source``; suppressed findings are
    returned too, marked, so callers (and tests) can see both sides."""
    from tools.arraylint.rules import ALL_RULES

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="AL00",
                path=path,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = LintContext(
        path=path,
        source=source,
        tree=tree,
        directives=parse_directives(source),
    )
    findings: list[Finding] = []
    for rule in ALL_RULES:
        if select and rule.id not in select:
            continue
        for finding in rule.check(ctx):
            if ctx.directives.is_disabled(finding.rule, finding.line):
                finding = Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    message=finding.message,
                    suppressed=True,
                    justification=ctx.directives.reason(finding.line),
                )
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_python_files(paths: list[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def run_paths(
    paths: list[str], select: set[str] | None = None
) -> list[Finding]:
    """Lint every python file under ``paths`` (suppressed included)."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file), select=select))
    return findings


def main(argv: list[str] | None = None) -> int:
    from tools.arraylint.rules import ALL_RULES

    parser = argparse.ArgumentParser(
        prog="arraylint",
        description=(
            "Static analyzer for this repo's numeric-memory invariants "
            "(rules AL01-AL05): dtype discipline, hidden copies, mmap "
            "read-only adoption, serialization byte order, array "
            "contracts."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run (e.g. AL01,AL04)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by directives")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.description}")
        return 0

    select = (
        {r.strip().upper() for r in args.select.split(",") if r.strip()}
        if args.select else None
    )
    findings = run_paths(args.paths or ["src"], select=select)
    active = [f for f in findings if not f.suppressed]
    shown = findings if args.show_suppressed else active
    for finding in shown:
        print(finding.render())
    n_files = len(iter_python_files(args.paths or ["src"]))
    suppressed = len(findings) - len(active)
    print(
        f"arraylint: {n_files} files, {len(active)} finding(s), "
        f"{suppressed} suppressed"
    )
    return 1 if active else 0
