"""arraylint: numeric-memory static analyzer (AL01–AL05).

Sibling of :mod:`tools.reprolint`: where reprolint encodes the repo's
concurrency and durability invariants, arraylint encodes its
numeric-memory invariants — dtype discipline, hidden-copy avoidance,
mmap read-only adoption, serialization byte-order hygiene, and
shape/dtype contracts on the public numeric entrypoints. Run
``python -m tools.arraylint src/``; see ``docs/static-analysis.md``.
"""

from tools.arraylint.core import (
    Directives,
    Finding,
    LintContext,
    lint_source,
    main,
    parse_directives,
    run_paths,
)

__all__ = [
    "Directives",
    "Finding",
    "LintContext",
    "lint_source",
    "main",
    "parse_directives",
    "run_paths",
]
