"""Repository tooling (docs checker, reprolint static analyzer)."""
