"""Supporting-substrate benchmark: baseline fit/rank throughput.

Times the TF-IDF and LDA baselines (fit on a city corpus; rank a query
range), plus the BM25 extension — the costs behind the Table-2 runs.
"""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.bm25 import Bm25Ranker
from repro.baselines.lda import LdaRanker
from repro.baselines.tfidf import TfIdfRanker


@pytest.fixture(scope="module")
def records(sl_corpus):
    return list(sl_corpus.dataset)


@pytest.fixture(scope="module")
def ranked_inputs(sl_corpus, sl_queries):
    pairs = []
    for query in sl_queries:
        pairs.append((query.text, sl_corpus.dataset.in_range(query.box)))
    return pairs


def test_tfidf_fit(benchmark, records):
    ranker = benchmark.pedantic(
        lambda: TfIdfRanker().fit(records), rounds=1, iterations=1
    )
    assert ranker.is_fitted


def test_tfidf_rank(benchmark, records, ranked_inputs):
    ranker = TfIdfRanker().fit(records)
    cycle = itertools.cycle(ranked_inputs)

    def rank():
        text, candidates = next(cycle)
        return ranker.rank(text, candidates, 10)

    benchmark(rank)


def test_lda_fit(benchmark, records):
    ranker = benchmark.pedantic(
        lambda: LdaRanker(n_topics=10, max_iterations=10).fit(records),
        rounds=1,
        iterations=1,
    )
    assert ranker is not None


def test_bm25_rank(benchmark, records, ranked_inputs):
    ranker = Bm25Ranker().fit(records)
    cycle = itertools.cycle(ranked_inputs)

    def rank():
        text, candidates = next(cycle)
        return ranker.rank(text, candidates, 10)

    benchmark(rank)
