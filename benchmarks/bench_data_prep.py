"""Experiment PREP — §3.1 data-preparation statistics and throughput.

The paper reports ~11 tips per POI (~147 tokens together) and ~55-token
LLM summaries, and implies per-POI LLM summarization cost is the
bottleneck motivating embeddings. This bench measures preparation
throughput and checks the corpus statistics land near the paper's.
"""

from __future__ import annotations

from repro.core.prepare import DataPreparation
from repro.data.dataset import Dataset
from repro.data.yelp import YelpStyleGenerator
from repro.geo.regions import NASHVILLE
from repro.llm.simulated import SimulatedLLM
from repro.vectordb.client import VectorDBClient

_N_POIS = 400


def _fresh_dataset() -> Dataset:
    records = YelpStyleGenerator(seed=21).generate_city(NASHVILLE, count=_N_POIS)
    return Dataset(records, "NS")


def test_data_preparation_pipeline(benchmark):
    def prepare():
        dataset = _fresh_dataset()
        llm = SimulatedLLM()
        preparation = DataPreparation(llm=llm, client=VectorDBClient())
        prepared = preparation.prepare(dataset)
        return dataset, llm, prepared

    dataset, llm, prepared = benchmark.pedantic(prepare, rounds=1, iterations=1)

    stats = dataset.statistics()
    # Paper: 11 tips, 147 tip tokens, 55 summary tokens per POI.
    assert 9 <= stats["avg_tips"] <= 13
    assert 90 <= stats["avg_tip_tokens"] <= 190
    assert 15 <= stats["avg_summary_tokens"] <= 80
    # One summarization call per POI, all on gpt-3.5-turbo.
    ledger = llm.ledger
    assert ledger.calls.get("gpt-3.5-turbo") == _N_POIS
    # Every POI indexed in the vector database.
    collection = prepared.client.get_collection(prepared.collection_name)
    assert len(collection) == _N_POIS

    benchmark.extra_info["pois"] = _N_POIS
    benchmark.extra_info["avg_tips"] = round(stats["avg_tips"], 1)
    benchmark.extra_info["avg_tip_tokens"] = round(stats["avg_tip_tokens"], 1)
    benchmark.extra_info["avg_summary_tokens"] = round(
        stats["avg_summary_tokens"], 1
    )
    benchmark.extra_info["paper"] = {
        "avg_tips": 11, "avg_tip_tokens": 147, "avg_summary_tokens": 55,
    }
    benchmark.extra_info["summarization_cost_usd"] = round(
        ledger.total_cost_usd(), 4
    )


def test_embedding_throughput(benchmark, sl_corpus):
    """Per-document embedding cost (the paper's offline indexing step)."""
    import itertools
    embedder = sl_corpus.prepared.embedder
    docs = [r.document_text() for r in list(sl_corpus.dataset)[:200]]
    cycle = itertools.cycle(docs)

    benchmark(lambda: embedder.embed(next(cycle)))
    assert benchmark.stats["mean"] < 0.05
