"""Overload behaviour — load shedding keeps accepted-request p99 bounded.

The resilience PR's acceptance target: drive a server at **4× its
admission capacity** (16 concurrent clients against ``max_inflight=4``)
and require that

* the server **sheds** — some requests answer 429 + ``Retry-After``
  instead of queueing without bound, and
* the requests it *does* accept keep a bounded p99: within a generous
  multiple of the unloaded single-client baseline (the factor absorbs
  the ≤ ``max_inflight``-way concurrency and the client threads' GIL
  share on a one-core CI box — the disaster being ruled out is the
  *unbounded* latency of an unbounded queue, where p99 grows with queue
  depth and every client times out eventually).

An unloaded warm-up/baseline pass must shed nothing (the cap only bites
under overload). Numbers are written to ``BENCH_resilience.json`` via
the ``bench_artifact`` fixture so CI regressions are diagnosable from
the artifact of the failing run.

The corpus is a small standalone collection (not the prepared-city
corpus): the subject here is admission control, not search quality, and
exact k-NN over a few thousand vectors gives each request a measurable,
stable cost.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np

from repro.serving.http import ServingContext, ServingServer
from repro.vectordb.client import VectorDBClient
from repro.vectordb.collection import PointStruct

DIM = 32
POINTS = 2000
K = 10

MAX_INFLIGHT = 4
CLIENTS = 16                 # 4x the admission capacity
REQUESTS_PER_CLIENT = 40
BASELINE_REQUESTS = 80

#: Accepted-request p99 under overload must stay within this multiple of
#: the unloaded baseline p99 (or an absolute floor on noisy machines).
P99_CEILING_FACTOR = 50.0
P99_CEILING_FLOOR_S = 0.5


def _vectors(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    vecs = rng.standard_normal((n, DIM)).astype(np.float32)
    return vecs / np.linalg.norm(vecs, axis=1, keepdims=True)


def _serving_server() -> ServingServer:
    client = VectorDBClient()
    vecs = _vectors(POINTS, seed=7)
    client.create_collection("bench", dim=DIM, shards=2).upsert([
        PointStruct(id=f"p{i}", vector=vecs[i], payload={})
        for i in range(POINTS)
    ])
    context = ServingContext(client, coalesce=False)
    return ServingServer(context, port=0, max_inflight=MAX_INFLIGHT).start()


def _one_request(
    conn: http.client.HTTPConnection, body: str
) -> tuple[int, float, int]:
    """One timed POST /search; returns (status, seconds, hit count)."""
    t0 = time.perf_counter()
    conn.request(
        "POST", "/search", body, {"Content-Type": "application/json"}
    )
    response = conn.getresponse()
    payload = response.read()
    elapsed = time.perf_counter() - t0
    hits = len(json.loads(payload).get("hits", [])) if (
        response.status == 200
    ) else 0
    if response.status == 429 or response.will_close:
        conn.close()  # server closed it; reconnect on the next request
    return response.status, elapsed, hits


def _client_loop(
    host: str, port: int, bodies: list[str], n: int, offset: int,
) -> list[tuple[int, float, int]]:
    conn = http.client.HTTPConnection(host, port, timeout=60)
    outcomes = []
    try:
        for j in range(n):
            outcomes.append(
                _one_request(conn, bodies[(offset + j) % len(bodies)])
            )
    finally:
        conn.close()
    return outcomes


def test_overload_sheds_while_accepted_p99_stays_bounded(bench_artifact):
    queries = _vectors(32, seed=11)
    bodies = [
        json.dumps({
            "collection": "bench", "vector": q.tolist(), "k": K,
            "exact": True, "with_payload": False,
        })
        for q in queries
    ]
    with _serving_server() as server:
        host, port = server.address

        # -- unloaded baseline: one client, sequential ------------------
        _client_loop(host, port, bodies, 20, 0)  # warm-up
        baseline = _client_loop(host, port, bodies, BASELINE_REQUESTS, 0)
        assert all(status == 200 for status, _, _ in baseline), (
            "an unloaded server must never shed"
        )
        baseline_p99_s = float(
            np.percentile([s for _, s, _ in baseline], 99)
        )

        # -- overload: 4x capacity --------------------------------------
        per_client: list = [None] * CLIENTS

        def worker(ci: int) -> None:
            per_client[ci] = _client_loop(
                host, port, bodies, REQUESTS_PER_CLIENT, ci
            )

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    outcomes = [outcome for client in per_client for outcome in client]
    accepted = [o for o in outcomes if o[0] == 200]
    shed = [o for o in outcomes if o[0] == 429]
    other = [o for o in outcomes if o[0] not in (200, 429)]
    assert not other, f"unexpected statuses under overload: {other[:5]}"
    assert all(hits == K for _, _, hits in accepted)

    accepted_p99_s = float(np.percentile([s for _, s, _ in accepted], 99))
    ceiling_s = max(P99_CEILING_FACTOR * baseline_p99_s, P99_CEILING_FLOOR_S)
    total = CLIENTS * REQUESTS_PER_CLIENT
    print(
        f"\noverload {CLIENTS} clients vs max_inflight={MAX_INFLIGHT}: "
        f"{len(accepted)}/{total} accepted, {len(shed)} shed (429); "
        f"baseline p99 {baseline_p99_s * 1000:.2f} ms, "
        f"accepted p99 {accepted_p99_s * 1000:.2f} ms "
        f"(ceiling {ceiling_s * 1000:.0f} ms)"
    )
    bench_artifact(
        "resilience",
        {
            "clients": CLIENTS,
            "max_inflight": MAX_INFLIGHT,
            "requests_total": total,
            "accepted": len(accepted),
            "shed_429": len(shed),
            "baseline_p99_ms": round(baseline_p99_s * 1000, 3),
            "accepted_p99_ms": round(accepted_p99_s * 1000, 3),
            "ceiling_ms": round(ceiling_s * 1000, 3),
            "ceiling_factor": P99_CEILING_FACTOR,
        },
    )
    assert shed, (
        "4x-capacity overload must trip the in-flight cap (no 429s seen)"
    )
    assert accepted, "overload must not starve every request"
    assert accepted_p99_s <= ceiling_s, (
        f"accepted p99 {accepted_p99_s * 1000:.1f} ms exceeds the "
        f"{ceiling_s * 1000:.0f} ms ceiling — shedding is not keeping "
        "admitted-request latency bounded"
    )
