"""Cold start — snapshot schema v3 (persisted graphs + mmap vectors) vs v2.

Before v3, every snapshot load paid full HNSW reconstruction on the
first approximate query and eagerly copied all vectors into RAM — cold
start was the slowest path in the system. Schema v3 persists the built
graphs as compact numpy arrays and the vectors as a raw ``.npy`` matrix,
so a load attaches the graphs (O(metadata)) and can serve searches off a
read-only memory map.

This benchmark measures **load-to-first-query** latency over a
20k-point, 4-shard corpus:

* v2 snapshot: load + first unfiltered search → rebuilds all four
  per-shard graphs before answering;
* v3 snapshot: load + the same search → graphs attach from disk.

Acceptance (ISSUE 4): v3 ≥ 2× faster (floor; target ≥ 5×), post-load
approximate search results bit-identical between the v3-attached graphs
and the v2 rebuild (same build seed ⇒ same graph), and an ``mmap=True``
load allocates measurably less than an eager load (vectors stay on the
page cache).

The generated corpus snapshots are cached under ``BENCH_COLD_START_DIR``
(default ``.bench-cache/cold-start``) and reused across runs — CI caches
that directory between workflow runs to keep wall-clock time flat.
"""

from __future__ import annotations

import os
import shutil
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.vectordb.collection import HnswConfig, PointStruct
from repro.vectordb.persistence import (
    inspect_snapshot,
    load_collection,
    save_collection,
)
from repro.vectordb.sharded import ShardedCollection

N_POINTS = 20_000
DIM = 64
SHARDS = 4
K = 10
HNSW = HnswConfig(m=16, ef_construction=100, seed=7)
SPEEDUP_FLOOR = 2.0
SPEEDUP_TARGET = 5.0
EQUIVALENCE_QUERIES = 32

CACHE_DIR = Path(os.environ.get("BENCH_COLD_START_DIR", ".bench-cache/cold-start"))


def _queries(count: int = EQUIVALENCE_QUERIES) -> np.ndarray:
    rng = np.random.default_rng(11)
    queries = rng.standard_normal((count, DIM)).astype(np.float32)
    return queries / np.linalg.norm(queries, axis=1, keepdims=True)


def _corpus_ok(directory: Path, schema: int) -> bool:
    try:
        info = inspect_snapshot(directory)
    except Exception:
        return False
    return (
        info["schema"] == schema
        and info["count"] == N_POINTS
        and info["shards"] == SHARDS
        and (schema < 3 or info["graphs_persisted"])
    )


@pytest.fixture(scope="module")
def corpus_dirs() -> tuple[Path, Path]:
    """``(v2_dir, v3_dir)`` snapshot paths, built once and cached on disk."""
    v2_dir, v3_dir = CACHE_DIR / "v2", CACHE_DIR / "v3"
    if _corpus_ok(v2_dir, 2) and _corpus_ok(v3_dir, 3):
        print(f"\nreusing cached cold-start corpus under {CACHE_DIR}")
        return v2_dir, v3_dir
    shutil.rmtree(CACHE_DIR, ignore_errors=True)
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    print(f"\nbuilding cold-start corpus ({N_POINTS} x {DIM}d, {SHARDS} shards)")
    rng = np.random.default_rng(7)
    vecs = rng.standard_normal((N_POINTS, DIM)).astype(np.float32)
    vecs /= np.linalg.norm(vecs, axis=1, keepdims=True)
    collection = ShardedCollection("coldstart", DIM, hnsw=HNSW, shards=SHARDS)
    collection.upsert(
        PointStruct(
            id=f"poi-{i}",
            vector=vecs[i],
            payload={"city": f"c{i % 5}", "stars": float(i % 50) / 5.0},
        )
        for i in range(N_POINTS)
    )
    collection.create_payload_index("city")
    collection.build_hnsw(parallel=SHARDS)
    save_collection(collection, v2_dir, schema=2)
    save_collection(collection, v3_dir)
    collection.close()
    return v2_dir, v3_dir


def _load_to_first_query(directory: Path, mmap: bool = False) -> tuple[float, object]:
    """Seconds from cold load until the first approximate search returns."""
    query = _queries(1)[0]
    t0 = time.perf_counter()
    collection = load_collection(directory, mmap=mmap)
    hits = collection.search(query, K)
    elapsed = time.perf_counter() - t0
    assert len(hits) == K
    return elapsed, collection


def test_cold_start_speedup_and_equivalence(corpus_dirs, bench_artifact):
    """v3 load-to-first-query ≥ 2× v2 (target 5×); results bit-identical."""
    v2_dir, v3_dir = corpus_dirs

    v2_s, v2_loaded = _load_to_first_query(v2_dir)
    v3_s, v3_loaded = _load_to_first_query(v3_dir)
    assert v3_loaded.hnsw_is_built  # attached from disk, nothing rebuilt

    speedup = v2_s / v3_s
    print(
        f"\ncold start over {N_POINTS} x {DIM}d points, {SHARDS} shards:"
        f"\n  v2 load + first query (graph rebuild)  {v2_s * 1000:7.0f} ms"
        f"\n  v3 load + first query (graph attach)   {v3_s * 1000:7.0f} ms"
        f"\n  speedup: {speedup:.1f}x"
        f" (floor {SPEEDUP_FLOOR}x, target {SPEEDUP_TARGET}x)"
    )

    # The fast path must not change a single answer: the v2 rebuild and
    # the v3 attached graphs are the same graph (same seed, same build),
    # so approximate search must agree hit-for-hit, score-for-score.
    queries = _queries()
    want = v2_loaded.search_batch(queries, K)
    got = v3_loaded.search_batch(queries, K)
    for want_row, got_row in zip(want, got):
        assert [(h.id, h.score) for h in want_row] == [
            (h.id, h.score) for h in got_row
        ]
    print(f"  post-load results identical over {len(queries)} queries")

    v2_loaded.close()
    v3_loaded.close()
    bench_artifact(
        "cold_start",
        {
            "points": N_POINTS,
            "dim": DIM,
            "shards": SHARDS,
            "v2_load_to_first_query_s": round(v2_s, 4),
            "v3_load_to_first_query_s": round(v3_s, 4),
            "speedup": round(speedup, 2),
            "floor": SPEEDUP_FLOOR,
            "target": SPEEDUP_TARGET,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"cold-start speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x floor"
    )


def test_mmap_load_allocates_less(corpus_dirs):
    """mmap=True keeps the vector matrix off the Python heap entirely."""
    _, v3_dir = corpus_dirs
    vector_bytes = N_POINTS * DIM * 4

    tracemalloc.start()
    eager = load_collection(v3_dir)
    eager_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    eager.close()

    tracemalloc.start()
    mapped = load_collection(v3_dir, mmap=True)
    mapped_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    # mmap still answers queries correctly while saving the matrix copy.
    hits = mapped.search_batch(_queries(4), K)
    assert all(len(row) == K for row in hits)
    mapped.close()

    saved = eager_peak - mapped_peak
    print(
        f"\npeak allocations during load ({N_POINTS} x {DIM}d):"
        f"\n  eager  {eager_peak / 1e6:7.1f} MB"
        f"\n  mmap   {mapped_peak / 1e6:7.1f} MB"
        f"\n  saved  {saved / 1e6:7.1f} MB"
        f" (vector matrix is {vector_bytes / 1e6:.1f} MB)"
    )
    # The saving must be at least half the vector matrix — i.e. the
    # matrix demonstrably stayed out of the load's allocations.
    assert saved >= vector_bytes // 2, (
        f"mmap load saved only {saved} bytes of {vector_bytes}-byte matrix"
    )
