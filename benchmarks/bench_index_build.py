"""Offline index build — parallel per-shard HNSW construction vs the
serial insert-order build, plus reshard round-trip equivalence.

The serial baseline is the build the engine performed before eager
builds existed (and still performs for incremental upserts into a live
graph): one monolithic ``HNSWIndex`` fed point by point through ``add``,
each insert beam-searching the half-built graph for its candidates.
``ShardedCollection.build_hnsw(parallel=4)`` beats it through three
stacked mechanisms:

1. **Pre-scored bulk construction.** ``HNSWIndex.from_vectors`` computes
   each insert's similarities to all earlier nodes with chunked matrix
   products and draws candidates as the exact per-layer top-``ef``, so
   the per-insert beam search (heap churn + many small numpy calls)
   disappears from construction. Machine-independent; ~3.5× alone on
   one core, with equal-or-better recall (exact candidate lists strictly
   dominate beam-found ones).
2. **Smaller graphs.** Four n/4-point graphs are cheaper to link than
   one n-point graph (fewer layers, cheaper re-pruning). Also
   machine-independent, worth ~10–15%.
3. **Process-pool fan-out.** Per-shard builds are independent and
   Python-heavy, so they run in worker processes (threads would
   serialize on the GIL) and the finished graphs pickle back. On a
   single-core runner this contributes nothing — the floor below is
   carried by mechanisms 1–2 — and on multi-core CI it multiplies.

Acceptance (ISSUE 3): parallel 4-shard build ≥ 1.5× the serial baseline
over the same points, and a reshard round-trip is bit-equivalent on
``scroll`` / ``count`` / exact search.
"""

from __future__ import annotations

import time

import numpy as np

from repro.testing.memwatch import MemWatcher
from repro.vectordb.collection import Collection, HnswConfig, PointStruct
from repro.vectordb.filters import FieldMatch
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.persistence import (
    load_collection,
    reshard_snapshot,
    save_collection,
)
from repro.vectordb.sharded import ShardedCollection

N_POINTS = 4000
DIM = 64
SHARDS = 4
HNSW = HnswConfig(m=16, ef_construction=100, seed=7)
SPEEDUP_FLOOR = 1.5
RECALL_QUERIES = 32
K = 10


def _vectors() -> np.ndarray:
    rng = np.random.default_rng(7)
    vecs = rng.standard_normal((N_POINTS, DIM)).astype(np.float32)
    return vecs / np.linalg.norm(vecs, axis=1, keepdims=True)


def _points(vecs: np.ndarray) -> list[PointStruct]:
    return [
        PointStruct(
            id=f"poi-{i}",
            vector=vecs[i],
            payload={"city": f"c{i % 5}", "stars": float(i % 50) + 1.0},
        )
        for i in range(vecs.shape[0])
    ]


def test_parallel_shard_build_speedup(bench_artifact):
    """Parallel 4-shard build ≥ 1.5× the serial insert-order baseline."""
    vecs = _vectors()
    points = _points(vecs)

    t0 = time.perf_counter()
    serial = HNSWIndex(
        DIM, m=HNSW.m, ef_construction=HNSW.ef_construction, seed=HNSW.seed
    )
    for vec in vecs:
        serial.add(vec)
    serial_s = time.perf_counter() - t0

    sharded = ShardedCollection("build", DIM, hnsw=HNSW, shards=SHARDS)
    sharded.upsert(points)
    t0 = time.perf_counter()
    sharded.build_hnsw(parallel=SHARDS)
    parallel_s = time.perf_counter() - t0
    assert sharded.hnsw_is_built

    # Context: the same bulk constructor on one monolithic graph
    # (mechanism 1 alone, no shard or fan-out effects).
    t0 = time.perf_counter()
    mono = Collection("mono", DIM, hnsw=HNSW)
    mono.upsert(points)
    mono.build_hnsw()
    mono_bulk_s = time.perf_counter() - t0

    speedup = serial_s / parallel_s
    print(
        f"\nHNSW build over {N_POINTS} x {DIM}d points:"
        f"\n  serial insert-order baseline  {serial_s * 1000:7.0f} ms"
        f"\n  monolithic bulk build         {mono_bulk_s * 1000:7.0f} ms"
        f"\n  parallel {SHARDS}-shard build         {parallel_s * 1000:7.0f} ms"
        f"\n  speedup vs serial: {speedup:.1f}x"
    )

    # The speedup must not come from a worse graph: per-shard approximate
    # search over the parallel-built graphs keeps exact-search recall.
    rng = np.random.default_rng(11)
    queries = rng.standard_normal((RECALL_QUERIES, DIM)).astype(np.float32)
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    exact = sharded.search_batch(queries, K, exact=True)
    approx = sharded.search_batch(queries, K)
    hits = sum(
        len({h.id for h in a} & {h.id for h in e})
        for a, e in zip(approx, exact)
    )
    recall = hits / (RECALL_QUERIES * K)
    print(f"  sharded recall@{K} after parallel build: {recall:.3f}")
    assert recall >= 0.85, f"parallel-built graphs lost recall: {recall}"

    # Memory probe on an extra untimed approximate batch (the serving
    # shape the built graphs exist for); kept out of the timed builds so
    # tracemalloc overhead can't dilute the speedup floor.
    probe = MemWatcher(enforce_contracts=False)
    with probe.watching():
        sharded.search_batch(queries, K)

    bench_artifact(
        "index_build",
        {
            "points": N_POINTS,
            "dim": DIM,
            "shards": SHARDS,
            "serial_build_s": round(serial_s, 4),
            "monolithic_bulk_build_s": round(mono_bulk_s, 4),
            "parallel_build_s": round(parallel_s, 4),
            "speedup": round(speedup, 2),
            "recall_at_k": round(recall, 4),
            "floor": SPEEDUP_FLOOR,
            "memwatch": probe.stats(),
        },
    )

    sharded.close()
    assert speedup >= SPEEDUP_FLOOR, (
        f"parallel shard build speedup {speedup:.2f}x below "
        f"{SPEEDUP_FLOOR}x floor"
    )


def test_reshard_round_trip_bit_equivalent(tmp_path):
    """Reshard 4 → 2 → 1: scroll, count, and exact search stay identical."""
    vecs = _vectors()[:1200]
    points = _points(vecs)
    original = ShardedCollection("resh", DIM, hnsw=HNSW, shards=SHARDS)
    original.upsert(points)
    original.create_payload_index("city")
    snapshot = tmp_path / "snap"
    save_collection(original, snapshot)

    rng = np.random.default_rng(13)
    queries = rng.standard_normal((16, DIM)).astype(np.float32)
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    want_scroll = [h.id for h in original.scroll()]
    flt = FieldMatch("city", "c1")
    want_hits = original.search_batch(queries, K, exact=True)

    for new_shards in (2, 1):
        reshard_snapshot(snapshot, new_shards)  # in place, chained
        loaded = load_collection(snapshot)
        assert loaded.n_shards == new_shards
        assert loaded.count() == original.count()
        assert loaded.count(flt) == original.count(flt)
        assert [h.id for h in loaded.scroll()] == want_scroll
        got_hits = loaded.search_batch(queries, K, exact=True)
        for want, got in zip(want_hits, got_hits):
            assert [h.id for h in want] == [h.id for h in got]
            np.testing.assert_array_equal(
                np.asarray([h.score for h in want], dtype=np.float32),
                np.asarray([h.score for h in got], dtype=np.float32),
            )
        loaded.close()
        print(f"\nreshard {SHARDS} -> {new_shards}: bit-equivalent "
              f"({len(want_scroll)} points, {len(queries)} queries)")
    original.close()
