"""Shared benchmark configuration.

Benchmarks default to *downsized-but-faithful* corpora so the whole suite
runs in minutes; set ``REPRO_FULL=1`` to run at the paper's scale (full
POI counts, 30 queries per city).

Heavy experiment benchmarks (whole-table reproductions) are timed with a
single round via ``benchmark.pedantic`` — their value is the reproduced
numbers (attached as ``extra_info``), not statistical timing. Hot-path
benchmarks (filtering, HNSW search) use normal multi-round timing.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.corpus import EvalCorpus, get_corpus
from repro.eval.experiments import build_test_queries

FULL_SCALE = os.environ.get("REPRO_FULL", "") == "1"

#: POIs per city in downsized mode (None = paper counts in full mode).
POI_COUNT = None if FULL_SCALE else 1200
#: Queries per city (paper: 30).
QUERY_COUNT = 30 if FULL_SCALE else 10


@pytest.fixture(scope="session")
def sl_corpus() -> EvalCorpus:
    """Prepared Saint Louis corpus."""
    return get_corpus("SL", seed=7, count=POI_COUNT)


@pytest.fixture(scope="session")
def sl_queries(sl_corpus):
    """Vetted query set for Saint Louis."""
    return build_test_queries(sl_corpus, count=QUERY_COUNT)


@pytest.fixture(scope="session")
def mel_corpus() -> EvalCorpus:
    """Prepared Melbourne corpus (Figure 1 scenario)."""
    return get_corpus("MEL", seed=7, count=600)
