"""Shared benchmark configuration.

Benchmarks default to *downsized-but-faithful* corpora so the whole suite
runs in minutes; set ``REPRO_FULL=1`` to run at the paper's scale (full
POI counts, 30 queries per city).

Heavy experiment benchmarks (whole-table reproductions) are timed with a
single round via ``benchmark.pedantic`` — their value is the reproduced
numbers (attached as ``extra_info``), not statistical timing. Hot-path
benchmarks (filtering, HNSW search) use normal multi-round timing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.eval.corpus import EvalCorpus, get_corpus
from repro.eval.experiments import build_test_queries

FULL_SCALE = os.environ.get("REPRO_FULL", "") == "1"

#: POIs per city in downsized mode (None = paper counts in full mode).
POI_COUNT = None if FULL_SCALE else 1200
#: Queries per city (paper: 30).
QUERY_COUNT = 30 if FULL_SCALE else 10


@pytest.fixture
def bench_artifact():
    """Write a ``BENCH_<name>.json`` artifact with a benchmark's numbers.

    Floor-asserting benchmarks call this with their measured values so
    CI runs leave a machine-readable trail (uploaded as workflow
    artifacts) — a regression is diagnosable from the numbers of the
    failing run without reproducing it locally. Artifacts land in
    ``BENCH_ARTIFACT_DIR`` (default: the working directory).
    """
    out_dir = Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))

    def write(name: str, payload: dict) -> Path:
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nbench artifact: {path}")
        return path

    return write


@pytest.fixture(scope="session")
def sl_corpus() -> EvalCorpus:
    """Prepared Saint Louis corpus."""
    return get_corpus("SL", seed=7, count=POI_COUNT)


@pytest.fixture(scope="session")
def sl_queries(sl_corpus):
    """Vetted query set for Saint Louis."""
    return build_test_queries(sl_corpus, count=QUERY_COUNT)


@pytest.fixture(scope="session")
def mel_corpus() -> EvalCorpus:
    """Prepared Melbourne corpus (Figure 1 scenario)."""
    return get_corpus("MEL", seed=7, count=600)
