"""Experiment F1 — Figure 1: keyword search for "café" misses cafés.

Quantifies the motivating phenomenon on the synthetic Melbourne CBD:
boolean keyword matching recalls only the cafés whose text contains the
literal token, while the semantic pipeline recovers cafés that never say
"café" (the "Industry Beans" effect).
"""

from __future__ import annotations

from repro.baselines.keyword import KeywordMatcher
from repro.core.query import SpatialKeywordQuery
from repro.core.variants import semask
from repro.eval.groundtruth import true_concepts
from repro.geo.regions import MELBOURNE
from repro.semantics.ontology.build import default_ontology


def test_figure1_cafe_scenario(benchmark, mel_corpus):
    graph, _ = default_ontology()
    box = SpatialKeywordQuery.around(MELBOURNE.center, "cafe", 5, 5).range
    dataset = mel_corpus.dataset
    true_cafes = {
        r.business_id
        for r in dataset.in_range(box)
        if graph.any_satisfies(true_concepts(r), "cafe")
    }
    assert true_cafes, "scenario needs cafés in range"

    matcher = KeywordMatcher(match_all=True).fit(list(dataset))

    def keyword_search():
        return {
            r.business_id
            for r in dataset.in_range(box)
            if matcher.matches("cafe", r)
        }

    keyword_hits = benchmark(keyword_search) & true_cafes
    keyword_recall = len(keyword_hits) / len(true_cafes)

    system = semask(mel_corpus.prepared, llm=mel_corpus.llm, candidate_k=20)
    result = system.query(
        SpatialKeywordQuery(range=box, text="somewhere for a flat white and a pastry")
    )
    semantic_hits = set(result.ids()) & true_cafes
    recovered = semantic_hits - keyword_hits

    # The Figure-1 claim: keyword matching misses true cafés...
    assert keyword_recall < 1.0, "keyword search found every café"
    # ...and the semantic system finds cafés keyword matching cannot.
    assert recovered, "SemaSK recovered no keyword-invisible cafés"

    benchmark.extra_info["true_cafes_in_range"] = len(true_cafes)
    benchmark.extra_info["keyword_recall"] = round(keyword_recall, 3)
    benchmark.extra_info["semantic_recovered_extra"] = len(recovered)
