"""Batch execution throughput — the batched read path vs a sequential loop.

The batch engine amortizes three costs across a batch of queries: query
embedding (one ``embed_batch`` call with dedup), range-filter evaluation
(once per distinct range instead of once per query), and kNN scoring (one
matrix–matrix product on the exact path). This file demonstrates the
acceptance target of the batch-engine PR: ≥ 2× queries/sec over the
sequential loop at batch size 64 on the seeded corpus. Typical observed
speedups are well above the floor; the assertions are deliberately loose
so they hold on slow CI machines.
"""

from __future__ import annotations

import itertools
import time

from repro.core.filtering import FilteringStage
from repro.core.query import SpatialKeywordQuery
from repro.core.variants import semask_em
from repro.testing.memwatch import MemWatcher

BATCH_SIZE = 64
SPEEDUP_FLOOR = 2.0


def _batch_queries(sl_queries, size: int = BATCH_SIZE):
    """A batch-64 workload cycling the vetted evaluation query set.

    Repetition across a batch is the realistic shape of heavy traffic
    (popular queries over popular areas); the sequential baseline re-pays
    embedding and filter evaluation for every occurrence, the batch path
    does not.
    """
    cycle = itertools.cycle(sl_queries)
    return [
        SpatialKeywordQuery(range=q.box, text=q.text)
        for q in itertools.islice(cycle, size)
    ]


def _best_of(runs: int, fn) -> float:
    best = float("inf")
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_filtering_stage_batch_speedup(sl_corpus, sl_queries, bench_artifact):
    """FilteringStage.run_batch ≥ 2× a run() loop at batch size 64."""
    prepared = sl_corpus.prepared
    stage = FilteringStage(
        prepared.client, prepared.collection_name, prepared.embedder
    )
    queries = _batch_queries(sl_queries)

    sequential_s = _best_of(3, lambda: [stage.run(q, k=10) for q in queries])
    batch_s = _best_of(3, lambda: stage.run_batch(queries, k=10))

    # Same candidates either way — the speedup is not from doing less.
    sequential = [stage.run(q, k=10) for q in queries]
    batch = stage.run_batch(queries, k=10)
    assert [[c.business_id for c in cs] for cs in batch] == [
        [c.business_id for c in cs] for cs in sequential
    ]

    speedup = sequential_s / batch_s
    qps = len(queries) / batch_s
    print(
        f"\nfiltering batch-{BATCH_SIZE}: sequential {sequential_s * 1000:.1f} ms, "
        f"batch {batch_s * 1000:.1f} ms, speedup {speedup:.1f}x, {qps:.0f} q/s"
    )

    # Memory probe: one extra (untimed) batch under the memwatch
    # accountant — tracemalloc overhead must never touch the timed arms
    # above, or the speedup floor would measure the instrumentation.
    probe = MemWatcher(enforce_contracts=False)
    with probe.watching():
        stage.run_batch(queries, k=10)

    bench_artifact(
        "batch_throughput",
        {
            "batch_size": BATCH_SIZE,
            "sequential_s": round(sequential_s, 4),
            "batch_s": round(batch_s, 4),
            "speedup": round(speedup, 2),
            "qps": round(qps, 1),
            "floor": SPEEDUP_FLOOR,
            "memwatch": probe.stats(),
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch filtering speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x floor"
    )


def test_query_many_em_speedup(sl_corpus, sl_queries):
    """SemaSK-EM query_many ≥ 2× a query() loop at batch size 64."""
    system = semask_em(sl_corpus.prepared)
    queries = _batch_queries(sl_queries)

    sequential_s = _best_of(2, lambda: [system.query(q) for q in queries])
    batch_s = _best_of(2, lambda: system.query_many(queries))

    speedup = sequential_s / batch_s
    print(
        f"\nquery_many batch-{BATCH_SIZE} (EM): sequential "
        f"{sequential_s * 1000:.1f} ms, batch {batch_s * 1000:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR


def test_flat_search_batch_exact_speedup(sl_corpus):
    """Raw exact scoring: one matrix–matrix product vs 64 matrix–vector.

    Measured at the flat-index layer, where the batched kernel lives;
    the collection layer adds identical per-hit payload construction to
    both paths, which only dilutes the ratio without changing the work.
    """
    import numpy as np

    prepared = sl_corpus.prepared
    collection = prepared.client.get_collection(prepared.collection_name)
    flat = collection._flat
    rng = np.random.default_rng(7)
    queries = rng.standard_normal((BATCH_SIZE, collection.dim)).astype(
        np.float32
    )
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)

    sequential_s = _best_of(
        5, lambda: [flat.search(q, 10) for q in queries]
    )
    batch_s = _best_of(5, lambda: flat.search_batch(queries, 10))
    speedup = sequential_s / batch_s
    print(
        f"\nexact scoring batch-{BATCH_SIZE}: sequential "
        f"{sequential_s * 1000:.1f} ms, batch {batch_s * 1000:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    # Observed ~2.1x; a sub-millisecond microbenchmark gets a wider margin
    # than the pipeline-level >= 2x assertions above.
    assert speedup >= 1.5
