"""Ablation ABL-K — the filtering fan-out fed to the LLM.

The paper fixes the filtering stage's top-k at the evaluation k ("The
top-k most similar objects are fetched ... to limit the LLM costs"). This
ablation sweeps the candidate count: a larger fan-out raises recall into
the refinement stage at higher (modelled) LLM cost.
"""

from __future__ import annotations

from repro.core.pipeline import SemaSK, SemaSKConfig
from repro.core.query import SpatialKeywordQuery
from repro.eval.metrics import f1_at_k, mean, recall_at_k


def _evaluate(corpus, queries, candidate_k: int) -> dict[str, float]:
    system = SemaSK(
        corpus.prepared,
        SemaSKConfig(refine_model="gpt-4o", candidate_k=candidate_k),
        llm=corpus.llm,
    )
    f1s, recalls, costs = [], [], []
    before = corpus.llm.ledger.input_tokens.get("gpt-4o", 0)
    for query in queries:
        result = system.query(
            SpatialKeywordQuery(range=query.box, text=query.text)
        )
        ids = result.ids(10)
        f1s.append(f1_at_k(ids, query.answer_ids, 10))
        recalls.append(recall_at_k(ids, query.answer_ids, 10))
    after = corpus.llm.ledger.input_tokens.get("gpt-4o", 0)
    costs.append((after - before) / max(len(queries), 1))
    return {
        "f1": mean(f1s),
        "recall": mean(recalls),
        "prompt_tokens_per_query": mean(costs),
    }


def test_candidate_k_sweep(benchmark, sl_corpus, sl_queries):
    def sweep():
        return {
            k: _evaluate(sl_corpus, sl_queries, k) for k in (5, 10, 20, 30)
        }

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Wider fan-out cannot lose answer-set recall (monotone non-decreasing
    # up to LLM noise); prompt cost must grow with k.
    assert curve[30]["recall"] >= curve[5]["recall"] - 0.05
    assert (
        curve[30]["prompt_tokens_per_query"]
        > curve[5]["prompt_tokens_per_query"]
    )
    benchmark.extra_info["by_candidate_k"] = {
        str(k): {m: round(v, 3) for m, v in row.items()}
        for k, row in curve.items()
    }
