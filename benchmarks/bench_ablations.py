"""Ablations ABL-LLM / ABL-SUMM / ABL-FUSE / ABL-INDEX.

* ABL-LLM   — how good does the refinement model need to be? Sweeps the
  judgment-noise and lexicon-coverage knobs; F1 should degrade smoothly
  from the ideal judge toward (and below) embeddings-only quality.
* ABL-SUMM  — does the paper's tip-summarization step help retrieval?
* ABL-FUSE  — can LLM-free rank fusion (TF-IDF + keyword RRF) close the
  gap to SemaSK? (It should not.)
* ABL-INDEX — R-tree spatial filtering vs payload-filter scanning.
"""

from __future__ import annotations

import itertools

from repro.baselines.fusion import ReciprocalRankFusion
from repro.baselines.keyword import KeywordMatcher
from repro.baselines.tfidf import TfIdfRanker
from repro.core.filtering import FilteringStage
from repro.core.query import SpatialKeywordQuery
from repro.core.spatial_filter import RTreeFilteringStage
from repro.core.variants import semask
from repro.eval.ablations import llm_quality_sweep, summary_ablation
from repro.eval.metrics import f1_at_k, mean


def test_llm_quality_sweep(benchmark, sl_corpus, sl_queries):
    points = benchmark.pedantic(
        llm_quality_sweep, args=(sl_corpus, sl_queries), rounds=1, iterations=1
    )
    f1s = [p.f1 for p in points]
    # Ideal judge should be the best; heavy degradation the worst.
    assert f1s[0] == max(f1s)
    assert f1s[-1] <= f1s[0]
    assert f1s[-1] < 0.75 * f1s[0], "degradation should visibly hurt"
    benchmark.extra_info["sweep"] = {
        p.label: {"f1": round(p.f1, 3), "recall": round(p.recall, 3)}
        for p in points
    }


def test_summary_ablation(benchmark, sl_corpus, sl_queries):
    result = benchmark.pedantic(
        summary_ablation, args=(sl_corpus, sl_queries[:6]),
        rounds=1, iterations=1,
    )
    # Summaries canonicalize phrasing; retrieval must not collapse and
    # should be at least competitive with raw tips.
    assert result["summary"] >= result["raw_tips"] - 0.15
    benchmark.extra_info["recall_at_10"] = {
        mode: round(v, 3) for mode, v in result.items()
    }


def test_rrf_fusion_vs_semask(benchmark, sl_corpus, sl_queries):
    records = list(sl_corpus.dataset)

    def evaluate_fusion():
        fusion = ReciprocalRankFusion(
            [TfIdfRanker(), KeywordMatcher(match_all=False)]
        ).fit(records)
        scores = []
        for query in sl_queries:
            candidates = sl_corpus.dataset.in_range(query.box)
            ranked = fusion.rank(query.text, candidates, 10)
            scores.append(
                f1_at_k([r.business_id for r in ranked], query.answer_ids, 10)
            )
        return mean(scores)

    fusion_f1 = benchmark.pedantic(evaluate_fusion, rounds=1, iterations=1)

    system = semask(sl_corpus.prepared, llm=sl_corpus.llm)
    semask_scores = []
    for query in sl_queries:
        result = system.query(
            SpatialKeywordQuery(range=query.box, text=query.text)
        )
        semask_scores.append(f1_at_k(result.ids(10), query.answer_ids, 10))
    semask_f1 = mean(semask_scores)

    # The paper's point survives the stronger LLM-free combination:
    assert semask_f1 > fusion_f1, (
        f"LLM refinement ({semask_f1:.2f}) must beat RRF fusion ({fusion_f1:.2f})"
    )
    benchmark.extra_info["rrf_f1"] = round(fusion_f1, 3)
    benchmark.extra_info["semask_f1"] = round(semask_f1, 3)


def test_rtree_filtering_latency(benchmark, sl_corpus, sl_queries):
    stage = RTreeFilteringStage(sl_corpus.prepared)
    cycle = itertools.cycle(sl_queries)

    def run_one():
        query = next(cycle)
        return stage.run(
            SpatialKeywordQuery(range=query.box, text=query.text), k=10
        )

    candidates = benchmark(run_one)
    assert len(candidates) <= 10

    # Correctness cross-check against the payload-filter stage.
    prepared = sl_corpus.prepared
    default = FilteringStage(
        prepared.client, prepared.collection_name, prepared.embedder
    )
    query = sl_queries[0]
    skq = SpatialKeywordQuery(range=query.box, text=query.text)
    assert [c.business_id for c in stage.run(skq, k=10)] == [
        c.business_id for c in default.run(skq, k=10)
    ]
