"""Supporting-substrate benchmark: spatial range-query structures.

Not a paper table — validates that the range-filtering substrate is not
the bottleneck the paper's filtering claim depends on, and compares the
R-tree, the grid, and a linear scan on city-scale data.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint
from repro.geo.regions import SAINT_LOUIS
from repro.spatial.grid import GridIndex
from repro.spatial.rtree import RTree

_N = 5000


@pytest.fixture(scope="module")
def points():
    rng = random.Random(3)
    bounds = SAINT_LOUIS.bounds
    return [
        (
            i,
            rng.uniform(bounds.min_lat, bounds.max_lat),
            rng.uniform(bounds.min_lon, bounds.max_lon),
        )
        for i in range(_N)
    ]


@pytest.fixture(scope="module")
def boxes():
    rng = random.Random(4)
    bounds = SAINT_LOUIS.bounds
    result = []
    for _ in range(50):
        lat = rng.uniform(bounds.min_lat, bounds.max_lat)
        lon = rng.uniform(bounds.min_lon, bounds.max_lon)
        result.append(BoundingBox.around(GeoPoint(lat, lon), 5, 5))
    return result


def test_rtree_range_query(benchmark, points, boxes):
    tree = RTree.bulk_load(points)
    cycle = itertools.cycle(boxes)
    benchmark(lambda: tree.range_query(next(cycle)))


def test_grid_range_query(benchmark, points, boxes):
    grid = GridIndex(SAINT_LOUIS.bounds, cells_per_axis=64)
    for i, lat, lon in points:
        grid.insert(i, lat, lon)
    cycle = itertools.cycle(boxes)
    benchmark(lambda: grid.range_query(next(cycle)))


def test_linear_scan_range_query(benchmark, points, boxes):
    cycle = itertools.cycle(boxes)

    def scan():
        box = next(cycle)
        return [i for i, lat, lon in points if box.contains_coords(lat, lon)]

    benchmark(scan)


def test_rtree_bulk_load(benchmark, points):
    tree = benchmark.pedantic(
        RTree.bulk_load, args=(points,), rounds=1, iterations=1
    )
    assert len(tree) == _N
