"""Experiment T2 — the paper's Table 2: F1@10 per city, five systems.

Regenerates the table end to end (corpus -> preparation -> query set ->
all five systems) and attaches the reproduced rows, the paper's rows, and
the gains over the best baseline to the benchmark record. The assertions
encode the *shape* the paper reports: SemaSK ≳ SemaSK-O1 ≫ SemaSK-EM >
TF-IDF > LDA, with LLM refinement at least doubling the best baseline.

Downsized by default; ``REPRO_FULL=1`` reproduces at paper scale.
"""

from __future__ import annotations

from benchmarks.conftest import FULL_SCALE, POI_COUNT, QUERY_COUNT
from repro.eval.experiments import PAPER_TABLE2, run_table2
from repro.eval.report import format_table2

_CITIES = ("IN", "NS", "PH", "SB", "SL") if FULL_SCALE else ("SB", "SL")


def test_table2(benchmark):
    result = benchmark.pedantic(
        run_table2,
        kwargs=dict(
            cities=_CITIES,
            queries_per_city=QUERY_COUNT,
            poi_count=POI_COUNT,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table2(result))

    avg = result.averages
    # The paper's ordering of systems.
    assert avg["LDA"] < avg["TF-IDF"], "LDA should be the weakest baseline"
    assert avg["TF-IDF"] < avg["SemaSK-EM"], (
        "embeddings should beat lexical TF-IDF"
    )
    assert avg["SemaSK-EM"] < avg["SemaSK-O1"], (
        "LLM refinement should beat embeddings-only"
    )
    assert avg["SemaSK-EM"] < avg["SemaSK"]
    # The headline factor: ≥2x gain over the best baseline (paper: ~3x).
    assert result.gains_vs_best_baseline["SemaSK"] >= 1.0
    # SemaSK and SemaSK-O1 are comparable; gpt-4o wins overall.
    assert abs(avg["SemaSK"] - avg["SemaSK-O1"]) < 0.2

    benchmark.extra_info["k"] = result.k
    benchmark.extra_info["measured_avg"] = {
        s: round(v, 3) for s, v in avg.items()
    }
    benchmark.extra_info["paper_avg"] = PAPER_TABLE2["Avg."]
    benchmark.extra_info["gains_vs_best_baseline"] = {
        s: f"{g:+.0%}" for s, g in result.gains_vs_best_baseline.items()
    }
    benchmark.extra_info["rows"] = {
        c.city_code: {s: round(v, 3) for s, v in c.f1.items()}
        for c in result.cities
    }
    benchmark.extra_info["scale"] = "paper" if FULL_SCALE else "downsized"
