"""Ablation ABL-DIM — embedding dimensionality.

The paper uses text-embedding-3-small's 1,536 dimensions. Our simulated
embedder defaults to 256; this ablation sweeps the dimension and measures
embedding-only retrieval quality (SemaSK-EM style) so the README can
justify the default.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.semantic import SemanticEmbedder
from repro.eval.metrics import mean, recall_at_k
from repro.vectordb.distance import similarity


def _em_recall(corpus, queries, dim: int) -> float:
    embedder = SemanticEmbedder(dim=dim)
    recalls = []
    for query in queries:
        in_range = corpus.dataset.in_range(query.box)
        if not in_range:
            continue
        doc_vectors = np.stack(
            [embedder.embed(r.document_text()) for r in in_range]
        )
        q_vec = embedder.embed(query.text)
        sims = similarity(q_vec, doc_vectors)
        order = np.argsort(-sims)[:10]
        ids = [in_range[i].business_id for i in order]
        recalls.append(recall_at_k(ids, query.answer_ids, 10))
    return mean(recalls)


def test_embedding_dim_sweep(benchmark, sl_corpus, sl_queries):
    queries = sl_queries[:6]  # embedding every in-range doc is the cost

    def sweep():
        return {dim: _em_recall(sl_corpus, queries, dim) for dim in (64, 128, 256, 512)}

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Past ~128 dims the concept space is well separated; higher dims must
    # stay within noise of the best setting (random projections wobble).
    best = max(curve.values())
    assert curve[256] >= 0.75 * best
    assert curve[512] >= 0.75 * best
    benchmark.extra_info["recall_at_10_by_dim"] = {
        str(dim): round(r, 3) for dim, r in curve.items()
    }
