"""Experiment TIME — the paper's query-time claims (§4).

"It takes 0.04 seconds on average to run the filtering step of SemaSK,
while the refinement step depends on the LLM, which typically takes 2-3
seconds per query."

The filtering benchmark is *measured* (multi-round, on our substrate);
the refinement latency is the token-based model of a hosted LLM, recorded
in extra_info alongside the simulated-LLM compute time.
"""

from __future__ import annotations

import itertools

from repro.core.filtering import FilteringStage
from repro.core.query import SpatialKeywordQuery
from repro.core.variants import semask
from repro.eval.timing import measure_query_times


def test_filtering_latency(benchmark, sl_corpus, sl_queries):
    """Multi-round timing of the filtering stage (range + embedding kNN)."""
    prepared = sl_corpus.prepared
    stage = FilteringStage(
        prepared.client, prepared.collection_name, prepared.embedder
    )
    cycle = itertools.cycle(sl_queries)

    def run_one():
        query = next(cycle)
        return stage.run(
            SpatialKeywordQuery(range=query.box, text=query.text), k=10
        )

    candidates = benchmark(run_one)
    assert len(candidates) <= 10
    # Paper: 0.04 s on an M2 laptop; allow generous headroom on any machine.
    assert benchmark.stats["mean"] < 0.25
    benchmark.extra_info["paper_filter_s"] = 0.04


def test_filtering_batch_latency(benchmark, sl_corpus, sl_queries):
    """Batch mode: the whole vetted query set filtered in one run_batch call.

    Complements :func:`test_filtering_latency` (one query per round) with
    the amortized per-query cost of the batched read path; extra_info
    records the effective per-query latency for comparison against the
    paper's 0.04 s figure.
    """
    prepared = sl_corpus.prepared
    stage = FilteringStage(
        prepared.client, prepared.collection_name, prepared.embedder
    )
    queries = [
        SpatialKeywordQuery(range=q.box, text=q.text) for q in sl_queries
    ]

    results = benchmark(stage.run_batch, queries, k=10)
    assert len(results) == len(queries)
    assert all(len(candidates) <= 10 for candidates in results)
    per_query_s = benchmark.stats["mean"] / len(queries)
    assert per_query_s < 0.25
    benchmark.extra_info["batch_size"] = len(queries)
    benchmark.extra_info["per_query_s"] = round(per_query_s, 5)
    benchmark.extra_info["paper_filter_s"] = 0.04


def test_refinement_latency_model(benchmark, sl_corpus, sl_queries):
    """End-to-end timing split: measured filtering + modelled LLM latency."""
    system = semask(sl_corpus.prepared, llm=sl_corpus.llm)

    report = benchmark.pedantic(
        measure_query_times, args=(system, sl_queries), rounds=1, iterations=1
    )
    # The paper's band: refinement is seconds and dominates filtering.
    assert 0.5 < report.avg_refine_modeled_s < 6.0
    assert report.avg_refine_modeled_s > 5 * report.avg_filter_s
    benchmark.extra_info["avg_filter_s"] = round(report.avg_filter_s, 4)
    benchmark.extra_info["avg_refine_modeled_s"] = round(
        report.avg_refine_modeled_s, 2
    )
    benchmark.extra_info["avg_refine_compute_s"] = round(
        report.avg_refine_compute_s, 4
    )
    benchmark.extra_info["paper_refine_s"] = "2-3"
