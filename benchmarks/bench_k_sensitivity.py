"""Experiment T2-k25 — the paper's claim that patterns hold for k = 25.

"Similar result patterns are observed when k is varied (e.g., for k = 25)"
(§4). Runs the Saint Louis evaluation at k = 10 and k = 25 and asserts
the system ordering is unchanged.
"""

from __future__ import annotations

from repro.eval.experiments import evaluate_city

_SYSTEMS = ("TF-IDF", "SemaSK-EM", "SemaSK-O1", "SemaSK")


def _ordering(f1: dict[str, float]) -> list[str]:
    return sorted(_SYSTEMS, key=lambda s: f1[s])


def test_k25_pattern_matches_k10(benchmark, sl_corpus, sl_queries):
    def run():
        at_10 = evaluate_city(
            sl_corpus, sl_queries, k=10, systems=_SYSTEMS, candidate_k=10
        )
        at_25 = evaluate_city(
            sl_corpus, sl_queries, k=25, systems=_SYSTEMS, candidate_k=25
        )
        return at_10, at_25

    at_10, at_25 = benchmark.pedantic(run, rounds=1, iterations=1)

    # The paper's claim: same winner and same baseline-vs-LLM separation.
    assert _ordering(at_10.f1)[-1] in ("SemaSK", "SemaSK-O1")
    assert _ordering(at_25.f1)[-1] in ("SemaSK", "SemaSK-O1")
    for evaluation in (at_10, at_25):
        assert evaluation.f1["SemaSK"] > evaluation.f1["TF-IDF"]
        assert evaluation.f1["SemaSK-O1"] > evaluation.f1["SemaSK-EM"]

    benchmark.extra_info["f1_at_10"] = {
        s: round(v, 3) for s, v in at_10.f1.items()
    }
    benchmark.extra_info["f1_at_25"] = {
        s: round(v, 3) for s, v in at_25.f1.items()
    }
