"""Robustness check: does the Table-2 shape survive seed changes?

The paper evaluates one hand-vetted query set. With a scripted harness we
can re-draw the *entire world* (corpus, query set, model noise) under
different master seeds and check the system ordering is a property of the
design, not of one lucky draw.
"""

from __future__ import annotations

from repro.eval.corpus import build_corpus
from repro.eval.experiments import build_test_queries, evaluate_city
from repro.eval.metrics import mean

_SEEDS = (7, 21, 99)
_SYSTEMS = ("TF-IDF", "SemaSK-EM", "SemaSK")


def test_ordering_stable_across_seeds(benchmark):
    def sweep():
        rows = {}
        for seed in _SEEDS:
            corpus = build_corpus("SB", seed=seed, count=900)
            queries = build_test_queries(corpus, count=8)
            evaluation = evaluate_city(
                corpus, queries, k=10, systems=_SYSTEMS
            )
            rows[seed] = evaluation.f1
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for seed, f1 in rows.items():
        assert f1["SemaSK"] > f1["SemaSK-EM"], f"seed {seed}: LLM lost to EM"
        assert f1["SemaSK"] > f1["TF-IDF"], f"seed {seed}: LLM lost to TF-IDF"

    benchmark.extra_info["f1_by_seed"] = {
        str(seed): {s: round(v, 3) for s, v in f1.items()}
        for seed, f1 in rows.items()
    }
    benchmark.extra_info["semask_mean"] = round(
        mean([rows[s]["SemaSK"] for s in _SEEDS]), 3
    )
