"""WAL write throughput — ``fsync="batch"`` vs ``fsync="always"``.

``always`` pays one disk flush per write call; ``batch`` appends to the
OS and lets a flusher thread fsync every ~5 ms, trading a bounded
acknowledgement window (operations.md#durability) for near-undurable
throughput. This benchmark pins that trade: single-point upserts
against a WAL-attached collection in each mode.

Acceptance (ISSUE 6): batch ≥ 1.5× always (floor; target ≥ 4× — ~10×
observed on ext4), and durability must not change a single answer:
both logs replay to bit-identical collections. The measured numbers
are emitted as a ``BENCH_wal.json`` artifact.
"""

from __future__ import annotations

import time

import numpy as np

from repro.vectordb.collection import Collection, PointStruct
from repro.vectordb.persistence import load_collection, save_collection

DIM = 16
BASE_N = 100
WRITES = 1_000
SPEEDUP_FLOOR = 1.5
SPEEDUP_TARGET = 4.0


def _points(n: int, seed: int, prefix: str = "w") -> list[PointStruct]:
    rng = np.random.default_rng(seed)
    return [
        PointStruct(
            id=f"{prefix}{i}",
            vector=rng.standard_normal(DIM).astype(np.float32),
            payload={"i": i},
        )
        for i in range(n)
    ]


def _timed_writes(snapshot, mode: str) -> float:
    """Writes/second for single-point upserts under the given fsync mode."""
    collection = load_collection(snapshot, wal=mode)
    writes = _points(WRITES, seed=99)
    start = time.perf_counter()
    for point in writes:
        collection.upsert([point])
    elapsed = time.perf_counter() - start
    collection.close()  # batch mode: flushes the tail before returning
    return WRITES / elapsed


def _state(collection) -> list[tuple]:
    return [
        (pid, collection.point_vector(pid).tobytes())
        for pid in sorted(collection.point_ids())
    ]


def test_batch_fsync_throughput_floor(tmp_path, bench_artifact):
    """batch ≥ 1.5× always; both modes recover to identical collections."""
    base = Collection("walbench", DIM)
    base.upsert(_points(BASE_N, seed=1, prefix="b"))
    always_snap = tmp_path / "always"
    batch_snap = tmp_path / "batch"
    save_collection(base, always_snap)
    save_collection(base, batch_snap)
    base.close()

    always_wps = _timed_writes(always_snap, "always")
    batch_wps = _timed_writes(batch_snap, "batch")
    speedup = batch_wps / always_wps
    print(
        f"\n{WRITES} single-point upserts, {DIM}d, WAL attached:"
        f"\n  fsync=always  {always_wps:9.0f} writes/s"
        f"\n  fsync=batch   {batch_wps:9.0f} writes/s"
        f"\n  speedup: {speedup:.1f}x"
        f" (floor {SPEEDUP_FLOOR}x, target {SPEEDUP_TARGET}x)"
    )

    # Durability modes change *when* records hit the platter, never what
    # they say: both logs must replay to bit-identical collections.
    from_always = load_collection(always_snap)
    from_batch = load_collection(batch_snap)
    assert len(from_always) == BASE_N + WRITES
    assert _state(from_always) == _state(from_batch)
    from_always.close()
    from_batch.close()

    bench_artifact(
        "wal",
        {
            "writes": WRITES,
            "dim": DIM,
            "always_writes_per_s": round(always_wps),
            "batch_writes_per_s": round(batch_wps),
            "speedup": round(speedup, 2),
            "floor": SPEEDUP_FLOOR,
            "target": SPEEDUP_TARGET,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch fsync speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x floor"
    )
