"""Quantized-tier Pareto check — recall, latency, and resident bytes.

The quantization PR's acceptance targets, on a 20k-point 4-shard corpus:

* **recall**: graph search over int8 codes with exact float32 rescoring
  at the default ``rescore_factor`` keeps recall@10 at ≥ 0.95× the
  float32 graph baseline (both measured against brute-force ground
  truth) — the compressed tier may steer the traversal slightly, but
  rescoring must recover nearly all of it;
* **memory**: serving the quantized snapshot ``mmap=True`` keeps
  *resident vector bytes* under 0.5× the float32 matrix, measured two
  ways: structurally (heap-backed vector/code arrays across all shards
  — mmap-backed tiers count 0, they live in the page cache) and
  dynamically (memwatch peak allocation across the whole query workload
  — a tier silently materialized per query would show up here). Graph
  adjacency is deliberately excluded: it is identical for both tiers
  and its Python-object overhead would drown the vector signal;
* **latency**: per-query times for both tiers are recorded (not floor-
  asserted — CI machines vary) so regressions show up in the artifact.

Both tiers run on the *same* collection object — the float32 baseline is
measured first, then :class:`SQ8Store` is attached to the very same
shards/graph — so the comparison isolates the tier, not build noise.
Numbers land in ``BENCH_quantization.json`` via ``bench_artifact``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.testing.memwatch import MemWatcher
from repro.vectordb.collection import DEFAULT_RESCORE_FACTOR, PointStruct
from repro.vectordb.persistence import load_collection, save_collection
from repro.vectordb.quantization import SQ8Store
from repro.vectordb.sharded import ShardedCollection

POINTS = 20_000
DIM = 64
SHARDS = 4
K = 10
QUERIES = 100
TIMED_QUERIES = 50

#: sq8+rescore recall@10 must be at least this fraction of the float32
#: graph baseline's recall@10.
RECALL_RATIO_FLOOR = 0.95
#: Resident vector bytes (and peak query-time allocation) while serving
#: the mmap'd quantized snapshot must stay under this fraction of the
#: float32 matrix.
RESIDENT_RATIO_CEILING = 0.5


def _unit_vectors(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    vecs = rng.standard_normal((n, DIM)).astype(np.float32)
    return vecs / np.linalg.norm(vecs, axis=1, keepdims=True)


def _ground_truth(vecs: np.ndarray, queries: np.ndarray) -> list[set[str]]:
    """Brute-force cosine top-K ids (vectors are unit-norm)."""
    sims = queries @ vecs.T
    part = np.argpartition(-sims, K - 1, axis=1)[:, :K]
    return [{f"p{i}" for i in row} for row in part]


def _recall(collection, queries, truth, **search_kw) -> float:
    rows = collection.search_batch(queries, K, **search_kw)
    overlap = sum(
        len({h.id for h in row} & truth[i]) for i, row in enumerate(rows)
    )
    return overlap / (K * len(queries))


def _mean_latency_ms(collection, queries, **search_kw) -> float:
    start = time.perf_counter()
    for query in queries:
        collection.search(query, K, **search_kw)
    return (time.perf_counter() - start) * 1000 / len(queries)


def _heap_bytes(array) -> int:
    """``array.nbytes`` if heap-backed, 0 if (a view of) an ``np.memmap``."""
    if array is None:
        return 0
    base = array
    while isinstance(getattr(base, "base", None), np.ndarray):
        base = base.base
    return 0 if isinstance(base, np.memmap) else array.nbytes


def _resident_vector_bytes(collection) -> int:
    """Heap-resident bytes of every vector/code tier across all shards."""
    total = 0
    for shard in collection.shard_collections:
        flat = shard._flat
        total += _heap_bytes(flat.matrix())
        index = shard.hnsw_index
        if index is not None and index._vectors is not flat._vectors:
            total += _heap_bytes(index._vectors[: len(flat)])
        store = shard.sq8_store
        if store is not None and store.count:
            total += _heap_bytes(store.codes())
    return total


def test_sq8_recall_latency_and_resident_size(bench_artifact, tmp_path):
    vecs = _unit_vectors(POINTS, seed=3)
    queries = _unit_vectors(QUERIES, seed=17)
    truth = _ground_truth(vecs, queries)
    matrix_bytes = vecs.nbytes

    collection = ShardedCollection("quant-bench", DIM, shards=SHARDS)
    collection.upsert(
        PointStruct(id=f"p{i}", vector=vecs[i]) for i in range(POINTS)
    )
    collection.build_hnsw()

    # -- float32 graph baseline ----------------------------------------
    recall_f32 = _recall(collection, queries, truth)
    latency_f32_ms = _mean_latency_ms(collection, queries[:TIMED_QUERIES])

    # -- same shards, same graph, int8 codes + exact rescoring ---------
    for shard in collection.shard_collections:
        shard.attach_sq8(SQ8Store(shard.dim))
    assert collection.quantize == "sq8"
    collection.search(queries[0], K)  # first quantized search syncs codes
    recall_sq8 = _recall(collection, queries, truth)
    latency_sq8_ms = _mean_latency_ms(collection, queries[:TIMED_QUERIES])

    # -- resident size, serving the snapshot mmap'd --------------------
    snap = tmp_path / "snap"
    save_collection(collection, snap)
    collection.close()
    del collection

    served = load_collection(snap, mmap=True)
    assert served.quantize == "sq8"
    resident_bytes = _resident_vector_bytes(served)
    watcher = MemWatcher(enforce_contracts=False)
    with watcher.watching():
        served_rows = served.search_batch(queries, K)
        for query in queries[:TIMED_QUERIES]:
            served.search(query, K)
    peak_bytes = watcher.peak_alloc_bytes()
    stats = watcher.stats()
    served.close()
    assert all(len(row) == K for row in served_rows)

    ratio = recall_sq8 / recall_f32 if recall_f32 else 0.0
    print(
        f"\nsq8 tier on {POINTS} pts x {DIM}d, {SHARDS} shards "
        f"(rescore_factor={DEFAULT_RESCORE_FACTOR}):\n"
        f"  recall@{K}: f32 {recall_f32:.4f}, sq8 {recall_sq8:.4f} "
        f"(ratio {ratio:.4f}, floor {RECALL_RATIO_FLOOR})\n"
        f"  latency/query: f32 {latency_f32_ms:.2f} ms, "
        f"sq8 {latency_sq8_ms:.2f} ms\n"
        f"  mmap serve: resident vector bytes {resident_bytes / 1e6:.2f} MB, "
        f"query-workload peak alloc {peak_bytes / 1e6:.2f} MB vs "
        f"f32 matrix {matrix_bytes / 1e6:.2f} MB "
        f"(ceiling {RESIDENT_RATIO_CEILING}x)"
    )
    bench_artifact(
        "quantization",
        {
            "points": POINTS,
            "dim": DIM,
            "shards": SHARDS,
            "k": K,
            "rescore_factor": DEFAULT_RESCORE_FACTOR,
            "recall_f32": round(recall_f32, 4),
            "recall_sq8": round(recall_sq8, 4),
            "recall_ratio": round(ratio, 4),
            "recall_ratio_floor": RECALL_RATIO_FLOOR,
            "latency_f32_ms": round(latency_f32_ms, 3),
            "latency_sq8_ms": round(latency_sq8_ms, 3),
            "matrix_bytes": matrix_bytes,
            "resident_vector_bytes": resident_bytes,
            "serve_query_peak_alloc_bytes": peak_bytes,
            "serve_rss_bytes": stats.get("rss_bytes"),
            "resident_ratio_ceiling": RESIDENT_RATIO_CEILING,
        },
    )
    assert recall_sq8 >= RECALL_RATIO_FLOOR * recall_f32, (
        f"sq8 recall@{K} {recall_sq8:.4f} fell below "
        f"{RECALL_RATIO_FLOOR}x the float32 baseline {recall_f32:.4f} — "
        "rescoring is not recovering the quantization loss"
    )
    budget = int(matrix_bytes * RESIDENT_RATIO_CEILING)
    assert resident_bytes <= budget, (
        f"mmap-served quantized collection holds {resident_bytes} B of "
        f"heap vector storage (budget {budget} B) — a tier that should "
        "stay mapped was materialized"
    )
    watcher.assert_peak_below(budget, "quantized query workload")
