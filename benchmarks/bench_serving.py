"""Serving throughput — request coalescing vs uncoalesced single queries.

The serving PR's acceptance target: 16 concurrent clients issuing
single-query requests through the coalescing serving layer achieve
**≥ 2× the queries/sec** of the same 16 clients with coalescing off,
with identical results. The win is PR 1's batch engine reaching callers
that each hold only one query: the coalescer stacks concurrent requests
into one ``search_batch`` call, so the filter's candidate set is
evaluated once per batch instead of once per request, and scoring runs
as one matrix product. Observed ≈ 3× on the one-core seeded corpus
(uncoalesced, every request pays its own GIL-bound filter scan).

Two measurements:

* ``test_serving_layer_coalescing_speedup`` — 16 threads through
  :meth:`ServingContext.search` (exactly what HTTP handler threads
  call), coalesced vs not. This carries the asserted 2× floor: it
  isolates the serving-layer effect from socket noise, so it holds on
  one-core CI machines.
* ``test_http_end_to_end_throughput`` — the same comparison through
  real HTTP connections against a live server. Socket + request-parsing
  overhead is identical in both arms and *dilutes* the ratio — and on a
  one-core machine the benchmark's own 16 client threads contend with
  the server's handler threads and the dispatcher for the GIL, which
  can invert the measurement entirely. This test therefore asserts
  result equivalence (the part that must always hold) and reports the
  throughput numbers for the record; ``docs/serving.md`` discusses when
  the socket-level ratio is meaningful.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.regions import city_by_code
from repro.serving.http import ServingContext, ServingServer
from repro.vectordb.filters import GeoBoundingBoxFilter

CLIENTS = 16
REQUESTS_PER_CLIENT = 12
SPEEDUP_FLOOR = 2.0


def _query_vectors(prepared, sl_queries) -> list[np.ndarray]:
    return [prepared.embedder.embed(q.text) for q in sl_queries]


def _city_filter() -> GeoBoundingBoxFilter:
    center = city_by_code("SL").center
    return GeoBoundingBoxFilter(
        "location",
        BoundingBox(
            center.lat - 0.025, center.lon - 0.03,
            center.lat + 0.025, center.lon + 0.03,
        ),
    )


def _run_clients(worker) -> float:
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _assert_identical(coalesced, uncoalesced) -> None:
    """Same hits both ways: ids and payloads equal, scores to float noise."""
    for per_client_c, per_client_u in zip(coalesced, uncoalesced):
        for hits_c, hits_u in zip(per_client_c, per_client_u):
            assert [h.id for h in hits_c] == [h.id for h in hits_u]
            np.testing.assert_allclose(
                [h.score for h in hits_c],
                [h.score for h in hits_u],
                rtol=0, atol=1e-5,
            )


def test_serving_layer_coalescing_speedup(sl_corpus, sl_queries, bench_artifact):
    """16 concurrent clients: coalesced ≥ 2× uncoalesced, same results."""
    prepared = sl_corpus.prepared
    vectors = _query_vectors(prepared, sl_queries)
    flt = _city_filter()
    name = prepared.collection_name
    with ServingContext(
        prepared.client, own_client=False, max_batch=64, max_wait_s=0.004
    ) as context:

        def run_arm(coalesce: bool):
            results = [[None] * REQUESTS_PER_CLIENT for _ in range(CLIENTS)]

            def worker(ci: int) -> None:
                for j in range(REQUESTS_PER_CLIENT):
                    results[ci][j] = context.search(
                        name, vectors[(ci + j) % len(vectors)], 10,
                        flt=flt, coalesce=coalesce,
                    )

            return _run_clients(worker), results

        run_arm(False), run_arm(True)  # warm-up both paths
        uncoalesced_s = min(run_arm(False)[0] for _ in range(3))
        coalesced_s = min(run_arm(True)[0] for _ in range(3))
        _, results_u = run_arm(False)
        _, results_c = run_arm(True)

    _assert_identical(results_c, results_u)
    total = CLIENTS * REQUESTS_PER_CLIENT
    speedup = uncoalesced_s / coalesced_s
    print(
        f"\nserving layer, {CLIENTS} clients x {REQUESTS_PER_CLIENT}: "
        f"uncoalesced {total / uncoalesced_s:.0f} q/s, "
        f"coalesced {total / coalesced_s:.0f} q/s, "
        f"speedup {speedup:.2f}x"
    )
    bench_artifact(
        "serving",
        {
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "uncoalesced_qps": round(total / uncoalesced_s),
            "coalesced_qps": round(total / coalesced_s),
            "speedup": round(speedup, 2),
            "floor": SPEEDUP_FLOOR,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"coalescing speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x floor"
    )


def test_http_end_to_end_throughput(sl_corpus, sl_queries):
    """Live HTTP server: identical results; throughput reported."""
    prepared = sl_corpus.prepared
    vectors = [v.tolist() for v in _query_vectors(prepared, sl_queries)]
    flt = _city_filter()
    filter_json = {
        "geo_bounding_box": {
            "key": "location",
            "min_lat": flt.box.min_lat, "min_lon": flt.box.min_lon,
            "max_lat": flt.box.max_lat, "max_lon": flt.box.max_lon,
        }
    }
    name = prepared.collection_name
    context = ServingContext(
        prepared.client, own_client=False, max_batch=64, max_wait_s=0.004
    )
    with ServingServer(context, port=0).start() as server:
        host, port = server.address

        def run_arm(coalesce: bool):
            results = [[None] * REQUESTS_PER_CLIENT for _ in range(CLIENTS)]

            def worker(ci: int) -> None:
                conn = http.client.HTTPConnection(host, port, timeout=60)
                for j in range(REQUESTS_PER_CLIENT):
                    body = json.dumps({
                        "collection": name,
                        "vector": vectors[(ci + j) % len(vectors)],
                        "k": 10,
                        "filter": filter_json,
                        "coalesce": coalesce,
                        "with_payload": False,  # ids+scores: tips are big
                    })
                    conn.request(
                        "POST", "/search", body,
                        {"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    results[ci][j] = json.loads(response.read())["hits"]
                conn.close()

            return _run_clients(worker), results

        run_arm(False), run_arm(True)  # warm-up: connections, caches
        uncoalesced_s = min(run_arm(False)[0] for _ in range(2))
        coalesced_s = min(run_arm(True)[0] for _ in range(2))
        _, results_u = run_arm(False)
        _, results_c = run_arm(True)

    for per_client_c, per_client_u in zip(results_c, results_u):
        for hits_c, hits_u in zip(per_client_c, per_client_u):
            assert [h["id"] for h in hits_c] == [h["id"] for h in hits_u]
            np.testing.assert_allclose(
                [h["score"] for h in hits_c],
                [h["score"] for h in hits_u],
                rtol=0, atol=1e-5,
            )
    total = CLIENTS * REQUESTS_PER_CLIENT
    ratio = uncoalesced_s / coalesced_s
    print(
        f"\nHTTP end-to-end, {CLIENTS} clients x {REQUESTS_PER_CLIENT}: "
        f"uncoalesced {total / uncoalesced_s:.0f} q/s, "
        f"coalesced {total / coalesced_s:.0f} q/s, ratio {ratio:.2f}x "
        "(report-only: socket overhead and client-side GIL share are "
        "identical in both arms and machine-dependent; the asserted "
        "floor lives in test_serving_layer_coalescing_speedup)"
    )
