"""Ablation ABL-HNSW — recall/latency of the from-scratch HNSW index.

The paper relies on Qdrant's HNSW for approximate kNN in the filtering
step. This ablation validates our implementation: recall@10 against exact
search across ``ef`` values, plus build and search timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vectordb.flat import FlatIndex
from repro.vectordb.hnsw import HNSWIndex

_N = 3000
_DIM = 64
_QUERIES = 40


def _unit(n: int, dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    vecs = rng.standard_normal((n, dim)).astype(np.float32)
    return vecs / np.linalg.norm(vecs, axis=1, keepdims=True)


@pytest.fixture(scope="module")
def indexes():
    vecs = _unit(_N, _DIM, seed=1)
    hnsw = HNSWIndex(_DIM, m=16, ef_construction=100, seed=2)
    flat = FlatIndex(_DIM)
    for v in vecs:
        hnsw.add(v)
        flat.add(v)
    return vecs, hnsw, flat


def _recall(hnsw: HNSWIndex, flat: FlatIndex, queries: np.ndarray, ef: int) -> float:
    hits = 0
    for q in queries:
        approx = {i for i, _ in hnsw.search(q, 10, ef=ef)}
        exact = {i for i, _ in flat.search(q, 10)}
        hits += len(approx & exact)
    return hits / (len(queries) * 10)


def test_hnsw_build(benchmark):
    vecs = _unit(800, _DIM, seed=3)

    def build():
        index = HNSWIndex(_DIM, m=16, ef_construction=100, seed=4)
        for v in vecs:
            index.add(v)
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(index) == 800


def test_hnsw_search_latency(benchmark, indexes):
    vecs, hnsw, _ = indexes
    queries = _unit(_QUERIES, _DIM, seed=5)
    import itertools
    cycle = itertools.cycle(queries)

    results = benchmark(lambda: hnsw.search(next(cycle), 10, ef=64))
    assert len(results) == 10


def test_exact_search_latency(benchmark, indexes):
    _, _, flat = indexes
    queries = _unit(_QUERIES, _DIM, seed=6)
    import itertools
    cycle = itertools.cycle(queries)

    results = benchmark(lambda: flat.search(next(cycle), 10))
    assert len(results) == 10


def test_recall_vs_ef(benchmark, indexes):
    """The recall-vs-beam-width curve: wider beams, better recall."""
    _, hnsw, flat = indexes
    queries = _unit(_QUERIES, _DIM, seed=7)

    def sweep():
        return {ef: _recall(hnsw, flat, queries, ef) for ef in (16, 32, 64, 128)}

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert curve[128] >= curve[16] - 0.02, "recall should improve with ef"
    assert curve[128] >= 0.9, f"recall@10 too low at ef=128: {curve[128]}"
    benchmark.extra_info["recall_at_10_by_ef"] = {
        str(ef): round(r, 3) for ef, r in curve.items()
    }
