"""Shard scaling — batched filtered-search throughput vs shard count.

Sharding speeds up filtered search through two independent mechanisms:

1. **Dispatch crossover.** A broad filter over one monolithic collection
   matches more points than ``BRUTE_FORCE_THRESHOLD``, so every query
   pays a per-query HNSW graph traversal with a predicate (Python-heavy).
   Hash-partitioned shards each see only ``matching / N`` candidates —
   under the threshold — so the whole batch runs as one exact BLAS
   matrix product per shard. This effect is machine-independent.
2. **Parallel fan-out.** Per-shard searches run on a thread pool and the
   exact kernel releases the GIL inside BLAS, so on multi-core machines
   the per-shard products overlap. (On a single-core CI runner this
   contributes nothing; the floor below is carried by mechanism 1.)

The corpus is scaled down so the suite stays fast, with the brute-force
threshold scaled down proportionally — the dispatch crossover is what is
being measured, not the absolute constant. Acceptance (ISSUE 2): batched
filtered throughput at 4 shards ≥ 1.5× the 1-shard collection. Observed
on a single core: ~4–5×. The sharded results are also checked against
unsharded *exact* ground truth — the speedup must not come from losing
hits.
"""

from __future__ import annotations

import time

import numpy as np

from repro.testing.memwatch import MemWatcher
from repro.vectordb.collection import Collection, PointStruct
from repro.vectordb.filters import FieldRange
from repro.vectordb.sharded import ShardedCollection

N_POINTS = 4000
DIM = 64
BATCH = 64
K = 10
#: Downscaled with the corpus (production default: 8192).
BRUTE_FORCE_THRESHOLD = 2048
SHARD_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR_AT_4 = 1.5
#: stars ∈ {1..50}; gte=6 keeps 90% of points — broad enough to spill a
#: monolithic collection past the threshold, split shards stay under it.
FILTER = FieldRange("stars", gte=6.0)


def _points() -> list[PointStruct]:
    rng = np.random.default_rng(7)
    vecs = rng.standard_normal((N_POINTS, DIM)).astype(np.float32)
    vecs /= np.linalg.norm(vecs, axis=1, keepdims=True)
    return [
        PointStruct(
            id=f"poi-{i}",
            vector=vecs[i],
            payload={"stars": float(i % 50) + 1.0, "city": f"c{i % 5}"},
        )
        for i in range(N_POINTS)
    ]


def _queries() -> np.ndarray:
    rng = np.random.default_rng(11)
    queries = rng.standard_normal((BATCH, DIM)).astype(np.float32)
    return queries / np.linalg.norm(queries, axis=1, keepdims=True)


def _build(points: list[PointStruct], shards: int):
    if shards == 1:
        collection = Collection("scale", DIM)
        collection.BRUTE_FORCE_THRESHOLD = BRUTE_FORCE_THRESHOLD
        collection.upsert(points)
        return collection
    collection = ShardedCollection("scale", DIM, shards=shards)
    collection.upsert(points)
    for shard in collection.shard_collections:
        shard.BRUTE_FORCE_THRESHOLD = BRUTE_FORCE_THRESHOLD
    return collection


def _best_of(runs: int, fn) -> float:
    best = float("inf")
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_shard_scaling_throughput(bench_artifact):
    """4-shard batched filtered throughput ≥ 1.5× the 1-shard baseline."""
    points = _points()
    queries = _queries()

    # Ground truth: unsharded exact scoring over the filter matches.
    truth_collection = Collection("truth", DIM)
    truth_collection.upsert(points)
    truth = truth_collection.search_batch(queries, K, flt=FILTER, exact=True)
    truth_ids = [[h.id for h in hits] for hits in truth]

    throughput: dict[int, float] = {}
    memwatch_stats: dict[int, dict] = {}
    for shards in SHARD_COUNTS:
        collection = _build(points, shards)
        matching = collection.count(FILTER)
        assert matching > BRUTE_FORCE_THRESHOLD  # broad filter, as designed
        # Warm-up: lets the 1-shard side build its (lazy) HNSW graph
        # outside the timed region; the sharded sides stay graph-free
        # because their per-shard candidate sets fit the exact path.
        collection.search_batch(queries, K, flt=FILTER)
        elapsed = _best_of(
            3, lambda: collection.search_batch(queries, K, flt=FILTER)
        )
        throughput[shards] = BATCH / elapsed
        hits = collection.search_batch(queries, K, flt=FILTER)
        if shards > 1:  # exact dispatch per shard → must equal ground truth
            assert [[h.id for h in row] for row in hits] == truth_ids
        # Memory probe on an extra untimed batch: tracemalloc overhead
        # must stay out of the timed arms the floor is asserted on.
        probe = MemWatcher(enforce_contracts=False)
        with probe.watching():
            collection.search_batch(queries, K, flt=FILTER)
        memwatch_stats[shards] = probe.stats()
        print(
            f"\nshards={shards}: batch-{BATCH} filtered search "
            f"{elapsed * 1000:.1f} ms, {throughput[shards]:.0f} q/s"
        )

    speedup = throughput[4] / throughput[1]
    print(f"\n4-shard vs 1-shard filtered throughput: {speedup:.1f}x")
    bench_artifact(
        "shard_scaling",
        {
            "points": N_POINTS,
            "dim": DIM,
            "batch_size": BATCH,
            "qps_by_shards": {
                str(shards): round(qps, 1)
                for shards, qps in throughput.items()
            },
            "speedup_4_vs_1": round(speedup, 2),
            "floor": SPEEDUP_FLOOR_AT_4,
            "memwatch_by_shards": {
                str(shards): stats
                for shards, stats in memwatch_stats.items()
            },
        },
    )
    assert speedup >= SPEEDUP_FLOOR_AT_4, (
        f"4-shard speedup {speedup:.2f}x below {SPEEDUP_FLOOR_AT_4}x floor"
    )


def test_shard_scaling_exact_path_equivalence():
    """Per-shard exact merges reproduce unsharded exact hits bit-for-rank."""
    points = _points()
    queries = _queries()[:16]
    plain = Collection("eq", DIM)
    plain.upsert(points)
    sharded = _build(points, 4)
    expected = plain.search_batch(queries, K, flt=FILTER, exact=True)
    got = sharded.search_batch(queries, K, flt=FILTER, exact=True)
    for want_row, got_row in zip(expected, got):
        assert [h.id for h in want_row] == [h.id for h in got_row]
        np.testing.assert_allclose(
            [h.score for h in want_row],
            [h.score for h in got_row],
            rtol=0, atol=1e-5,
        )
