"""Setup shim: enables legacy editable installs where `wheel` is unavailable."""
from setuptools import setup

setup()
