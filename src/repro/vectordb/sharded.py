"""Sharded collections: hash-partitioned points across N sub-collections.

A :class:`ShardedCollection` splits one logical collection into N
:class:`~repro.vectordb.collection.Collection` shards, assigning each point
by a stable hash of its id (:func:`shard_for`). It implements the full
``Collection`` read/write surface — ``upsert``, ``search``, ``search_batch``,
``count``, ``scroll``, ``retrieve``, ``set_payload``, payload indexes — so
the filtering stage, the client facade, and persistence all work unchanged
over either backend.

Searches fan out across shards on a thread pool (the exact-scoring kernel
is a BLAS matrix product, which releases the GIL) and the per-shard top-k
lists are merged into the exact global top-k. Filters are evaluated per
shard, against that shard's payloads and payload indexes only — which also
keeps each shard's filtered candidate set small enough for the exact
brute-force path where a monolithic collection would spill past
``BRUTE_FORCE_THRESHOLD`` into graph traversal.

Equivalence contract: on the exact-scoring paths (``exact=True``, or any
filtered search whose per-shard candidate sets stay under the brute-force
threshold) a sharded search returns the same hits as an unsharded
collection holding the same points, with scores equal up to float
accumulation order — up to *exact score ties*: points with identical
scores (e.g. duplicate vectors) may rank or tie-break into the top-k
differently, because the unsharded exact path's own tie order is an
``argsort`` implementation artifact no merge can reproduce. Approximate (HNSW) searches traverse one graph per
shard instead of one global graph, so hit sets may differ there — every
shard's graph is searched, so recall is typically comparable or better,
but each per-shard graph is still approximate and no ordering against
the unsharded graph holds in general.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence
from itertools import chain
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Union

import numpy as np

from repro.errors import CollectionError, DimensionMismatch, PointNotFound
from repro.vectordb.collection import (
    Collection,
    HnswConfig,
    PointStruct,
    SearchHit,
)
from repro.vectordb.distance import Metric
from repro.vectordb.filters import Filter


def shard_for(point_id: str, n_shards: int) -> int:
    """Stable shard assignment for ``point_id``.

    CRC-32 of the UTF-8 id, modulo the shard count — deterministic across
    processes and Python versions (unlike the salted builtin ``hash``), so
    snapshots written by one process route ids identically in another.
    """
    if n_shards <= 0:
        raise CollectionError(f"shard count must be positive, got {n_shards}")
    return zlib.crc32(point_id.encode("utf-8")) % n_shards


class ShardedCollection:
    """N hash-partitioned shards behind the ``Collection`` surface."""

    def __init__(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
        shards: int = 2,
    ) -> None:
        if shards <= 0:
            raise CollectionError(
                f"shard count must be positive, got {shards}"
            )
        hnsw = hnsw or HnswConfig()
        self._init_fields(
            name,
            metric,
            hnsw,
            [
                Collection(
                    f"{name}/shard-{i:02d}", dim, metric=metric, hnsw=hnsw,
                )
                for i in range(shards)
            ],
        )

    def _init_fields(
        self,
        name: str,
        metric: Metric,
        hnsw: HnswConfig,
        shards: list[Collection],
    ) -> None:
        if not name:
            raise CollectionError("collection name must be non-empty")
        self.name = name
        self._metric = metric
        self._hnsw_config = hnsw
        self._shards = shards
        self._id_to_shard: dict[str, int] = {}
        self._order: list[str] = []  # global insertion order, for scroll
        # Created eagerly so concurrent first searches cannot race on it;
        # worker threads only spawn when the first fan-out runs.
        self._pool = ThreadPoolExecutor(
            max_workers=len(shards), thread_name_prefix=f"shard-{name}"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    @property
    def dim(self) -> int:
        """Vector dimensionality of the collection."""
        return self._shards[0].dim

    @property
    def metric(self) -> Metric:
        """The similarity metric."""
        return self._metric

    @property
    def hnsw_config(self) -> HnswConfig:
        """The HNSW tunables shared by every shard."""
        return self._hnsw_config

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def shard_collections(self) -> tuple[Collection, ...]:
        """The underlying shards, in shard-index order (read-mostly)."""
        return tuple(self._shards)

    @property
    def point_order(self) -> tuple[str, ...]:
        """All point ids in global insertion order."""
        return tuple(self._order)

    @property
    def indexed_payload_fields(self) -> frozenset[str]:
        """Payload fields with a secondary index (identical per shard)."""
        return self._shards[0].indexed_payload_fields

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def upsert(self, points: Iterable[PointStruct]) -> int:
        """Insert new points, routing each to its hash shard.

        Same contract as :meth:`Collection.upsert`: payload-only updates
        are allowed for known ids, vector replacement raises. Returns the
        number of points inserted. Points are bucketed so each shard sees
        one batch, keeping bulk ingest at one upsert call per shard.
        """
        n = len(self._shards)
        buckets: dict[int, list[PointStruct]] = {}
        arrivals: list[tuple[str, int]] = []  # first sight of unknown ids
        pending: set[str] = set()
        for point in points:
            index = shard_for(point.id, n)
            buckets.setdefault(index, []).append(point)
            if point.id not in self._id_to_shard and point.id not in pending:
                arrivals.append((point.id, index))
                pending.add(point.id)
        inserted = 0
        try:
            for index, bucket in buckets.items():
                inserted += self._shards[index].upsert(bucket)
        except BaseException:
            # Like Collection.upsert, a batch that raises mid-way stays
            # partially applied; reconcile the order/routing tables
            # against the shards' actual state before propagating.
            applied = {
                index: set(self._shards[index].point_ids())
                for index in {index for _, index in arrivals}
            }
            for point_id, index in arrivals:
                if point_id in applied[index]:
                    self._id_to_shard[point_id] = index
                    self._order.append(point_id)
            raise
        for point_id, index in arrivals:  # success: every arrival landed
            self._id_to_shard[point_id] = index
            self._order.append(point_id)
        return inserted

    def create_payload_index(self, field: str) -> None:
        """Build a hash index over ``field`` on every shard."""
        for shard in self._shards:
            shard.create_payload_index(field)

    def close(self) -> None:
        """Release the fan-out thread pool (idempotent).

        The data stays readable, but multi-shard searches are no longer
        possible after closing; long-lived processes that drop a sharded
        collection should close it rather than wait for GC to reap the
        worker threads.
        """
        self._pool.shutdown(wait=False)

    def set_payload(self, point_id: str, payload: dict[str, Any]) -> None:
        """Merge ``payload`` into an existing point's payload."""
        self._owning_shard(point_id).set_payload(point_id, payload)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def retrieve(self, point_id: str) -> SearchHit:
        """Fetch one point's payload (score 1.0 placeholder)."""
        return self._owning_shard(point_id).retrieve(point_id)

    def count(self, flt: Filter | None = None) -> int:
        """Points matching ``flt``; each shard narrows via its indexes."""
        if flt is None:
            return len(self._order)
        return sum(shard.count(flt) for shard in self._shards)

    def scroll(self, flt: Filter | None = None) -> list[SearchHit]:
        """All points (optionally filtered), in global insertion order."""
        matched: dict[str, SearchHit] = {}
        for shard in self._shards:
            for hit in shard.scroll(flt):
                matched[hit.id] = hit
        return [matched[pid] for pid in self._order if pid in matched]

    def search(
        self,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
    ) -> list[SearchHit]:
        """Global top-``k``: per-shard top-``k`` fan-out, exact merge."""
        query = np.asarray(vector, dtype=np.float32)
        if query.shape != (self.dim,):
            raise DimensionMismatch(
                f"query shape {query.shape} != ({self.dim},)"
            )
        per_shard = self._fan_out(
            lambda shard: shard.search(query, k, flt=flt, exact=exact, ef=ef)
        )
        return _merge_top_k(per_shard, k)

    def search_batch(
        self,
        vectors: np.ndarray | Sequence[Sequence[float]],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
    ) -> list[list[SearchHit]]:
        """Batched :meth:`search`: one fan-out, per-query exact merges."""
        queries = np.asarray(vectors, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatch(
                f"queries shape {queries.shape} != (n, {self.dim})"
            )
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        per_shard = self._fan_out(
            lambda shard: shard.search_batch(
                queries, k, flt=flt, exact=exact, ef=ef
            )
        )
        return [
            _merge_top_k([shard_lists[q] for shard_lists in per_shard], k)
            for q in range(n_queries)
        ]

    # ------------------------------------------------------------------
    # persistence support (used by repro.vectordb.persistence)
    # ------------------------------------------------------------------

    @classmethod
    def from_shards(
        cls,
        name: str,
        shards: Sequence[Collection],
        order: Sequence[str],
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
    ) -> "ShardedCollection":
        """Reassemble a sharded collection from loaded shard snapshots.

        ``order`` is the global insertion order persisted alongside the
        shards; it must cover exactly the ids present across ``shards``.
        """
        if not shards:
            raise CollectionError("from_shards needs at least one shard")
        dims = {shard.dim for shard in shards}
        if len(dims) != 1:
            raise CollectionError(
                f"shard dims differ: {sorted(dims)}"
            )
        sharded = cls.__new__(cls)
        sharded._init_fields(name, metric, hnsw or HnswConfig(), list(shards))
        seen: dict[str, int] = {}
        for index, shard in enumerate(shards):
            for point_id in shard.point_ids():
                if point_id in seen:
                    raise CollectionError(
                        f"point {point_id!r} present in multiple shards"
                    )
                seen[point_id] = index
        if set(order) != set(seen) or len(order) != len(seen):
            raise CollectionError(
                "point order does not match the ids stored in the shards"
            )
        sharded._id_to_shard = seen
        sharded._order = list(order)
        return sharded

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _owning_shard(self, point_id: str) -> Collection:
        index = self._id_to_shard.get(point_id)
        if index is None:
            raise PointNotFound(f"point {point_id!r} not in {self.name!r}")
        return self._shards[index]

    def _fan_out(self, task) -> list[Any]:
        """Run ``task`` over every non-empty shard, threaded when > 1.

        BLAS scoring releases the GIL, so shard searches overlap on
        multi-core machines; on one core the pool degrades to (cheap)
        serial execution.
        """
        live = [shard for shard in self._shards if len(shard)]
        if not live:
            return []
        if len(live) == 1:
            return [task(live[0])]
        return list(self._pool.map(task, live))


def _merge_top_k(
    per_shard: Sequence[list[SearchHit]], k: int
) -> list[SearchHit]:
    """Exact global top-``k`` from per-shard top-``k`` lists.

    At most ``shards × k`` hits reach the merge, so a stable sort is
    plenty; score ties keep shard-index order (each shard list is already
    sorted descending), which is deterministic across runs — but not the
    same order an unsharded exact search gives tied scores (see the
    module docstring's equivalence caveat).
    """
    ranked = sorted(
        chain.from_iterable(per_shard), key=lambda hit: -hit.score
    )
    return ranked[:k]


#: Either vector-store backend; the client and pipeline accept both.
AnyCollection = Union[Collection, ShardedCollection]
