"""Sharded collections: hash-partitioned points across N sub-collections.

A :class:`ShardedCollection` splits one logical collection into N
:class:`~repro.vectordb.collection.Collection` shards, assigning each point
by a stable hash of its id (:func:`shard_for`). It implements the full
``Collection`` read/write surface — ``upsert``, ``search``, ``search_batch``,
``count``, ``scroll``, ``retrieve``, ``set_payload``, payload indexes — so
the filtering stage, the client facade, and persistence all work unchanged
over either backend.

Searches fan out across shards through a pluggable *executor*. The
default (``parallel="thread"``) runs per-shard calls on a thread pool —
the exact-scoring kernel is a BLAS matrix product, which releases the
GIL — and the per-shard top-k lists are merged into the exact global
top-k. ``parallel="process"`` (or :meth:`ShardedCollection.set_parallel`)
swaps in :class:`repro.serving.workers.ProcessShardExecutor`, which keeps
one long-lived worker process per shard so the *Python-bound* parts of a
filtered search (payload filter evaluation) scale with shard count too;
writes are applied locally and mirrored to the workers so both copies
stay identical. Offline index builds fan
out too, but on a *process* pool: :meth:`ShardedCollection.build_hnsw`
builds each shard's HNSW graph in a worker process (graph construction
is Python-heavy, so threads would serialize on the GIL) and attaches the
pickled results — data preparation calls it eagerly so queries never pay
for lazy graph construction. Filters are evaluated per
shard, against that shard's payloads and payload indexes only — which also
keeps each shard's filtered candidate set small enough for the exact
brute-force path where a monolithic collection would spill past
``BRUTE_FORCE_THRESHOLD`` into graph traversal.

Equivalence contract: on the exact-scoring paths (``exact=True``, or any
filtered search whose per-shard candidate sets stay under the brute-force
threshold) a sharded search returns the same hits as an unsharded
collection holding the same points, with scores equal up to float
accumulation order — up to *exact score ties*: points with identical
scores (e.g. duplicate vectors) may rank or tie-break into the top-k
differently, because the unsharded exact path's own tie order is an
``argsort`` implementation artifact no merge can reproduce. Approximate (HNSW) searches traverse one graph per
shard instead of one global graph, so hit sets may differ there — every
shard's graph is searched, so recall is typically comparable or better,
but each per-shard graph is still approximate and no ordering against
the unsharded graph holds in general.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import warnings
import zlib
from collections.abc import Iterable, Sequence
from itertools import chain
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Union

import numpy as np

from repro.errors import CollectionError, DimensionMismatch, PointNotFound
from repro.vectordb.contracts import array_contract
from repro.vectordb.collection import (
    Collection,
    HnswConfig,
    PointStruct,
    SearchHit,
)
from repro.vectordb.deadline import Deadline
from repro.vectordb.distance import Metric
from repro.vectordb.filters import Filter
from repro.vectordb.hnsw import HNSWIndex


def _build_pool_context():
    """Start-method context for the per-shard build pool.

    ``fork`` is the cheap path (no re-import in the workers) but is only
    safe while the process is single-threaded — forking with live
    threads (e.g. a sharded collection's fan-out pool after a search)
    can clone a held lock into the child and deadlock it. The eager
    prepare-time build runs before any search threads exist, so it gets
    ``fork``; otherwise fall back to ``forkserver``/``spawn``, whose
    workers start clean.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


def _build_shard_graph(
    payload: tuple[np.ndarray, int, HnswConfig]
) -> HNSWIndex:
    """Worker-process entry: build one shard's HNSW graph from its vectors.

    Module-level so it is importable under both ``fork`` and ``spawn``
    start methods; the built index pickles back to the parent.
    """
    vectors, dim, cfg = payload
    return HNSWIndex.from_vectors(
        vectors, m=cfg.m, ef_construction=cfg.ef_construction,
        seed=cfg.seed, dim=dim,
    )


class ThreadShardExecutor:
    """Default fan-out executor: per-shard calls on an in-process thread pool.

    The executor seam: :class:`ShardedCollection` routes every fan-out
    read through :meth:`run` and every write through :meth:`mirror_write`,
    so alternative executors (e.g. the process-per-shard
    :class:`repro.serving.workers.ProcessShardExecutor`) can swap in
    without the collection knowing how calls reach its shards. Threads
    suit BLAS-bound scoring (the kernel releases the GIL); they do not
    help pure-Python filter evaluation, which is what the process
    executor exists for.
    """

    kind = "thread"

    def __init__(self, shards: Sequence[Collection], name: str) -> None:
        self._shards = list(shards)
        # Created eagerly so concurrent first searches cannot race on it;
        # worker threads only spawn when the first fan-out runs.
        self._pool = ThreadPoolExecutor(
            max_workers=len(self._shards),
            thread_name_prefix=f"shard-{name}",
        )

    def run(
        self, indices: Sequence[int], method: str, *args: Any, **kwargs: Any
    ) -> list[Any]:
        """Call ``method(*args, **kwargs)`` on each indexed shard.

        Returns results in ``indices`` order; a single-shard call skips
        the pool entirely (serial is cheaper than a dispatch round-trip).
        Exceptions from any shard propagate to the caller.
        """
        if len(indices) == 1:
            shard = self._shards[indices[0]]
            return [getattr(shard, method)(*args, **kwargs)]
        return list(
            self._pool.map(
                lambda i: getattr(self._shards[i], method)(*args, **kwargs),
                indices,
            )
        )

    def mirror_write(
        self, index: int, method: str, *args: Any, **kwargs: Any
    ) -> None:
        """No-op: in-process threads read the parent's shards directly."""

    def close(self, wait: bool = False) -> None:
        """Shut the thread pool down (idempotent)."""
        self._pool.shutdown(wait=wait)


def shard_for(point_id: str, n_shards: int) -> int:
    """Stable shard assignment for ``point_id``.

    CRC-32 of the UTF-8 id, modulo the shard count — deterministic across
    processes and Python versions (unlike the salted builtin ``hash``), so
    snapshots written by one process route ids identically in another.
    """
    if n_shards <= 0:
        raise CollectionError(f"shard count must be positive, got {n_shards}")
    return zlib.crc32(point_id.encode("utf-8")) % n_shards


class ShardedCollection:
    """N hash-partitioned shards behind the ``Collection`` surface."""

    def __init__(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
        shards: int = 2,
        parallel: str = "thread",
        quantize: str | None = None,
    ) -> None:
        if shards <= 0:
            raise CollectionError(
                f"shard count must be positive, got {shards}"
            )
        hnsw = hnsw or HnswConfig()
        self._init_fields(
            name,
            metric,
            hnsw,
            [
                Collection(
                    f"{name}/shard-{i:02d}", dim, metric=metric, hnsw=hnsw,
                    quantize=quantize,
                )
                for i in range(shards)
            ],
            parallel=parallel,
        )

    def _init_fields(
        self,
        name: str,
        metric: Metric,
        hnsw: HnswConfig,
        shards: list[Collection],
        parallel: str = "thread",
    ) -> None:
        if not name:
            raise CollectionError("collection name must be non-empty")
        self.name = name
        self._metric = metric
        self._hnsw_config = hnsw
        self._shards = shards
        self._id_to_shard: dict[str, int] = {}
        self._order: list[str] = []  # global insertion order, for scroll
        # Global write lock: writes route through shard-level locks too,
        # but saving a sharded collection must capture the order table
        # and *every* shard atomically — per-shard locks alone would let
        # an upsert land in shard 1 after shard 0 was captured.
        self._write_lock = threading.RLock()
        self._executor = self._make_executor(parallel)

    def __getstate__(self) -> dict[str, Any]:
        """Pickle without the lock or the fan-out executor.

        A pickled sharded collection (snapshot fixtures, potential worker
        replicas) must not carry a live lock or a pool of threads/worker
        processes; the unpickled copy gets a fresh lock and the default
        in-process thread executor.
        """
        state = self.__dict__.copy()
        state["_write_lock"] = None
        state["_executor"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._write_lock = threading.RLock()
        self._executor = self._make_executor("thread")

    def _make_executor(self, kind: str):
        if kind == "thread":
            return ThreadShardExecutor(self._shards, self.name)
        if kind == "process":
            # Imported lazily: the serving layer depends on vectordb, not
            # the other way around, and the process executor is opt-in.
            from repro.serving.workers import ProcessShardExecutor

            return ProcessShardExecutor(self._shards, self.name)
        raise CollectionError(
            f"unknown shard executor {kind!r}; use 'thread' or 'process'"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    @property
    def dim(self) -> int:
        """Vector dimensionality of the collection."""
        return self._shards[0].dim

    @property
    def metric(self) -> Metric:
        """The similarity metric."""
        return self._metric

    @property
    def hnsw_config(self) -> HnswConfig:
        """The HNSW tunables shared by every shard."""
        return self._hnsw_config

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def parallel(self) -> str:
        """The active fan-out executor kind: ``"thread"`` or ``"process"``."""
        return self._executor.kind

    def set_parallel(self, kind: str) -> None:
        """Swap the fan-out executor (``"thread"`` or ``"process"``).

        ``"process"`` installs
        :class:`repro.serving.workers.ProcessShardExecutor`: one
        long-lived worker process per shard, each holding a replica of
        its shard, so the GIL-bound Python parts of a filtered search
        (payload filter evaluation) run truly in parallel. Writes after
        the swap are applied to the parent's shards *and* mirrored to the
        workers, so reads stay equivalent. Switching back to
        ``"thread"`` discards the workers; the parent's shards were kept
        authoritative throughout, so no state is lost.

        Raises :class:`~repro.errors.CollectionError` for unknown kinds,
        and ``OSError`` if worker processes cannot be started (e.g. a
        sandbox that forbids subprocesses) — the previous executor is
        still in place in that case. No-op if ``kind`` already active.
        """
        with self._write_lock:
            if kind == self._executor.kind:
                return
            replacement = self._make_executor(kind)
            old, self._executor = self._executor, replacement
        # The old executor's close() joins worker threads/processes;
        # do that outside the lock so in-flight writes are not stalled
        # behind the teardown.
        old.close()

    @property
    def quantize(self) -> str | None:
        """Quantized-tier kind active on the shards (``None`` = float32-only).

        Derived from the shards rather than stored: a snapshot load may
        degrade one shard's quantized tier (damaged ``codes.npy``) while
        its siblings keep theirs, and this property must report what is
        actually serving. Any shard with a tier reports the collection as
        quantized — searches on degraded shards simply run float32.
        """
        for shard in self._shards:
            if shard.quantize is not None:
                return shard.quantize
        return None

    @property
    def shard_collections(self) -> tuple[Collection, ...]:
        """The underlying shards, in shard-index order (read-mostly)."""
        return tuple(self._shards)

    @property
    def point_order(self) -> tuple[str, ...]:
        """All point ids in global insertion order."""
        return tuple(self._order)

    @property
    def indexed_payload_fields(self) -> frozenset[str]:
        """Payload fields with a secondary index (identical per shard)."""
        return self._shards[0].indexed_payload_fields

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    @array_contract(points="*d:float32")
    def upsert(self, points: Iterable[PointStruct]) -> int:
        """Insert new points, routing each to its hash shard.

        Same contract as :meth:`Collection.upsert`: payload-only updates
        are allowed for known ids, vector replacement raises. Returns the
        number of points inserted. Points are bucketed so each shard sees
        one batch, keeping bulk ingest at one upsert call per shard.

        Under ``parallel="process"`` each successfully applied bucket is
        mirrored to that shard's worker replica. A bucket that *raises*
        mid-way stays partially applied on the parent (as with
        :meth:`Collection.upsert`) but is not mirrored — after such a
        failure the replicas of the raising shard may trail the parent;
        ``set_parallel("thread")`` followed by ``set_parallel("process")``
        rebuilds them from the authoritative parent state.
        """
        n = len(self._shards)
        buckets: dict[int, list[PointStruct]] = {}
        arrivals: list[tuple[str, int]] = []  # first sight of unknown ids
        pending: set[str] = set()
        for point in points:
            index = shard_for(point.id, n)
            buckets.setdefault(index, []).append(point)
            if point.id not in self._id_to_shard and point.id not in pending:
                arrivals.append((point.id, index))
                pending.add(point.id)
        inserted = 0
        with self._write_lock:
            try:
                for index, bucket in buckets.items():
                    inserted += self._shards[index].upsert(bucket)
                    # Keep process-executor replicas identical: the same
                    # bucket lands in the worker only after the parent copy
                    # accepted it, so a raising bucket is never
                    # half-mirrored. Replicas never carry a WAL
                    # (Collection.__getstate__ strips it), so mirrored
                    # writes are not logged twice.
                    self._executor.mirror_write(index, "upsert", bucket)
            except BaseException:
                # Like Collection.upsert, a batch that raises mid-way stays
                # partially applied; reconcile the order/routing tables
                # against the shards' actual state before propagating.
                applied = {
                    index: set(self._shards[index].point_ids())
                    for index in {index for _, index in arrivals}
                }
                for point_id, index in arrivals:
                    if point_id in applied[index]:
                        self._id_to_shard[point_id] = index
                        self._order.append(point_id)
                raise
            for point_id, index in arrivals:  # success: every arrival landed
                self._id_to_shard[point_id] = index
                self._order.append(point_id)
        return inserted

    def create_payload_index(self, field: str) -> None:
        """Build a hash index over ``field`` on every shard."""
        with self._write_lock:
            for index, shard in enumerate(self._shards):
                shard.create_payload_index(field)
                self._executor.mirror_write(
                    index, "create_payload_index", field
                )

    @property
    def hnsw_is_built(self) -> bool:
        """Whether every non-empty shard has an up-to-date HNSW graph."""
        return all(
            shard.hnsw_is_built for shard in self._shards if len(shard)
        )

    def build_hnsw(self, parallel: int | None = None,
                   force: bool = False) -> None:
        """Build every shard's HNSW graph now, in parallel worker processes.

        Graph construction is the dominant offline cost and per-shard
        builds are independent, so shards that need a graph are built on a
        process pool (construction is Python-and-numpy-heavy, where a
        thread pool would serialize on the GIL) and the finished graphs
        are pickled back and attached. ``parallel`` caps the worker count
        (default: one per pending shard, bounded by the CPU count);
        ``parallel=1``, a single pending shard, or an unusable process
        pool (e.g. a sandbox that forbids subprocesses) all degrade to
        the same in-process bulk builds. ``force`` rebuilds existing
        graphs too. Idempotent: shards already covered are skipped.
        """
        pending = [
            shard for shard in self._shards
            if len(shard) and (force or not shard.hnsw_is_built)
        ]
        if not pending:
            return
        if parallel is None:
            parallel = min(len(pending), os.cpu_count() or 1)
        if parallel > 1 and len(pending) > 1:
            jobs = [
                (shard.vector_matrix(), shard.dim, shard.hnsw_config)
                for shard in pending
            ]
            try:
                with ProcessPoolExecutor(
                    max_workers=min(parallel, len(pending)),
                    mp_context=_build_pool_context(),
                ) as pool:
                    graphs = list(pool.map(_build_shard_graph, jobs))
            except (OSError, RuntimeError, pickle.PicklingError) as exc:
                # Pool could not start or died mid-build (sandboxes that
                # forbid subprocesses raise OSError; a killed worker
                # surfaces as BrokenProcessPool, a RuntimeError). The
                # in-process fallback below produces identical graphs,
                # just slower — say so instead of degrading silently.
                warnings.warn(
                    "parallel HNSW build failed "
                    f"({type(exc).__name__}: {exc}); falling back to "
                    "in-process builds",
                    RuntimeWarning,
                    stacklevel=2,
                )
                graphs = None
            if graphs is not None:
                for shard, graph in zip(pending, graphs):
                    shard.attach_hnsw(graph)
                self._mirror_graphs(pending)
                return
        for shard in pending:
            shard.build_hnsw(force=force)
        self._mirror_graphs(pending)

    def _mirror_graphs(self, built: Sequence[Collection]) -> None:
        """Ship freshly built graphs to process-executor replicas.

        Attaching the parent's pickled graph is cheaper than having each
        worker rebuild its own, and guarantees both copies answer
        approximate searches identically.
        """
        shard_index = {id(shard): i for i, shard in enumerate(self._shards)}
        for shard in built:
            self._executor.mirror_write(
                shard_index[id(shard)], "attach_hnsw", shard.hnsw_index
            )

    def close(self, wait: bool = False) -> None:
        """Release the fan-out executor and shard WALs (idempotent).

        The data stays readable through the parent's shards, but
        multi-shard searches are no longer possible after closing;
        long-lived processes that drop a sharded collection must close it
        (``VectorDBClient.delete_collection`` and the client's
        context-manager exit do) rather than wait for GC to reap worker
        threads — or, under ``parallel="process"``, worker *processes*.
        ``wait=True`` blocks until the workers have exited. Any
        write-ahead logs attached to the shards are flushed and closed.
        """
        self._executor.close(wait=wait)
        for shard in self._shards:
            shard.close()

    @property
    def write_lock(self) -> threading.RLock:
        """The collection-global write lock (see ``_init_fields``)."""
        return self._write_lock

    def wal_stats(self) -> dict | None:
        """Aggregate WAL counters across shards, or ``None`` if WAL-off.

        Returns totals plus the per-shard stats, matching the shape the
        serving layer exposes in ``/healthz``.
        """
        per_shard = [shard.wal_stats() for shard in self._shards]
        if all(stats is None for stats in per_shard):
            return None
        live = [stats for stats in per_shard if stats is not None]
        return {
            "fsync": live[0]["fsync"],
            "records": sum(stats["records"] for stats in live),
            "bytes": sum(stats["bytes"] for stats in live),
            "shards": per_shard,
        }

    def set_payload(self, point_id: str, payload: dict[str, Any]) -> None:
        """Merge ``payload`` into an existing point's payload.

        Raises :class:`~repro.errors.PointNotFound` for unknown ids;
        under ``parallel="process"`` the update is mirrored to the
        owning shard's worker replica before returning.
        """
        with self._write_lock:
            index = self._id_to_shard.get(point_id)
            if index is None:
                raise PointNotFound(f"point {point_id!r} not in {self.name!r}")
            self._shards[index].set_payload(point_id, payload)
            self._executor.mirror_write(
                index, "set_payload", point_id, payload
            )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def retrieve(self, point_id: str) -> SearchHit:
        """Fetch one point's payload (score 1.0 placeholder).

        Raises :class:`~repro.errors.PointNotFound` for unknown ids.
        """
        return self._owning_shard(point_id).retrieve(point_id)

    def point_vector(self, point_id: str) -> np.ndarray:
        """The stored vector of ``point_id`` (copy).

        Raises :class:`~repro.errors.PointNotFound` for unknown ids.
        """
        return self._owning_shard(point_id).point_vector(point_id)

    def count(self, flt: Filter | None = None) -> int:
        """Points matching ``flt``; each shard narrows via its indexes.

        Filtered counts fan out through the executor like searches do —
        filter evaluation is the whole cost of a count, so it benefits
        from process workers the same way.
        """
        if flt is None:
            return len(self._order)
        return sum(self._fan_out("count", flt))

    def scroll(self, flt: Filter | None = None) -> list[SearchHit]:
        """All points (optionally filtered), in global insertion order."""
        matched: dict[str, SearchHit] = {}
        for shard in self._shards:
            for hit in shard.scroll(flt):
                matched[hit.id] = hit
        return [matched[pid] for pid in self._order if pid in matched]

    @array_contract(vector="d:float32")
    def search(
        self,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> list[SearchHit]:
        """Global top-``k``: per-shard top-``k`` fan-out, exact merge.

        Edge behaviour matches :meth:`Collection.search`: ``k = 0``
        returns no hits, oversized ``k`` truncates to the matching
        population, negative ``k`` raises. An expired ``deadline``
        raises :class:`~repro.errors.DeadlineExceeded` *before* the
        fan-out is dispatched — no shard sees over-budget work — and is
        forwarded to every shard for their own choke-point checks.
        ``rescore_factor`` is forwarded to every shard's quantized
        rescoring stage (ignored by shards serving float32-only).
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if deadline is not None:
            deadline.check("shard fan-out")
        query = np.asarray(vector, dtype=np.float32)
        if query.shape != (self.dim,):
            raise DimensionMismatch(
                f"query shape {query.shape} != ({self.dim},)"
            )
        if k == 0:
            return []
        per_shard = self._fan_out(
            "search", query, k, flt=flt, exact=exact, ef=ef,
            deadline=deadline, rescore_factor=rescore_factor,
        )
        return _merge_top_k(per_shard, k)

    @array_contract(vectors="q,d:float32")
    def search_batch(
        self,
        vectors: np.ndarray | Sequence[Sequence[float]],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> list[list[SearchHit]]:
        """Batched :meth:`search`: one fan-out, per-query exact merges.

        ``deadline`` follows the :meth:`search` contract: checked before
        the fan-out is dispatched, then forwarded to every shard, as is
        ``rescore_factor`` for shards with a quantized tier.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if deadline is not None:
            deadline.check("shard fan-out")
        queries = np.asarray(vectors, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatch(
                f"queries shape {queries.shape} != (n, {self.dim})"
            )
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        if k == 0:
            return [[] for _ in range(n_queries)]
        per_shard = self._fan_out(
            "search_batch", queries, k, flt=flt, exact=exact, ef=ef,
            deadline=deadline, rescore_factor=rescore_factor,
        )
        return [
            _merge_top_k([shard_lists[q] for shard_lists in per_shard], k)
            for q in range(n_queries)
        ]

    # ------------------------------------------------------------------
    # persistence support (used by repro.vectordb.persistence)
    # ------------------------------------------------------------------

    @classmethod
    def from_shards(
        cls,
        name: str,
        shards: Sequence[Collection],
        order: Sequence[str],
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
    ) -> "ShardedCollection":
        """Reassemble a sharded collection from loaded shard snapshots.

        ``order`` is the global insertion order persisted alongside the
        shards; it must cover exactly the ids present across ``shards``.
        Shards arrive with whatever state the loader restored — payload
        indexes rebuilt, and (schema v3) persisted HNSW graphs already
        attached, so :attr:`hnsw_is_built` is True straight after a v3
        load and the first query pays no reconstruction. A shard whose
        graph file was damaged arrives graph-less and rebuilds lazily,
        independent of its siblings.
        """
        if not shards:
            raise CollectionError("from_shards needs at least one shard")
        dims = {shard.dim for shard in shards}
        if len(dims) != 1:
            raise CollectionError(
                f"shard dims differ: {sorted(dims)}"
            )
        sharded = cls.__new__(cls)
        sharded._init_fields(name, metric, hnsw or HnswConfig(), list(shards))
        seen: dict[str, int] = {}
        for index, shard in enumerate(shards):
            for point_id in shard.point_ids():
                if point_id in seen:
                    raise CollectionError(
                        f"point {point_id!r} present in multiple shards"
                    )
                seen[point_id] = index
        if set(order) != set(seen) or len(order) != len(seen):
            raise CollectionError(
                "point order does not match the ids stored in the shards"
            )
        sharded._id_to_shard = seen
        sharded._order = list(order)
        return sharded

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _owning_shard(self, point_id: str) -> Collection:
        index = self._id_to_shard.get(point_id)
        if index is None:
            raise PointNotFound(f"point {point_id!r} not in {self.name!r}")
        return self._shards[index]

    def _fan_out(self, method: str, *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``method`` over every non-empty shard via the executor.

        Under the thread executor, BLAS scoring releases the GIL, so
        shard searches overlap on multi-core machines; under the process
        executor, the pure-Python parts (filter evaluation over payloads)
        overlap too because each shard runs in its own interpreter.
        """
        live = [i for i, shard in enumerate(self._shards) if len(shard)]
        if not live:
            return []
        return self._executor.run(live, method, *args, **kwargs)


def _merge_top_k(
    per_shard: Sequence[list[SearchHit]], k: int
) -> list[SearchHit]:
    """Exact global top-``k`` from per-shard top-``k`` lists.

    At most ``shards × k`` hits reach the merge, so a stable sort is
    plenty; score ties keep shard-index order (each shard list is already
    sorted descending), which is deterministic across runs — but not the
    same order an unsharded exact search gives tied scores (see the
    module docstring's equivalence caveat).
    """
    ranked = sorted(
        chain.from_iterable(per_shard), key=lambda hit: -hit.score
    )
    return ranked[:k]


#: Either vector-store backend; the client and pipeline accept both.
AnyCollection = Union[Collection, ShardedCollection]
