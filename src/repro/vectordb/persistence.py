"""Snapshot persistence for vector-database collections.

A collection snapshot is a directory with ``vectors.npz`` (the dense
matrix), ``payloads.jsonl`` (one payload per line, aligned with ids), and
``meta.json`` (name, metric, dimensions). The HNSW graph is not stored; it
is rebuilt lazily after load, trading load time for format simplicity.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import CollectionError
from repro.vectordb.collection import Collection, HnswConfig
from repro.vectordb.distance import Metric

_META_FILE = "meta.json"
_VECTORS_FILE = "vectors.npz"
_PAYLOADS_FILE = "payloads.jsonl"


def save_collection(collection: Collection, directory: str | Path) -> None:
    """Write ``collection`` to ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    vectors, ids, payloads = collection.export_state()
    np.savez_compressed(directory / _VECTORS_FILE, vectors=vectors)
    with open(directory / _PAYLOADS_FILE, "w", encoding="utf-8") as fh:
        for point_id, payload in zip(ids, payloads):
            fh.write(
                json.dumps({"id": point_id, "payload": payload},
                           ensure_ascii=False)
                + "\n"
            )
    meta = {
        "name": collection.name,
        "dim": collection.dim,
        "metric": collection.metric.value,
        "count": len(collection),
    }
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2))


def load_collection(
    directory: str | Path, hnsw: HnswConfig | None = None
) -> Collection:
    """Read a collection written by :func:`save_collection`."""
    directory = Path(directory)
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise CollectionError(f"no collection snapshot at {directory}")
    meta = json.loads(meta_path.read_text())
    with np.load(directory / _VECTORS_FILE) as npz:
        vectors = npz["vectors"]
    ids: list[str] = []
    payloads: list[dict] = []
    with open(directory / _PAYLOADS_FILE, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            ids.append(row["id"])
            payloads.append(row["payload"])
    if len(ids) != meta["count"] or vectors.shape[0] != meta["count"]:
        raise CollectionError(
            f"snapshot at {directory} is inconsistent: meta says "
            f"{meta['count']} points, found {len(ids)} payloads / "
            f"{vectors.shape[0]} vectors"
        )
    return Collection.from_state(
        name=meta["name"],
        vectors=vectors.astype(np.float32),
        ids=ids,
        payloads=payloads,
        metric=Metric(meta["metric"]),
        hnsw=hnsw,
    )
