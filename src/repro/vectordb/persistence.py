"""Snapshot persistence for vector-database collections.

Snapshot schema v2. A single-collection snapshot is a directory with:

* ``vectors.npz`` — the dense float32 matrix;
* ``payloads.jsonl`` — one ``{"id", "payload"}`` row per point, aligned
  with the matrix rows;
* ``meta.json`` — name, dim, metric, count, plus (new in v2) the
  ``hnsw`` config and the ``indexed_payload_fields`` list, so a reload
  restores search behaviour — not just the data.

A :class:`~repro.vectordb.sharded.ShardedCollection` snapshot is a
directory whose ``meta.json`` carries ``"shards": N`` and an ``order``
of point ids (global insertion order), with one single-collection
snapshot per shard under ``shard-00/`` … ``shard-NN/``.

v1 snapshots (no ``schema`` key) still load: missing ``hnsw`` and
``indexed_payload_fields`` fall back to defaults / no indexes, exactly
the v1 behaviour. The HNSW graph itself is never stored; it is rebuilt
lazily after load, trading load time for format simplicity.

Resharding: :func:`reshard_snapshot` rewrites a snapshot for a different
shard count without touching embeddings — every point is re-routed by
``shard_for(id, new_shards)`` while the global insertion order, payload
indexes, and HNSW config carry over — so deployments can scale a
collection's shard count up or down offline instead of being frozen at
whatever ``shards=N`` it was created with.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.errors import CollectionError
from repro.vectordb.collection import Collection, HnswConfig
from repro.vectordb.distance import Metric
from repro.vectordb.sharded import AnyCollection, ShardedCollection, shard_for

#: Current snapshot schema version.
SCHEMA_VERSION = 2

_META_FILE = "meta.json"
_VECTORS_FILE = "vectors.npz"
_PAYLOADS_FILE = "payloads.jsonl"


def _shard_dir(directory: Path, index: int) -> Path:
    return directory / f"shard-{index:02d}"


def save_collection(
    collection: AnyCollection, directory: str | Path
) -> None:
    """Write ``collection`` to ``directory`` (created if needed).

    Dispatches on the backend: plain collections write one snapshot,
    sharded collections write per-shard snapshot directories plus a
    top-level manifest with the shard count and global insertion order.
    """
    directory = Path(directory)
    if isinstance(collection, ShardedCollection):
        directory.mkdir(parents=True, exist_ok=True)
        for index, shard in enumerate(collection.shard_collections):
            _save_single(shard, _shard_dir(directory, index))
        meta = _base_meta(collection)
        meta["shards"] = collection.n_shards
        meta["order"] = list(collection.point_order)
        (directory / _META_FILE).write_text(json.dumps(meta, indent=2))
    else:
        _save_single(collection, directory)


def load_collection(
    directory: str | Path, hnsw: HnswConfig | None = None
) -> AnyCollection:
    """Read a collection written by :func:`save_collection`.

    ``hnsw`` overrides the snapshot's stored config; when omitted, the
    config active at save time is restored (v1 snapshots fall back to
    defaults). Payload indexes recorded in the snapshot are rebuilt.
    """
    directory = Path(directory)
    meta = _read_meta(directory)
    hnsw_config = hnsw or _stored_hnsw(meta)
    # The "shards" key marks the sharded layout (written for ANY shard
    # count, including 1); plain and v1 snapshots never carry it.
    if "shards" in meta:
        shards = [
            _load_single(_shard_dir(directory, index), hnsw_config)
            for index in range(meta["shards"])
        ]
        return ShardedCollection.from_shards(
            name=meta["name"],
            shards=shards,
            order=meta["order"],
            metric=Metric(meta["metric"]),
            hnsw=hnsw_config,
        )
    return _load_single(directory, hnsw_config, meta=meta)


def reshard_snapshot(
    snapshot_dir: str | Path,
    new_shards: int,
    out_dir: str | Path | None = None,
) -> Path:
    """Rewrite a snapshot with its points re-routed across ``new_shards``.

    Works on any :func:`save_collection` output — sharded snapshots of
    any shard count, plain single-collection snapshots (treated as one
    source shard), and v1 snapshots. Source shards are streamed one at a
    time (raw arrays only; no collections or HNSW graphs are
    instantiated), each point lands in ``shard_for(id, new_shards)``,
    and within every new shard points keep their global-insertion-order
    ranking, so a reload sees identical ``scroll`` order, counts,
    payload-index configuration, and ``HnswConfig``. The result is
    always the sharded layout (``new_shards`` may be 1).

    ``out_dir`` defaults to rewriting ``snapshot_dir`` in place (built in
    a temporary sibling, swapped in on success). Returns the directory
    written.
    """
    snapshot_dir = Path(snapshot_dir)
    if new_shards <= 0:
        raise CollectionError(
            f"shard count must be positive, got {new_shards}"
        )
    meta = _read_meta(snapshot_dir)
    in_place = out_dir is None
    target = (
        snapshot_dir.parent / f".{snapshot_dir.name}.reshard-tmp"
        if in_place else Path(out_dir)
    )
    if target.resolve() == snapshot_dir.resolve():
        in_place, target = True, (
            snapshot_dir.parent / f".{snapshot_dir.name}.reshard-tmp"
        )
    if target.exists():
        raise CollectionError(f"reshard target {target} already exists")

    if "shards" in meta:
        source_dirs = [
            _shard_dir(snapshot_dir, index) for index in range(meta["shards"])
        ]
        order: list[str] = list(meta["order"])
    else:
        source_dirs = [snapshot_dir]
        order = []  # single snapshots carry their order in the rows
    position = {point_id: rank for rank, point_id in enumerate(order)}

    # One bucket per new shard: (global rank, id, vector row, payload).
    buckets: list[list[tuple[int, str, np.ndarray, dict]]] = [
        [] for _ in range(new_shards)
    ]
    dim = meta.get("dim")  # v1 single snapshots: fall back to the matrix
    for source_dir in source_dirs:
        vectors, ids, payloads = _read_single_raw(source_dir)
        if dim is None and vectors.ndim == 2:
            dim = int(vectors.shape[1])
        for row, (point_id, payload) in enumerate(zip(ids, payloads)):
            if position:
                rank = position.get(point_id)
                if rank is None:
                    raise CollectionError(
                        f"point {point_id!r} in {source_dir} missing from "
                        "the snapshot's global order"
                    )
            else:
                rank = len(order)
                order.append(point_id)
            buckets[shard_for(point_id, new_shards)].append(
                (rank, point_id, vectors[row], payload)
            )
    total = sum(len(bucket) for bucket in buckets)
    if total != len(order) or (position and total != len(position)):
        raise CollectionError(
            f"snapshot at {snapshot_dir} holds {total} points but its "
            f"global order lists {len(order)}"
        )

    hnsw = meta.get("hnsw") or asdict(HnswConfig())
    indexed = sorted(meta.get("indexed_payload_fields", ()))
    if dim is None:
        dim = 1

    target.mkdir(parents=True, exist_ok=False)
    try:
        for index, bucket in enumerate(buckets):
            bucket.sort(key=lambda entry: entry[0])
            _write_single_raw(
                _shard_dir(target, index),
                name=f"{meta['name']}/shard-{index:02d}",
                dim=dim,
                metric=meta["metric"],
                vectors=(
                    np.stack([entry[2] for entry in bucket])
                    if bucket else np.zeros((0, dim), dtype=np.float32)
                ),
                ids=[entry[1] for entry in bucket],
                payloads=[entry[3] for entry in bucket],
                hnsw=hnsw,
                indexed=indexed,
            )
        top = _meta_dict(
            name=meta["name"], dim=dim, metric=meta["metric"], count=total,
            hnsw=hnsw, indexed=indexed,
        )
        top["shards"] = new_shards
        top["order"] = order
        (target / _META_FILE).write_text(json.dumps(top, indent=2))
    except BaseException:
        shutil.rmtree(target, ignore_errors=True)
        raise
    if in_place:
        # Swap by renames so a crash never leaves the published path as
        # the only copy destroyed: the original moves aside, the new
        # tree takes its place, and only then is the old copy deleted.
        retired = snapshot_dir.parent / f".{snapshot_dir.name}.reshard-old"
        if retired.exists():
            shutil.rmtree(retired)
        snapshot_dir.rename(retired)
        try:
            target.rename(snapshot_dir)
        except BaseException:
            retired.rename(snapshot_dir)  # restore the original
            raise
        shutil.rmtree(retired)
        return snapshot_dir
    return target


# ----------------------------------------------------------------------
# single-collection snapshots
# ----------------------------------------------------------------------


def _meta_dict(
    name: str,
    dim: int,
    metric: str,
    count: int,
    hnsw: dict,
    indexed: list[str],
) -> dict:
    """The one place snapshot ``meta.json`` keys are spelled out."""
    return {
        "schema": SCHEMA_VERSION,
        "name": name,
        "dim": dim,
        "metric": metric,
        "count": count,
        "hnsw": hnsw,
        "indexed_payload_fields": indexed,
    }


def _base_meta(collection: AnyCollection) -> dict:
    return _meta_dict(
        name=collection.name,
        dim=collection.dim,
        metric=collection.metric.value,
        count=len(collection),
        hnsw=asdict(collection.hnsw_config),
        indexed=sorted(collection.indexed_payload_fields),
    )


def _save_single(collection: Collection, directory: Path) -> None:
    vectors, ids, payloads = collection.export_state()
    _write_single_raw(
        directory,
        name=collection.name,
        dim=collection.dim,
        metric=collection.metric.value,
        vectors=vectors,
        ids=ids,
        payloads=payloads,
        hnsw=asdict(collection.hnsw_config),
        indexed=sorted(collection.indexed_payload_fields),
    )


def _write_single_raw(
    directory: Path,
    name: str,
    dim: int,
    metric: str,
    vectors: np.ndarray,
    ids: list[str],
    payloads: list[dict],
    hnsw: dict,
    indexed: list[str],
) -> None:
    """Write one single-collection snapshot from raw arrays."""
    directory.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(directory / _VECTORS_FILE, vectors=vectors)
    with open(directory / _PAYLOADS_FILE, "w", encoding="utf-8") as fh:
        for point_id, payload in zip(ids, payloads):
            fh.write(
                json.dumps({"id": point_id, "payload": payload},
                           ensure_ascii=False)
                + "\n"
            )
    meta = _meta_dict(
        name=name, dim=dim, metric=metric, count=len(ids),
        hnsw=hnsw, indexed=indexed,
    )
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2))


def _read_single_raw(
    directory: Path,
) -> tuple[np.ndarray, list[str], list[dict]]:
    """Read one single-collection snapshot's raw ``(vectors, ids,
    payloads)`` without instantiating a collection (streaming reshard)."""
    meta = _read_meta(directory)
    with np.load(directory / _VECTORS_FILE) as npz:
        vectors = npz["vectors"].astype(np.float32)
    ids: list[str] = []
    payloads: list[dict] = []
    with open(directory / _PAYLOADS_FILE, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            ids.append(row["id"])
            payloads.append(row["payload"])
    if len(ids) != meta["count"] or vectors.shape[0] != meta["count"]:
        raise CollectionError(
            f"snapshot at {directory} is inconsistent: meta says "
            f"{meta['count']} points, found {len(ids)} payloads / "
            f"{vectors.shape[0]} vectors"
        )
    return vectors, ids, payloads


def _read_meta(directory: Path) -> dict:
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise CollectionError(f"no collection snapshot at {directory}")
    return json.loads(meta_path.read_text())


def _stored_hnsw(meta: dict) -> HnswConfig | None:
    stored = meta.get("hnsw")
    return HnswConfig(**stored) if stored else None


def _load_single(
    directory: Path,
    hnsw: HnswConfig | None,
    meta: dict | None = None,
) -> Collection:
    if meta is None:
        meta = _read_meta(directory)
    vectors, ids, payloads = _read_single_raw(directory)
    collection = Collection.from_state(
        name=meta["name"],
        vectors=vectors,
        ids=ids,
        payloads=payloads,
        metric=Metric(meta["metric"]),
        hnsw=hnsw or _stored_hnsw(meta),
        dim=meta.get("dim"),
    )
    for field in meta.get("indexed_payload_fields", ()):
        collection.create_payload_index(field)
    return collection
