"""Snapshot persistence for vector-database collections.

Snapshot schema v4. A single-collection snapshot is a directory with:

* ``vectors.npy`` — the dense float32 matrix, written uncompressed so a
  reload can ``np.load(..., mmap_mode="r")`` it and serve searches off
  the page cache without materializing vectors in RAM (``mmap=True``);
* ``payloads.jsonl`` — one ``{"id", "payload"}`` row per point, aligned
  with the matrix rows;
* ``graph.npz`` — the built HNSW graph as compact numpy arrays
  (:meth:`~repro.vectordb.hnsw.HNSWIndex.to_arrays`), written only when
  the graph covered every point at save time. On load it is attached
  as-is, making cold start O(metadata) instead of O(graph rebuild); a
  missing, truncated, or config-mismatched graph file degrades to the
  old lazy rebuild with a :class:`RuntimeWarning`, never a failed load;
* ``codes.npy`` + ``codebook.npz`` — the int8 scalar-quantized tier
  (schema v4, written only for ``quantize="sq8"`` collections): raw
  uint8 codes mmap-able exactly like the vectors, the per-dimension
  min/step codebook, and a CRC-32 over both in the meta. A damaged or
  mismatched tier degrades the load to float32 serving with a
  :class:`RuntimeWarning` — same contract as the graph file;
* ``meta.json`` — name, dim, metric, count, the ``hnsw`` config, and
  the ``indexed_payload_fields`` list (plus ``quantize`` and
  ``sq8_checksum`` when quantized), so a reload restores search
  behaviour — not just the data.

A :class:`~repro.vectordb.sharded.ShardedCollection` snapshot is a
directory whose ``meta.json`` carries ``"shards": N`` and an ``order``
of point ids (global insertion order), with one single-collection
snapshot per shard under ``shard-00/`` … ``shard-NN/``.

Writes are crash-safe: :func:`save_collection` builds the snapshot in a
temporary sibling directory and swaps it into place by renames, so an
interrupted save never leaves a half-written tree at the published path
(and never destroys the previous snapshot there).

Older schemas still load. v2 snapshots (``vectors.npz``, no graph) and
v1 snapshots (no ``schema`` key, no ``hnsw``/``indexed_payload_fields``)
reload bit-identically to before, with the HNSW graph rebuilt lazily —
``migrate_snapshot`` (CLI ``snapshot migrate``) upgrades them in place.
:func:`inspect_snapshot` summarizes any snapshot without loading it.

Durability: a snapshot directory may have a *sibling* write-ahead log
directory (``<name>.wal/``, one ``shard-NN.wal`` per shard — a sibling
rather than a child so the atomic directory swap above never moves or
clobbers the log). :func:`load_collection` replays any WAL tail found
there on top of the snapshot — restoring writes that were logged after
the last save — and, when asked (``wal="always"|"batch"|"off"``),
attaches fresh logs so subsequent writes are durable too.
:func:`save_collection` captures each shard's WAL offset inside the same
locked snapshot view it serializes, and truncates the logs through those
offsets only after the atomic publish succeeds: records covered by the
new snapshot are dropped, writes that raced the save survive in the log.
See :mod:`repro.vectordb.wal` for the record format.

Stranded temporaries: a hard kill mid-save can leave ``.<name>.save-tmp-*``
(and ``.old-*`` / ``.reshard-tmp*``) sibling directories behind. Loads and
inspections never look at them, :func:`inspect_snapshot` lists them so
operators can see the litter, and the next :func:`save_collection` of the
same path sweeps any older than one hour (age-gated so a concurrent
in-flight save's staging tree is never deleted from under it).

Resharding: :func:`reshard_snapshot` rewrites a snapshot for a different
shard count without touching embeddings — every point is re-routed by
``shard_for(id, new_shards)`` while the global insertion order, payload
indexes, and HNSW config carry over — so deployments can scale a
collection's shard count up or down offline instead of being frozen at
whatever ``shards=N`` it was created with. Resharding re-emits schema v3
but drops graph files (the per-shard membership changed, so the old
graphs are meaningless); run ``snapshot migrate`` after to re-persist
freshly built graphs.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
import warnings
import zlib
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.errors import CollectionError
from repro.vectordb.collection import Collection, HnswConfig, SnapshotView
from repro.vectordb.distance import Metric
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.quantization import SQ8Store, validate_quantize
from repro.vectordb.sharded import AnyCollection, ShardedCollection, shard_for
from repro.vectordb.wal import (
    FSYNC_MODES,
    WriteAheadLog,
    replay_into,
    scan as wal_scan,
    shard_wal_path,
    wal_directory,
)

#: Current snapshot schema version. v4 = v3 + the optional quantized
#: tier (``codes.npy`` + ``codebook.npz`` + ``quantize``/``sq8_checksum``
#: meta keys); v4 snapshots of unquantized collections are byte-for-byte
#: v3 layouts apart from the version number, and v1–v3 still load.
SCHEMA_VERSION = 4

_META_FILE = "meta.json"
_VECTORS_FILE_V3 = "vectors.npy"
_VECTORS_FILE_LEGACY = "vectors.npz"
_PAYLOADS_FILE = "payloads.jsonl"
_GRAPH_FILE = "graph.npz"
#: Schema v4 quantized tier: raw uint8 codes (mmap-able, like
#: ``vectors.npy``) and the small per-dimension codebook.
_CODES_FILE = "codes.npy"
_CODEBOOK_FILE = "codebook.npz"


#: Temp siblings older than this are presumed stranded by a dead save
#: and swept by the next save of the same path. Generous on purpose: an
#: in-flight save's staging tree must never be deleted from under it.
STALE_TEMP_AGE_S = 3600.0


def _shard_dir(directory: Path, index: int) -> Path:
    return directory / f"shard-{index:02d}"


def _temp_siblings(directory: Path) -> list[Path]:
    """Sibling directories left behind by interrupted atomic rewrites."""
    parent, name = directory.parent, directory.name
    prefixes = (
        f".{name}.save-tmp-",
        f".{name}.old-",
        f".{name}.reshard-tmp",
    )
    if not parent.is_dir():
        return []
    return sorted(
        path for path in parent.iterdir()
        if path.is_dir() and path.name.startswith(prefixes)
    )


def _sweep_stale_temps(
    directory: Path, max_age_s: float = STALE_TEMP_AGE_S
) -> list[Path]:
    """Delete stranded temp siblings older than ``max_age_s`` seconds.

    Returns the paths removed. Only age-expired temps go — a concurrent
    save's live staging tree (fresh mtime) survives, as does anything
    that vanishes or errors mid-check (another sweeper may be racing us).
    """
    cutoff = time.time() - max_age_s
    swept: list[Path] = []
    for temp in _temp_siblings(directory):
        try:
            if temp.stat().st_mtime > cutoff:
                continue
        except OSError:
            continue
        shutil.rmtree(temp, ignore_errors=True)
        swept.append(temp)
    return swept


def _fsync_path(path: Path) -> None:
    """Best-effort fsync of a file or directory (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # e.g. directories on platforms that cannot open() them
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _fsync_tree(root: Path) -> None:
    """Flush a staged tree's file data and directory entries to disk.

    Rename-based publishing is only atomic if the renamed tree's
    contents are durable first — journaling filesystems may otherwise
    persist the rename (metadata) before the data blocks, so a power
    loss right after the swap could publish truncated files.
    """
    for path in root.rglob("*"):
        if path.is_file():
            _fsync_path(path)
    for path in root.rglob("*"):
        if path.is_dir():
            _fsync_path(path)
    _fsync_path(root)


def _swap_into_place(staged: Path, final: Path) -> None:
    """Publish ``staged`` at ``final`` by renames (crash-safe).

    The staged tree is fsynced before the swap, any existing tree at
    ``final`` moves aside first (to a per-invocation unique sibling, so
    overlapping swaps of the same path cannot collide) and is deleted
    only after the new tree is in place — the published path never holds
    a partially written mix of old and new. An in-process failure
    restores the original. Two narrow windows remain between the two
    renames, while the published path briefly does not exist: a hard
    kill there leaves it empty (but the old snapshot survives whole
    under its ``.old-*`` sibling and the new one under the temporary
    sibling it was staged in — nothing is ever lost, and an operator or
    the next successful save can recover either by hand), and a
    concurrent *reader* loading the same path in that instant sees "no
    collection snapshot" and should simply retry — directory trees
    cannot be exchanged atomically with portable primitives, so
    overwrite-in-place saves under live reads need one retry on the
    reader side.
    """
    _fsync_tree(staged)
    retired = final.parent / f".{final.name}.old-{uuid.uuid4().hex[:8]}"
    had_old = final.exists()
    if had_old:
        try:
            final.rename(retired)
        except FileNotFoundError:
            had_old = False  # a concurrent swap already moved it aside
    superseded = [retired] if had_old else []
    for _ in range(8):
        try:
            staged.rename(final)
            break
        except OSError:
            if final.exists():
                # A concurrent swap published between our rename attempts
                # (os.rename cannot replace a non-empty directory): retire
                # the other save's tree and retry, so the last swap wins.
                bumped = (
                    final.parent
                    / f".{final.name}.old-{uuid.uuid4().hex[:8]}"
                )
                try:
                    final.rename(bumped)
                except OSError:
                    continue  # lost yet another race; retry from the top
                superseded.append(bumped)
                continue
            if had_old:
                retired.rename(final)  # restore the original
            raise
    else:  # pathological contention: every attempt lost to another swap
        if final.exists():
            # A concurrent winner is published; the trees we retired
            # along the way are superseded by it. Our own staged tree is
            # removed by the caller when we raise.
            for tree in superseded:
                shutil.rmtree(tree, ignore_errors=True)
        elif had_old:
            retired.rename(final)  # restore the original
        raise CollectionError(
            f"could not publish snapshot at {final}: lost the rename "
            "race repeatedly to concurrent saves"
        )
    _fsync_path(final.parent)
    for tree in superseded:
        shutil.rmtree(tree, ignore_errors=True)


def save_collection(
    collection: AnyCollection,
    directory: str | Path,
    schema: int = SCHEMA_VERSION,
    include_graphs: bool = True,
) -> None:
    """Write ``collection`` to ``directory`` (created if needed).

    Dispatches on the backend: plain collections write one snapshot,
    sharded collections write per-shard snapshot directories plus a
    top-level manifest with the shard count and global insertion order.
    Fully built HNSW graphs are persisted alongside the vectors (schema
    v3), so the next :func:`load_collection` skips reconstruction.

    The write is atomic: everything lands in a temporary sibling of
    ``directory`` and is renamed into place on success, so a crash or an
    exception mid-save never corrupts an existing snapshot at the target
    path. ``schema=2`` writes the previous on-disk layout (compressed
    vectors, no graph files) for compatibility tooling and benchmarks;
    ``include_graphs=False`` omits graph files from a v3 snapshot
    (``snapshot migrate --no-graphs``).

    The save is also consistent under concurrent writes: the state to
    serialize is captured as per-shard :class:`SnapshotView`\\ s under the
    collection's write lock(s) — a sharded save holds the global write
    lock while capturing, so the persisted ``order`` and every shard
    agree — and serialization happens outside the locks, so writers stall
    only for the capture, not for the disk I/O. After a successful
    publish, any attached write-ahead logs are truncated through the
    byte offsets the views captured: records the snapshot now covers are
    dropped, writes that raced the save stay logged. Logs are only
    truncated when saving to the directory they are the sibling of —
    saving a copy elsewhere leaves durability of the original intact.
    Before staging, temp siblings stranded by previously interrupted
    saves are swept (see :func:`_sweep_stale_temps`).
    """
    if schema not in (2, 3, SCHEMA_VERSION):
        raise CollectionError(f"cannot write snapshot schema {schema}")
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    _sweep_stale_temps(directory)
    if isinstance(collection, ShardedCollection):
        with collection.write_lock:
            views = [
                shard.snapshot_view()
                for shard in collection.shard_collections
            ]
            meta = _base_meta(collection, schema)
            meta["shards"] = collection.n_shards
            meta["order"] = list(collection.point_order)
    else:
        views = [collection.snapshot_view()]
        meta = None
    # Unique per invocation, so concurrent saves of the same path never
    # write into (or delete) each other's staging tree; last swap wins.
    staged = (
        directory.parent / f".{directory.name}.save-tmp-{uuid.uuid4().hex[:8]}"
    )
    try:
        if meta is not None:
            staged.mkdir(parents=True)
            for index, view in enumerate(views):
                _save_view(
                    view, _shard_dir(staged, index), schema, include_graphs
                )
            (staged / _META_FILE).write_text(json.dumps(meta, indent=2))
        else:
            _save_view(views[0], staged, schema, include_graphs)
    except BaseException:
        shutil.rmtree(staged, ignore_errors=True)
        raise
    try:
        _swap_into_place(staged, directory)
    except BaseException:
        shutil.rmtree(staged, ignore_errors=True)
        raise
    own_wal_dir = wal_directory(directory).resolve()
    for view in views:
        if (
            view.wal is not None
            and view.wal_offset is not None
            and view.wal.path.parent.resolve() == own_wal_dir
        ):
            view.wal.truncate_through(view.wal_offset)


def load_collection(
    directory: str | Path,
    hnsw: HnswConfig | None = None,
    mmap: bool = False,
    wal: str | None = None,
) -> AnyCollection:
    """Read a collection written by :func:`save_collection`.

    ``hnsw`` overrides the snapshot's stored config; when omitted, the
    config active at save time is restored (v1 snapshots fall back to
    defaults). Payload indexes recorded in the snapshot are rebuilt, and
    persisted HNSW graphs (schema v3) are attached instead of rebuilt —
    unless the graph file is damaged or disagrees with the collection,
    in which case the load degrades to the lazy rebuild with a warning.

    ``mmap=True`` memory-maps the vector matrix read-only instead of
    loading it into RAM (schema v3 only; older snapshots store
    compressed vectors and load eagerly with a warning). Searches read
    straight off the page cache; a later upsert copies on write, leaving
    the snapshot file untouched.

    Crash recovery: if the snapshot has a sibling WAL directory, its
    intact record prefix is replayed on top of the loaded state —
    unconditionally, because logged records are acknowledged writes the
    snapshot does not cover (a torn tail is skipped here and physically
    truncated on the next attach). Sharded snapshots replay through the
    assembled :class:`~repro.vectordb.sharded.ShardedCollection` so the
    records re-route to their shards and re-enter the global insertion
    order; the relative order of tail writes *across* shards is not
    preserved (each shard's log orders only its own writes), which
    affects ``scroll`` order of tail points and nothing else.

    ``wal`` enables durable writes going forward: pass an fsync mode
    (``"always"``, ``"batch"``, or ``"off"`` — see
    :class:`~repro.vectordb.wal.WriteAheadLog`) to attach per-shard logs
    after replay. ``wal=None`` (default) leaves logging off and the log
    files untouched; every pre-WAL call site behaves exactly as before.
    """
    directory = Path(directory)
    if wal is not None and wal not in FSYNC_MODES:
        raise CollectionError(
            f"unknown WAL fsync mode {wal!r}; use one of {FSYNC_MODES}"
        )
    meta = _read_meta(directory)
    hnsw_config = hnsw or _stored_hnsw(meta)
    # The "shards" key marks the sharded layout (written for ANY shard
    # count, including 1); plain and v1 snapshots never carry it.
    if "shards" in meta:
        shards = [
            _load_single(_shard_dir(directory, index), hnsw_config, mmap=mmap)
            for index in range(meta["shards"])
        ]
        collection: AnyCollection = ShardedCollection.from_shards(
            name=meta["name"],
            shards=shards,
            order=meta["order"],
            metric=Metric(meta["metric"]),
            hnsw=hnsw_config,
        )
        n_logs = meta["shards"]
    else:
        collection = _load_single(directory, hnsw_config, meta=meta, mmap=mmap)
        n_logs = 1
    wal_dir = wal_directory(directory)
    for index in range(n_logs):
        log_path = shard_wal_path(wal_dir, index)
        if log_path.exists():
            replay_into(collection, log_path)
    if wal is not None:
        attach_wal(collection, directory, fsync=wal)
    return collection


def attach_wal(
    collection: AnyCollection,
    directory: str | Path,
    fsync: str = "batch",
    flush_interval_s: float = 0.005,
) -> Path:
    """Attach per-shard write-ahead logs for the snapshot at ``directory``.

    Creates the sibling WAL directory if needed, opens (and tail-repairs)
    one :class:`~repro.vectordb.wal.WriteAheadLog` per shard, and
    attaches them so subsequent writes are logged. Replay is *not*
    performed here — callers that might be recovering should go through
    :func:`load_collection`, which replays before attaching; this helper
    is for freshly built collections that are about to be (or just were)
    saved to ``directory``. Returns the WAL directory path.
    """
    directory = Path(directory)
    wal_dir = wal_directory(directory)
    shards = (
        collection.shard_collections
        if isinstance(collection, ShardedCollection)
        else (collection,)
    )
    for index, shard in enumerate(shards):
        shard.attach_wal(
            WriteAheadLog(
                shard_wal_path(wal_dir, index),
                fsync=fsync,
                flush_interval_s=flush_interval_s,
            )
        )
    return wal_dir


def inspect_snapshot(directory: str | Path) -> dict:
    """Summarize a snapshot without loading any vectors or graphs.

    Returns schema, name, dim, metric, count, shard layout, per-shard
    storage details (vector file format and whether a persisted graph is
    present), sibling WAL state (record counts and any torn-tail bytes a
    recovery would discard), and temp siblings stranded by interrupted
    saves — the CLI ``snapshot inspect`` payload. Stranded temps and WAL
    files are reported, never read into the summary's counts: the
    snapshot's own metadata stays authoritative.
    """
    directory = Path(directory)
    meta = _read_meta(directory)
    schema = meta.get("schema", 1)
    info: dict = {
        "path": str(directory),
        "schema": schema,
        "name": meta["name"],
        "metric": meta["metric"],
        "count": meta["count"],
        "dim": meta.get("dim"),
        "hnsw": meta.get("hnsw"),
        "indexed_payload_fields": sorted(
            meta.get("indexed_payload_fields", ())
        ),
        "quantize": meta.get("quantize"),
    }
    if "shards" in meta:
        shard_dirs = [
            _shard_dir(directory, index) for index in range(meta["shards"])
        ]
        info["shards"] = meta["shards"]
    else:
        shard_dirs = [directory]
        info["shards"] = None
    details = []
    for shard_path in shard_dirs:
        if (shard_path / _VECTORS_FILE_V3).exists():
            vector_format = "npy"
        elif (shard_path / _VECTORS_FILE_LEGACY).exists():
            vector_format = "npz"
        else:
            vector_format = "missing"
        details.append(
            {
                "path": str(shard_path),
                "vector_format": vector_format,
                "graph": (shard_path / _GRAPH_FILE).exists(),
                "codes": (shard_path / _CODES_FILE).exists(),
            }
        )
    info["storage"] = details
    info["mmap_capable"] = all(d["vector_format"] == "npy" for d in details)
    info["graphs_persisted"] = all(d["graph"] for d in details)
    info["codes_persisted"] = all(d["codes"] for d in details)
    info["wal"] = _inspect_wal(directory)
    info["stale_temps"] = [path.name for path in _temp_siblings(directory)]
    return info


def _inspect_wal(directory: Path) -> dict | None:
    """Summarize the snapshot's sibling WAL directory, or ``None``."""
    wal_dir = wal_directory(directory)
    if not wal_dir.is_dir():
        return None
    files = []
    for path in sorted(wal_dir.glob("shard-*.wal")):
        try:
            size = path.stat().st_size
            valid_end, records = wal_scan(path)
        except (OSError, CollectionError) as exc:
            # stat/read failures and non-WAL files (bad magic) — the two
            # ways a scan can fail; torn tails are valid-prefix results,
            # not errors. Recorded per file so inspect stays best-effort.
            files.append({"path": str(path), "error": str(exc)})
            continue
        files.append(
            {
                "path": str(path),
                "records": records,
                "bytes": size,
                "torn_bytes": size - valid_end,
            }
        )
    return {
        "path": str(wal_dir),
        "records": sum(f.get("records", 0) for f in files),
        "files": files,
    }


def migrate_snapshot(
    snapshot_dir: str | Path,
    out_dir: str | Path | None = None,
    build_graphs: bool = True,
    quantize: str | None = None,
) -> Path:
    """Rewrite any loadable snapshot as schema v4 (CLI ``snapshot migrate``).

    Loads the snapshot (any schema), optionally builds missing HNSW
    graphs so they are persisted too (``build_graphs=True``, the default
    — the whole point of migrating is a fast cold start), and saves it
    back atomically. ``build_graphs=False`` writes no graph files at all,
    even ones the source snapshot carried — the opt-out exists to strip
    graphs, not merely to skip building them. ``quantize="sq8"`` fits a
    codebook and persists the quantized tier for a snapshot that never
    had one (an existing tier is carried over either way — migration is
    also how a pre-v4 snapshot gains codes without re-ingesting).
    ``out_dir`` defaults to rewriting in place. Returns the directory
    written. Raises :class:`~repro.errors.CollectionError` when
    ``snapshot_dir`` holds no loadable snapshot; the target is untouched
    on failure.
    """
    snapshot_dir = Path(snapshot_dir)
    quantize = validate_quantize(quantize)
    target = snapshot_dir if out_dir is None else Path(out_dir)
    collection = load_collection(snapshot_dir)
    try:
        if quantize == "sq8":
            shards = (
                collection.shard_collections
                if isinstance(collection, ShardedCollection)
                else (collection,)
            )
            for shard in shards:
                if shard.quantize is None:
                    # snapshot_view syncs (fits + encodes) before saving.
                    shard.attach_sq8(SQ8Store(shard.dim))
        if build_graphs and len(collection):
            collection.build_hnsw()
        save_collection(collection, target, include_graphs=build_graphs)
    finally:
        collection.close()
    return target


def reshard_snapshot(
    snapshot_dir: str | Path,
    new_shards: int,
    out_dir: str | Path | None = None,
) -> Path:
    """Rewrite a snapshot with its points re-routed across ``new_shards``.

    Works on any :func:`save_collection` output — sharded snapshots of
    any shard count, plain single-collection snapshots (treated as one
    source shard), and v1/v2 snapshots. Source shards are streamed one at
    a time (raw arrays only; no collections or HNSW graphs are
    instantiated), each point lands in ``shard_for(id, new_shards)``,
    and within every new shard points keep their global-insertion-order
    ranking, so a reload sees identical ``scroll`` order, counts,
    payload-index configuration, and ``HnswConfig``. The result is
    always the sharded layout (``new_shards`` may be 1), written
    without graph or quantized-tier files — shard membership changed,
    so persisted graphs and per-shard codebooks no longer describe any
    shard; the next load rebuilds graphs lazily (or run
    :func:`migrate_snapshot`, with ``quantize="sq8"`` to re-fit codes).

    ``out_dir`` defaults to rewriting ``snapshot_dir`` in place (built in
    a temporary sibling, swapped in on success). Returns the directory
    written. Raises :class:`~repro.errors.CollectionError` for a
    non-positive ``new_shards``, an ``out_dir`` that already exists, a
    missing snapshot, or a snapshot whose stored order disagrees with
    its shards' contents.
    """
    snapshot_dir = Path(snapshot_dir)
    if new_shards <= 0:
        raise CollectionError(
            f"shard count must be positive, got {new_shards}"
        )
    meta = _read_meta(snapshot_dir)
    in_place = out_dir is None
    target = (
        snapshot_dir.parent / f".{snapshot_dir.name}.reshard-tmp"
        if in_place else Path(out_dir)
    )
    if target.resolve() == snapshot_dir.resolve():
        in_place, target = True, (
            snapshot_dir.parent / f".{snapshot_dir.name}.reshard-tmp"
        )
    if target.exists():
        raise CollectionError(f"reshard target {target} already exists")

    if "shards" in meta:
        source_dirs = [
            _shard_dir(snapshot_dir, index) for index in range(meta["shards"])
        ]
        order: list[str] = list(meta["order"])
    else:
        source_dirs = [snapshot_dir]
        order = []  # single snapshots carry their order in the rows
    position = {point_id: rank for rank, point_id in enumerate(order)}

    # One bucket per new shard: (global rank, id, vector row, payload).
    buckets: list[list[tuple[int, str, np.ndarray, dict]]] = [
        [] for _ in range(new_shards)
    ]
    dim = meta.get("dim")  # v1 single snapshots: fall back to the matrix
    for source_dir in source_dirs:
        vectors, ids, payloads = _read_single_raw(source_dir)
        if dim is None and vectors.ndim == 2:
            dim = int(vectors.shape[1])
        for row, (point_id, payload) in enumerate(zip(ids, payloads)):
            if position:
                rank = position.get(point_id)
                if rank is None:
                    raise CollectionError(
                        f"point {point_id!r} in {source_dir} missing from "
                        "the snapshot's global order"
                    )
            else:
                rank = len(order)
                order.append(point_id)
            buckets[shard_for(point_id, new_shards)].append(
                (rank, point_id, vectors[row], payload)
            )
    total = sum(len(bucket) for bucket in buckets)
    if total != len(order) or (position and total != len(position)):
        raise CollectionError(
            f"snapshot at {snapshot_dir} holds {total} points but its "
            f"global order lists {len(order)}"
        )

    hnsw = meta.get("hnsw") or asdict(HnswConfig())
    indexed = sorted(meta.get("indexed_payload_fields", ()))
    if dim is None:
        dim = 1

    target.mkdir(parents=True, exist_ok=False)
    try:
        for index, bucket in enumerate(buckets):
            bucket.sort(key=lambda entry: entry[0])
            _write_single_raw(
                _shard_dir(target, index),
                name=f"{meta['name']}/shard-{index:02d}",
                dim=dim,
                metric=meta["metric"],
                vectors=(
                    np.stack([entry[2] for entry in bucket])
                    if bucket else np.zeros((0, dim), dtype=np.float32)
                ),
                ids=[entry[1] for entry in bucket],
                payloads=[entry[3] for entry in bucket],
                hnsw=hnsw,
                indexed=indexed,
            )
        top = _meta_dict(
            name=meta["name"], dim=dim, metric=meta["metric"], count=total,
            hnsw=hnsw, indexed=indexed,
        )
        top["shards"] = new_shards
        top["order"] = order
        (target / _META_FILE).write_text(json.dumps(top, indent=2))
    except BaseException:
        shutil.rmtree(target, ignore_errors=True)
        raise
    if in_place:
        try:
            _swap_into_place(target, snapshot_dir)
        except BaseException:
            shutil.rmtree(target, ignore_errors=True)
            raise
        return snapshot_dir
    return target


# ----------------------------------------------------------------------
# single-collection snapshots
# ----------------------------------------------------------------------


def _meta_dict(
    name: str,
    dim: int,
    metric: str,
    count: int,
    hnsw: dict,
    indexed: list[str],
    schema: int = SCHEMA_VERSION,
    quantize: str | None = None,
    sq8_checksum: int | None = None,
) -> dict:
    """The one place snapshot ``meta.json`` keys are spelled out.

    ``quantize``/``sq8_checksum`` (schema v4) are written only when the
    collection carries a quantized tier, so unquantized v4 metas stay
    key-compatible with v3.
    """
    meta = {
        "schema": schema,
        "name": name,
        "dim": dim,
        "metric": metric,
        "count": count,
        "hnsw": hnsw,
        "indexed_payload_fields": indexed,
    }
    if quantize is not None:
        meta["quantize"] = quantize
        if sq8_checksum is not None:
            meta["sq8_checksum"] = int(sq8_checksum)
    return meta


def _base_meta(collection: AnyCollection, schema: int = SCHEMA_VERSION) -> dict:
    return _meta_dict(
        name=collection.name,
        dim=collection.dim,
        metric=collection.metric.value,
        count=len(collection),
        hnsw=asdict(collection.hnsw_config),
        indexed=sorted(collection.indexed_payload_fields),
        schema=schema,
        quantize=(
            getattr(collection, "quantize", None) if schema >= 4 else None
        ),
    )


def _sq8_checksum(
    codes: np.ndarray, mins: np.ndarray, steps: np.ndarray
) -> int:
    """CRC-32 over the quantized tier's bytes (codes then codebook).

    Computed from the arrays' buffers directly (``.data``), so even a
    memory-mapped code matrix is checksummed without materializing a
    copy — page-cache reads only.
    """
    crc = zlib.crc32(np.ascontiguousarray(codes, dtype=np.uint8).data)
    crc = zlib.crc32(np.ascontiguousarray(mins, dtype=np.float32).data, crc)
    crc = zlib.crc32(np.ascontiguousarray(steps, dtype=np.float32).data, crc)
    return crc


def _save_view(
    view: SnapshotView,
    directory: Path,
    schema: int = SCHEMA_VERSION,
    include_graphs: bool = True,
) -> None:
    """Serialize one consistently captured :class:`SnapshotView`.

    The view was captured under the collection's write lock; writing it
    here happens outside any lock. ``view.vectors`` is still a zero-copy
    slice of live storage (rows the view covers are immutable), so even
    an mmap-served collection saves without materializing its matrix.
    """
    graph_arrays = (
        view.graph_arrays if (schema >= 3 and include_graphs) else None
    )
    quantize = view.quantize if schema >= 4 else None
    _write_single_raw(
        directory,
        name=view.name,
        dim=view.dim,
        metric=view.metric.value,
        vectors=view.vectors,
        ids=view.ids,
        payloads=view.payloads,
        hnsw=asdict(view.hnsw),
        indexed=list(view.indexed_fields),
        schema=schema,
        graph_arrays=graph_arrays,
        quantize=quantize,
        codes=view.codes if quantize else None,
        codebook=view.codebook if quantize else None,
    )


def _write_single_raw(
    directory: Path,
    name: str,
    dim: int,
    metric: str,
    vectors: np.ndarray,
    ids: list[str],
    payloads: list[dict],
    hnsw: dict,
    indexed: list[str],
    schema: int = SCHEMA_VERSION,
    graph_arrays: dict | None = None,
    quantize: str | None = None,
    codes: np.ndarray | None = None,
    codebook: dict | None = None,
) -> None:
    """Write one single-collection snapshot from raw arrays.

    ``graph_arrays`` is the HNSW graph already serialized via
    :meth:`~repro.vectordb.hnsw.HNSWIndex.to_arrays` — arrays rather
    than a live index, because save captures the graph under the write
    lock (a live index could keep growing) and workers only need the
    arrays anyway. ``codes``/``codebook`` (schema v4, quantized
    collections) land in ``codes.npy`` — raw, so loads can mmap it like
    the vectors — and ``codebook.npz``; their CRC-32 goes into the meta
    so a load can tell bit rot from a valid-but-different tier.
    """
    directory.mkdir(parents=True, exist_ok=True)
    if schema >= 3:
        # Raw .npy so loads can memory-map the matrix directly.
        np.save(
            directory / _VECTORS_FILE_V3,
            np.ascontiguousarray(vectors, dtype=np.float32),
        )
    else:
        np.savez_compressed(directory / _VECTORS_FILE_LEGACY, vectors=vectors)
    if graph_arrays is not None:
        np.savez(directory / _GRAPH_FILE, **graph_arrays)
    sq8_checksum = None
    if quantize and codes is not None and codebook is not None:
        np.save(
            directory / _CODES_FILE,
            np.ascontiguousarray(codes, dtype=np.uint8),
        )
        np.savez(directory / _CODEBOOK_FILE, **codebook)
        sq8_checksum = _sq8_checksum(
            codes, codebook["mins"], codebook["steps"]
        )
    with open(directory / _PAYLOADS_FILE, "w", encoding="utf-8") as fh:
        for point_id, payload in zip(ids, payloads):
            fh.write(
                json.dumps({"id": point_id, "payload": payload},
                           ensure_ascii=False)
                + "\n"
            )
    meta = _meta_dict(
        name=name, dim=dim, metric=metric, count=len(ids),
        hnsw=hnsw, indexed=indexed, schema=schema,
        quantize=quantize, sq8_checksum=sq8_checksum,
    )
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2))


def _load_vectors(
    directory: Path, mmap: bool = False, schema: int | None = None
) -> np.ndarray:
    """The snapshot's vector matrix, from either on-disk format."""
    v3_path = directory / _VECTORS_FILE_V3
    if v3_path.exists():
        return np.load(v3_path, mmap_mode="r" if mmap else None)
    if schema is not None and schema >= 3:
        # Don't fall through to the legacy file: naming vectors.npz in
        # the error would send the operator after a file this snapshot
        # never contained.
        raise FileNotFoundError(
            f"snapshot at {directory} declares schema {schema} but its "
            f"{_VECTORS_FILE_V3} is missing"
        )
    if mmap:
        warnings.warn(
            f"snapshot at {directory} predates schema v3 (compressed "
            "vectors); mmap=True loads it eagerly — run `snapshot "
            "migrate` to enable memory-mapped serving",
            RuntimeWarning,
            stacklevel=3,
        )
    with np.load(directory / _VECTORS_FILE_LEGACY) as npz:
        # copy=False: v2 archives store float32, so decompression is the
        # only materialization — the old unconditional astype re-copied
        # the entire matrix a second time on every load.
        return npz["vectors"].astype(np.float32, copy=False)


def _read_single_raw(
    directory: Path,
    meta: dict | None = None,
    mmap: bool = False,
) -> tuple[np.ndarray, list[str], list[dict]]:
    """Read one single-collection snapshot's raw ``(vectors, ids,
    payloads)`` without instantiating a collection. Used by the load
    path (where ``mmap`` may memory-map the matrix) and by the streaming
    reshard (always eager)."""
    if meta is None:
        meta = _read_meta(directory)
    vectors = _load_vectors(directory, mmap=mmap, schema=meta.get("schema"))
    ids: list[str] = []
    payloads: list[dict] = []
    with open(directory / _PAYLOADS_FILE, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            ids.append(row["id"])
            payloads.append(row["payload"])
    if len(ids) != meta["count"] or vectors.shape[0] != meta["count"]:
        raise CollectionError(
            f"snapshot at {directory} is inconsistent: meta says "
            f"{meta['count']} points, found {len(ids)} payloads / "
            f"{vectors.shape[0]} vectors"
        )
    return vectors, ids, payloads


def _read_meta(directory: Path) -> dict:
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise CollectionError(f"no collection snapshot at {directory}")
    return json.loads(meta_path.read_text())


def _stored_hnsw(meta: dict) -> HnswConfig | None:
    stored = meta.get("hnsw")
    return HnswConfig(**stored) if stored else None


def _attach_stored_graph(
    collection: Collection,
    directory: Path,
    config: HnswConfig,
    stored: HnswConfig | None,
) -> None:
    """Attach ``graph.npz`` to a freshly loaded collection, if usable.

    The graph must structurally validate against the collection's vector
    matrix (``HNSWIndex.from_arrays`` checks sizes, ranges, and degree
    caps) and must have been built with the config the collection is
    loading under — an explicit ``hnsw`` override with different *build*
    parameters (``m``, ``ef_construction``, or ``seed``; ``ef_search``
    is a search-time knob) means the caller *wants* a different graph.
    The seed lives only in the snapshot's stored config (``stored``),
    not the graph header, so both are checked. Any problem degrades to
    the pre-v3 behaviour (lazy rebuild on first approximate search)
    with a :class:`RuntimeWarning`; a load never fails over its graph
    file.
    """
    graph_path = directory / _GRAPH_FILE
    if not graph_path.exists():
        return
    try:
        if stored is not None and (
            (config.m, config.ef_construction, config.seed)
            != (stored.m, stored.ef_construction, stored.seed)
        ):
            raise ValueError(
                f"graph built with (m={stored.m}, "
                f"ef_construction={stored.ef_construction}, "
                f"seed={stored.seed}), loading with (m={config.m}, "
                f"ef_construction={config.ef_construction}, "
                f"seed={config.seed})"
            )
        with np.load(graph_path) as npz:
            arrays = {key: npz[key] for key in npz.files}
        header = np.asarray(arrays["header"], dtype=np.int64)
        if header.shape == (7,) and (
            int(header[3]) != config.m
            or int(header[4]) != config.ef_construction
        ):
            raise ValueError(
                f"graph built with (m={int(header[3])}, "
                f"ef_construction={int(header[4])}), loading with "
                f"(m={config.m}, ef_construction={config.ef_construction})"
            )
        graph = HNSWIndex.from_arrays(
            collection.vector_matrix(), arrays, seed=config.seed
        )
    except Exception as exc:  # reprolint: last-resort -- any unusable graph degrades to a rebuild, surfaced via warning
        warnings.warn(
            f"ignoring unusable snapshot graph {graph_path} ({exc}); "
            "the HNSW graph will be rebuilt on first approximate search",
            RuntimeWarning,
            stacklevel=4,
        )
        return
    collection.attach_hnsw(graph)


def _attach_quantized_tier(
    collection: Collection,
    directory: Path,
    meta: dict,
    mmap: bool = False,
) -> None:
    """Attach the persisted sq8 tier to a freshly loaded collection.

    Only runs when the meta declares ``"quantize": "sq8"``. The codes
    and codebook must load cleanly, agree with the collection's shape,
    and match the recorded CRC-32 — *any* defect (missing or truncated
    files, wrong dtype/shape, flipped bits) degrades the collection to
    its float32 tier with a :class:`RuntimeWarning`, mirroring the
    graph fallback above: a damaged quantized tier can cost memory,
    never correctness, because the float32 matrix is always present
    and exact. ``mmap=True`` maps the codes read-only (the checksum
    pass touches the pages but allocates nothing).
    """
    try:
        if validate_quantize(meta.get("quantize")) != "sq8":
            return
    except ValueError as exc:
        warnings.warn(
            f"ignoring unknown quantize kind in {directory} ({exc}); "
            "serving the float32 tier instead",
            RuntimeWarning,
            stacklevel=4,
        )
        return
    if len(collection) == 0:
        # Nothing was quantized yet; just turn the tier on.
        collection.attach_sq8(SQ8Store(collection.dim))
        return
    codes_path = directory / _CODES_FILE
    try:
        codes = np.load(codes_path, mmap_mode="r" if mmap else None)
        with np.load(directory / _CODEBOOK_FILE) as npz:
            mins = np.asarray(npz["mins"], dtype=np.float32)
            steps = np.asarray(npz["steps"], dtype=np.float32)
        if codes.ndim != 2 or codes.shape[0] != len(collection):
            raise ValueError(
                f"codes shape {codes.shape} disagrees with the "
                f"{len(collection)}-point collection"
            )
        expected = meta.get("sq8_checksum")
        if expected is not None and _sq8_checksum(
            codes, mins, steps
        ) != int(expected):
            raise ValueError("sq8 checksum mismatch (bit rot?)")
        store = SQ8Store.from_arrays(codes, mins, steps)
    except Exception as exc:  # reprolint: last-resort -- any unusable quantized tier degrades to float32, surfaced via warning
        warnings.warn(
            f"ignoring unusable quantized tier {codes_path} ({exc}); "
            "serving the float32 tier instead",
            RuntimeWarning,
            stacklevel=4,
        )
        return
    collection.attach_sq8(store)


def _load_single(
    directory: Path,
    hnsw: HnswConfig | None,
    meta: dict | None = None,
    mmap: bool = False,
) -> Collection:
    if meta is None:
        meta = _read_meta(directory)
    vectors, ids, payloads = _read_single_raw(directory, meta=meta, mmap=mmap)
    collection = Collection.from_matrix(
        name=meta["name"],
        vectors=vectors,
        ids=ids,
        payloads=payloads,
        metric=Metric(meta["metric"]),
        hnsw=hnsw or _stored_hnsw(meta),
        dim=meta.get("dim"),
    )
    for field in meta.get("indexed_payload_fields", ()):
        collection.create_payload_index(field)
    _attach_stored_graph(
        collection, directory, collection.hnsw_config, _stored_hnsw(meta)
    )
    _attach_quantized_tier(collection, directory, meta, mmap=mmap)
    return collection
