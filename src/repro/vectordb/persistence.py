"""Snapshot persistence for vector-database collections.

Snapshot schema v2. A single-collection snapshot is a directory with:

* ``vectors.npz`` — the dense float32 matrix;
* ``payloads.jsonl`` — one ``{"id", "payload"}`` row per point, aligned
  with the matrix rows;
* ``meta.json`` — name, dim, metric, count, plus (new in v2) the
  ``hnsw`` config and the ``indexed_payload_fields`` list, so a reload
  restores search behaviour — not just the data.

A :class:`~repro.vectordb.sharded.ShardedCollection` snapshot is a
directory whose ``meta.json`` carries ``"shards": N`` and an ``order``
of point ids (global insertion order), with one single-collection
snapshot per shard under ``shard-00/`` … ``shard-NN/``.

v1 snapshots (no ``schema`` key) still load: missing ``hnsw`` and
``indexed_payload_fields`` fall back to defaults / no indexes, exactly
the v1 behaviour. The HNSW graph itself is never stored; it is rebuilt
lazily after load, trading load time for format simplicity.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.errors import CollectionError
from repro.vectordb.collection import Collection, HnswConfig
from repro.vectordb.distance import Metric
from repro.vectordb.sharded import AnyCollection, ShardedCollection

#: Current snapshot schema version.
SCHEMA_VERSION = 2

_META_FILE = "meta.json"
_VECTORS_FILE = "vectors.npz"
_PAYLOADS_FILE = "payloads.jsonl"


def _shard_dir(directory: Path, index: int) -> Path:
    return directory / f"shard-{index:02d}"


def save_collection(
    collection: AnyCollection, directory: str | Path
) -> None:
    """Write ``collection`` to ``directory`` (created if needed).

    Dispatches on the backend: plain collections write one snapshot,
    sharded collections write per-shard snapshot directories plus a
    top-level manifest with the shard count and global insertion order.
    """
    directory = Path(directory)
    if isinstance(collection, ShardedCollection):
        directory.mkdir(parents=True, exist_ok=True)
        for index, shard in enumerate(collection.shard_collections):
            _save_single(shard, _shard_dir(directory, index))
        meta = _base_meta(collection)
        meta["shards"] = collection.n_shards
        meta["order"] = list(collection.point_order)
        (directory / _META_FILE).write_text(json.dumps(meta, indent=2))
    else:
        _save_single(collection, directory)


def load_collection(
    directory: str | Path, hnsw: HnswConfig | None = None
) -> AnyCollection:
    """Read a collection written by :func:`save_collection`.

    ``hnsw`` overrides the snapshot's stored config; when omitted, the
    config active at save time is restored (v1 snapshots fall back to
    defaults). Payload indexes recorded in the snapshot are rebuilt.
    """
    directory = Path(directory)
    meta = _read_meta(directory)
    hnsw_config = hnsw or _stored_hnsw(meta)
    # The "shards" key marks the sharded layout (written for ANY shard
    # count, including 1); plain and v1 snapshots never carry it.
    if "shards" in meta:
        shards = [
            _load_single(_shard_dir(directory, index), hnsw_config)
            for index in range(meta["shards"])
        ]
        return ShardedCollection.from_shards(
            name=meta["name"],
            shards=shards,
            order=meta["order"],
            metric=Metric(meta["metric"]),
            hnsw=hnsw_config,
        )
    return _load_single(directory, hnsw_config, meta=meta)


# ----------------------------------------------------------------------
# single-collection snapshots
# ----------------------------------------------------------------------


def _base_meta(collection: AnyCollection) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "name": collection.name,
        "dim": collection.dim,
        "metric": collection.metric.value,
        "count": len(collection),
        "hnsw": asdict(collection.hnsw_config),
        "indexed_payload_fields": sorted(collection.indexed_payload_fields),
    }


def _save_single(collection: Collection, directory: Path) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    vectors, ids, payloads = collection.export_state()
    np.savez_compressed(directory / _VECTORS_FILE, vectors=vectors)
    with open(directory / _PAYLOADS_FILE, "w", encoding="utf-8") as fh:
        for point_id, payload in zip(ids, payloads):
            fh.write(
                json.dumps({"id": point_id, "payload": payload},
                           ensure_ascii=False)
                + "\n"
            )
    meta = _base_meta(collection)
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2))


def _read_meta(directory: Path) -> dict:
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise CollectionError(f"no collection snapshot at {directory}")
    return json.loads(meta_path.read_text())


def _stored_hnsw(meta: dict) -> HnswConfig | None:
    stored = meta.get("hnsw")
    return HnswConfig(**stored) if stored else None


def _load_single(
    directory: Path,
    hnsw: HnswConfig | None,
    meta: dict | None = None,
) -> Collection:
    if meta is None:
        meta = _read_meta(directory)
    with np.load(directory / _VECTORS_FILE) as npz:
        vectors = npz["vectors"]
    ids: list[str] = []
    payloads: list[dict] = []
    with open(directory / _PAYLOADS_FILE, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            ids.append(row["id"])
            payloads.append(row["payload"])
    if len(ids) != meta["count"] or vectors.shape[0] != meta["count"]:
        raise CollectionError(
            f"snapshot at {directory} is inconsistent: meta says "
            f"{meta['count']} points, found {len(ids)} payloads / "
            f"{vectors.shape[0]} vectors"
        )
    collection = Collection.from_state(
        name=meta["name"],
        vectors=vectors.astype(np.float32),
        ids=ids,
        payloads=payloads,
        metric=Metric(meta["metric"]),
        hnsw=hnsw or _stored_hnsw(meta),
        dim=meta.get("dim"),
    )
    for field in meta.get("indexed_payload_fields", ()):
        collection.create_payload_index(field)
    return collection
