"""A vector-database collection: points with payloads, HNSW + exact search.

Mirrors the Qdrant surface the SemaSK pipeline uses: upsert points with
payloads, then run (optionally filtered) kNN searches. Filtered searches
follow the same strategy real engines use: when the filter is selective,
score the matching subset exactly; when it is broad, traverse the HNSW
graph with a predicate.

Batched reads: :meth:`Collection.search_batch` answers many queries against
one filter in a single call — the filter's candidate set is computed once
and shared across the whole batch, exact scoring runs as one matrix–matrix
product, and per-query results are guaranteed equivalent to calling
:meth:`Collection.search` once per query (same hits; scores equal up to
float accumulation order).

Index lifecycle: the HNSW graph can be built eagerly with
:meth:`Collection.build_hnsw` (the bulk-scored
:meth:`~repro.vectordb.hnsw.HNSWIndex.from_vectors` path, used by the
data-preparation step so first-query latency never pays for graph
construction) or attached from an external build with
:meth:`Collection.attach_hnsw` (sharded collections build per-shard
graphs in parallel worker processes). A graph is never required: exact
and selective-filter searches bypass it, and any approximate search on a
graph-less collection still builds one on demand. Points upserted after
a build are appended to the live graph, so it cannot go stale.

Durability and concurrency: every write path (``upsert``,
``set_payload``, ``create_payload_index``) runs under a collection-level
write lock, and — when a :class:`~repro.vectordb.wal.WriteAheadLog` is
attached via :meth:`Collection.attach_wal` — logs the accepted write to
the WAL *after* applying it in memory but *before* returning to the
caller (apply-then-log, both under the lock). That ordering is what lets
:meth:`Collection.snapshot_view` capture a matrix/ids/payloads view plus
a WAL offset that are mutually consistent, and what guarantees the
copy-on-write of an mmap-adopted matrix has fully completed before the
write's WAL record exists. Reads are intentionally left lock-free: rows
``[0, n)`` of the vector matrix never mutate after insertion (vector
replacement is unsupported), so searches racing an upsert see either the
pre- or post-write population, never a torn row.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vectordb.wal import WriteAheadLog

from repro.errors import CollectionError, DimensionMismatch, PointNotFound
from repro.vectordb.contracts import array_contract
from repro.vectordb.deadline import Deadline
from repro.vectordb.distance import Metric
from repro.vectordb.filters import Filter
from repro.vectordb.flat import FlatIndex
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.payload_index import PayloadIndexRegistry
from repro.vectordb.quantization import SQ8Store, validate_quantize

#: Default top-``rescore_factor·k`` candidate multiplier for quantized
#: searches: the HNSW beam runs in code space, then the best ``4·k``
#: candidates are rescored exactly against the float32 matrix. 4× is
#: the conventional sweet spot (Qdrant's default oversampling range);
#: the recall floor at this default is pinned by bench_quantization.
DEFAULT_RESCORE_FACTOR = 4.0


@dataclass(frozen=True)
class PointStruct:
    """One point to upsert: id, vector, and JSON-like payload."""

    id: str
    vector: np.ndarray
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SearchHit:
    """One search result (score is a similarity; higher is better)."""

    id: str
    score: float
    payload: dict[str, Any]


@dataclass(frozen=True)
class HnswConfig:
    """Tunables forwarded to the HNSW index."""

    m: int = 16
    ef_construction: int = 100
    ef_search: int = 64
    seed: int = 7


@dataclass(frozen=True)
class SnapshotView:
    """A consistent capture of one collection for snapshot serialization.

    Produced by :meth:`Collection.snapshot_view` under the collection's
    write lock, consumed by :func:`repro.vectordb.persistence.save_collection`
    *outside* it. ``vectors`` is a zero-copy view whose rows are
    immutable by contract (inserted vectors are never rewritten;
    appends land beyond ``len(ids)`` and reallocation replaces the
    backing array, leaving this view intact), ``ids``/``payloads`` are
    copies, and ``graph_arrays`` is the HNSW graph already serialized to
    arrays (the live graph keeps growing after capture). ``wal`` /
    ``wal_offset`` record the attached write-ahead log and its byte
    offset at capture time, so a successful save can truncate exactly
    the records the snapshot made durable — and not the writes that
    raced it.
    """

    name: str
    dim: int
    metric: Metric
    hnsw: HnswConfig
    indexed_fields: tuple[str, ...]
    vectors: np.ndarray
    ids: list[str]
    payloads: list[dict[str, Any]]
    graph_arrays: dict[str, np.ndarray] | None
    wal: "WriteAheadLog | None"
    wal_offset: int | None
    #: ``quantize`` kind plus the sq8 tier's arrays (codes zero-copy,
    #: codebook small) — None for unquantized collections. Captured
    #: under the same lock as ``vectors`` so codes always cover exactly
    #: the first ``len(ids)`` rows.
    quantize: str | None = None
    codes: np.ndarray | None = None
    codebook: dict[str, np.ndarray] | None = None


class Collection:
    """A named set of points over a fixed-dimension vector space."""

    #: Filtered searches over at most this many matches use exact scoring.
    BRUTE_FORCE_THRESHOLD = 8192

    def __init__(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
        quantize: str | None = None,
    ) -> None:
        if not name:
            raise CollectionError("collection name must be non-empty")
        self.name = name
        self._metric = metric
        self._hnsw_config = hnsw or HnswConfig()
        self._flat = FlatIndex(dim, metric)
        self._hnsw: HNSWIndex | None = None
        self._ids: list[str] = []
        self._payloads: list[dict[str, Any]] = []
        self._id_to_node: dict[str, int] = {}
        self._payload_indexes = PayloadIndexRegistry()
        self._wal: "WriteAheadLog | None" = None
        self._write_lock = threading.RLock()
        self._quantize = validate_quantize(quantize)
        self._sq8: SQ8Store | None = (
            SQ8Store(dim) if self._quantize else None
        )
        if self._quantize:
            self._flat.pickle_by_handle = True

    @property
    def quantize(self) -> str | None:
        """The active quantized-tier kind (``"sq8"``) or ``None``."""
        return self._quantize

    @property
    def sq8_store(self) -> SQ8Store | None:
        """The quantized tier (``None`` when ``quantize`` is off)."""
        return self._sq8

    def __getstate__(self) -> dict[str, Any]:
        """Pickle without the lock or the WAL handle.

        Collections travel to worker processes (``parallel="process"``
        shard replicas, build pools). Locks do not pickle, and — more
        importantly — a replica must **never** carry a live WAL: the
        parent already logged each write before mirroring it, so a
        logging replica would double-log every mirrored write.
        """
        state = self.__dict__.copy()
        state["_wal"] = None
        state["_write_lock"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._write_lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def dim(self) -> int:
        """Vector dimensionality of the collection."""
        return self._flat.dim

    @property
    def metric(self) -> Metric:
        """The similarity metric."""
        return self._metric

    @property
    def hnsw_config(self) -> HnswConfig:
        """The HNSW tunables (persisted with snapshots)."""
        return self._hnsw_config

    def point_ids(self) -> list[str]:
        """All point ids, in insertion order."""
        return list(self._ids)

    def point_vector(self, point_id: str) -> np.ndarray:
        """The stored vector of ``point_id`` (copy)."""
        node = self._id_to_node.get(point_id)
        if node is None:
            raise PointNotFound(f"point {point_id!r} not in {self.name!r}")
        return self._flat.vector(node).copy()

    def vector_matrix(self) -> np.ndarray:
        """All vectors as an ``(n, dim)`` view in node-id order.

        A view into live storage (valid until the next upsert
        reallocates); callers that keep it must copy. Bulk index builds
        use this to avoid the per-row stacking and payload copies of
        :meth:`export_state`.
        """
        return self._flat.matrix()

    def close(self) -> None:
        """Release resources: flushes and closes an attached WAL."""
        with self._write_lock:
            wal, self._wal = self._wal, None
        # close() fsyncs; do it after releasing the lock so a concurrent
        # writer is never stalled behind the final flush.
        if wal is not None:
            wal.close()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    @property
    def write_lock(self) -> threading.RLock:
        """The collection-level write lock (re-entrant).

        Held by every write for its whole apply+log span and by
        :meth:`snapshot_view` while capturing; reads do not take it
        (see the module docstring for why that is safe).
        """
        return self._write_lock

    @property
    def wal(self) -> "WriteAheadLog | None":
        """The attached write-ahead log, or ``None``."""
        return self._wal

    def attach_wal(self, wal: "WriteAheadLog") -> None:
        """Start logging accepted writes to ``wal``.

        The log is an *output* here — attach does not replay it (use
        :func:`repro.vectordb.wal.replay_into` first; the load path in
        :mod:`repro.vectordb.persistence` does both in order). Replaces
        any previously attached log without closing it.
        """
        with self._write_lock:
            self._wal = wal

    def detach_wal(self) -> "WriteAheadLog | None":
        """Stop logging; returns the detached log (not closed)."""
        with self._write_lock:
            wal, self._wal = self._wal, None
            return wal

    def wal_stats(self) -> dict | None:
        """The attached WAL's counters, or ``None`` when logging is off."""
        return self._wal.stats() if self._wal is not None else None

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    @array_contract(points="*d:float32")
    def upsert(self, points: Iterable[PointStruct]) -> int:
        """Insert new points (payload-only updates allowed for known ids).

        Returns the number of points inserted. Re-upserting an existing id
        with a *different* vector raises: HNSW graphs do not support vector
        replacement, and the SemaSK pipeline never needs it.

        With a WAL attached, every *accepted* point is logged before the
        call returns — including the accepted prefix of a batch that
        raises partway through, so recovery replays exactly the writes
        that were actually applied. The in-memory apply (including the
        copy-on-write that a first upsert after an mmap load performs)
        strictly precedes each point's log record.
        """
        with self._write_lock:
            inserted = 0
            accepted: list[PointStruct] = []
            try:
                for point in points:
                    vector = np.asarray(point.vector, dtype=np.float32)
                    if vector.shape != (self.dim,):
                        raise DimensionMismatch(
                            f"collection {self.name!r} expects dim "
                            f"{self.dim}, point {point.id!r} has shape "
                            f"{vector.shape}"
                        )
                    existing = self._id_to_node.get(point.id)
                    if existing is not None:
                        if not np.allclose(self._flat.vector(existing), vector):
                            raise CollectionError(
                                f"point {point.id!r} already exists with a "
                                "different vector; vector replacement is "
                                "not supported"
                            )
                        old_payload = self._payloads[existing]
                        self._payloads[existing] = dict(point.payload)
                        self._payload_indexes.reindex_point(
                            existing, old_payload, point.payload
                        )
                        if self._wal is not None:
                            accepted.append(PointStruct(
                                id=point.id,
                                vector=self._flat.vector(existing),
                                payload=dict(point.payload),
                            ))
                        continue
                    node = self._flat.add(vector)
                    if self._hnsw is not None:
                        # An attached graph may trail the collection (built
                        # in a worker while points kept arriving); append
                        # any missing tail first so graph node ids stay
                        # equal to flat node ids.
                        for missing in range(len(self._hnsw), node):
                            self._hnsw.add(self._flat.vector(missing))
                        self._hnsw.add(vector)
                    self._ids.append(point.id)
                    self._payloads.append(dict(point.payload))
                    self._id_to_node[point.id] = node
                    self._payload_indexes.index_point(node, point.payload)
                    inserted += 1
                    if self._wal is not None:
                        accepted.append(PointStruct(
                            id=point.id, vector=vector,
                            payload=dict(point.payload),
                        ))
            finally:
                # Log even when the batch raised mid-way: the accepted
                # prefix stays applied (documented contract), so it must
                # also survive a crash.
                if self._wal is not None and accepted:
                    self._wal.append_points(accepted)
            if self._sq8 is not None and inserted:
                # Quantize the appended rows eagerly (WAL replay lands
                # here too); searches also sync lazily, so a batch that
                # raised mid-way just leaves the tier to catch up then.
                self._sq8.sync(self._flat.matrix())
            return inserted

    def create_payload_index(self, field: str) -> None:
        """Build a hash index over ``field`` (backfills existing points).

        Mirrors Qdrant's payload indexes: selective equality/membership
        filters over indexed fields skip the full payload scan.
        """
        with self._write_lock:
            self._payload_indexes.create_index(field)
            for node, payload in enumerate(self._payloads):
                self._payload_indexes.index_point(node, payload)
            if self._wal is not None:
                self._wal.append_create_index(field)

    @property
    def indexed_payload_fields(self) -> frozenset[str]:
        """Payload fields with a secondary index."""
        return self._payload_indexes.indexed_fields

    def set_payload(self, point_id: str, payload: dict[str, Any]) -> None:
        """Merge ``payload`` into an existing point's payload."""
        with self._write_lock:
            node = self._id_to_node.get(point_id)
            if node is None:
                raise PointNotFound(f"point {point_id!r} not in {self.name!r}")
            old_payload = dict(self._payloads[node])
            self._payloads[node].update(payload)
            self._payload_indexes.reindex_point(
                node, old_payload, self._payloads[node]
            )
            if self._wal is not None:
                self._wal.append_set_payload(point_id, payload)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def retrieve(self, point_id: str) -> SearchHit:
        """Fetch one point's payload (score 1.0 placeholder)."""
        node = self._id_to_node.get(point_id)
        if node is None:
            raise PointNotFound(f"point {point_id!r} not in {self.name!r}")
        return SearchHit(id=point_id, score=1.0, payload=dict(self._payloads[node]))

    def scroll(self, flt: Filter | None = None) -> list[SearchHit]:
        """All points (optionally filtered), in insertion order."""
        hits = []
        for node, point_id in enumerate(self._ids):
            payload = self._payloads[node]
            if flt is None or flt.matches(payload):
                hits.append(SearchHit(id=point_id, score=1.0, payload=dict(payload)))
        return hits

    def count(self, flt: Filter | None = None) -> int:
        """Number of points matching ``flt`` (all points when None).

        Uses payload secondary indexes to narrow the scan, exactly like
        filtered searches do.
        """
        if flt is None:
            return len(self._ids)
        return int(self._matching_nodes(flt).size)

    def _matching_nodes(self, flt: Filter) -> np.ndarray:
        """Node ids matching ``flt``, narrowed by payload indexes first."""
        candidates = self._payload_indexes.candidates_for(flt)
        scan = (
            sorted(candidates)
            if candidates is not None
            else range(len(self._ids))
        )
        return np.fromiter(
            (node for node in scan if flt.matches(self._payloads[node])),
            dtype=np.int64,
        )

    @property
    def hnsw_is_built(self) -> bool:
        """Whether an HNSW graph exists and covers every point."""
        return self._hnsw is not None and len(self._hnsw) == len(self._ids)

    @property
    def hnsw_index(self) -> HNSWIndex | None:
        """The live HNSW graph, or ``None`` if none has been built.

        Persistence serializes this (schema v3) so a reload can attach
        the identical graph instead of rebuilding it.
        """
        return self._hnsw

    def build_hnsw(self, force: bool = False) -> HNSWIndex:
        """Build the HNSW graph now, instead of lazily on first search.

        Uses the bulk-scored :meth:`HNSWIndex.from_vectors` constructor.
        Idempotent: an up-to-date graph is returned as-is, and a graph
        that is missing recently attached tail points is caught up
        incrementally (the staleness guard for externally attached
        graphs — see :meth:`attach_hnsw`). ``force`` discards any
        existing graph and rebuilds from scratch.
        """
        # Hold the write lock for the whole build: a concurrent upsert
        # reallocating ``_flat`` mid-build would leave the graph pointing
        # at stale rows, and two racing builders would double-build.
        with self._write_lock:
            if force:
                self._hnsw = None
            index = self._hnsw
            if index is None:
                cfg = self._hnsw_config
                index = HNSWIndex.from_vectors(
                    self._flat.matrix(), m=cfg.m,
                    ef_construction=cfg.ef_construction, seed=cfg.seed,
                    dim=self.dim,
                )
                index.pickle_by_handle = self._quantize is not None
                self._hnsw = index
            elif len(index) < len(self._ids):
                for node in range(len(index), len(self._ids)):
                    index.add(self._flat.vector(node))
            return index

    def attach_hnsw(self, index: HNSWIndex) -> None:
        """Install an externally built graph.

        The graph must have been built from this collection's vectors in
        node-id (insertion) order — e.g. by ``HNSWIndex.from_vectors``
        over a :meth:`vector_matrix` copy in a worker process (parallel
        per-shard builds), or restored from a snapshot by
        ``HNSWIndex.from_arrays``. It may trail behind points upserted
        after the build was started; the missing tail is appended on the
        next :meth:`build_hnsw` or approximate search. Raises
        :class:`~repro.errors.CollectionError` when the graph's dim
        differs or it has *more* nodes than the collection has points.
        """
        with self._write_lock:
            if index.dim != self.dim:
                raise CollectionError(
                    f"attached graph dim {index.dim} != collection dim "
                    f"{self.dim}"
                )
            if len(index) > len(self._ids):
                raise CollectionError(
                    f"attached graph has {len(index)} nodes, collection has "
                    f"only {len(self._ids)} points"
                )
            index.pickle_by_handle = self._quantize is not None
            self._hnsw = index

    def _ensure_hnsw(self) -> HNSWIndex:
        return self.build_hnsw()

    def attach_sq8(self, store: SQ8Store) -> None:
        """Install an externally built quantized tier (snapshot loads).

        Turns the collection quantized even when it was constructed
        without ``quantize=`` — the load path builds the collection
        first and attaches the persisted tier only after the codes
        survive validation, degrading to plain float32 on any defect.
        The store may trail the collection (rows appended by WAL replay
        are re-quantized on the next sync); it must not be *ahead* of
        it, and its dimensionality must match.
        """
        with self._write_lock:
            if store.dim != self.dim:
                raise CollectionError(
                    f"attached sq8 tier dim {store.dim} != collection dim "
                    f"{self.dim}"
                )
            if store.count > len(self._ids):
                raise CollectionError(
                    f"attached sq8 tier has {store.count} rows, collection "
                    f"has only {len(self._ids)} points"
                )
            self._quantize = "sq8"
            self._sq8 = store
            # Replicas of a quantized collection ship the mmap handle of
            # the float32 matrix instead of its bytes (see FlatIndex) —
            # from both the flat tier and any already-attached graph,
            # which share the same storage.
            self._flat.pickle_by_handle = True
            if self._hnsw is not None:
                self._hnsw.pickle_by_handle = True

    def _ensure_sq8(self) -> SQ8Store:
        """The quantized tier, synced to cover every inserted row."""
        store = self._sq8
        if store is None:  # pragma: no cover - guarded by callers
            raise CollectionError(
                f"collection {self.name!r} has no quantized tier"
            )
        if store.count < len(self._ids):
            # sync() re-checks under its own lock; rows [0, n) of the
            # matrix are immutable, so racing an upsert is safe.
            store.sync(self._flat.matrix())
        return store

    def _sq8_graph_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None,
        rescore_factor: float | None,
        matching: np.ndarray | None = None,
        match_set: set[int] | None = None,
    ) -> list[tuple[int, float]]:
        """Quantized traversal + exact rescore (the sq8 read path).

        The HNSW beam runs over the uint8 codes in a rewritten score
        space (see :meth:`SQ8Store.traversal_query`), collecting the
        top-``max(k, ceil(rescore_factor·k))`` candidates; those are
        then scored *exactly* against the float32 matrix, so returned
        scores are always true float32 similarities. When the candidate
        budget covers the whole (matching) population, traversal is
        skipped and the search degenerates to the exact float32 scan —
        which is what makes ``rescore_factor=len(collection)``
        bit-identical to ``exact=True`` by construction.
        """
        factor = (
            DEFAULT_RESCORE_FACTOR
            if rescore_factor is None
            else float(rescore_factor)
        )
        if not factor >= 1.0:
            raise ValueError(
                f"rescore_factor must be >= 1.0, got {rescore_factor}"
            )
        m_cand = max(k, int(math.ceil(factor * k)))
        population = (
            int(matching.size) if matching is not None else len(self._ids)
        )
        if m_cand >= population:
            return self._flat.search(query, k, subset=matching)
        store = self._ensure_sq8()
        graph = self._ensure_hnsw()
        matrix_like, w = store.traversal_query(query, self._metric)
        view = graph.traversal_view(matrix_like)
        predicate = (
            (lambda n: n in match_set) if match_set is not None else None
        )
        found = view.search(
            w, m_cand, ef=ef or self._hnsw_config.ef_search,
            predicate=predicate,
        )
        if not found:
            return []
        nodes = np.fromiter(
            (node for node, _ in found), dtype=np.int64, count=len(found)
        )
        return self._flat.search(query, k, subset=nodes)

    @array_contract(vector="d:float32")
    def search(
        self,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> list[SearchHit]:
        """Top-``k`` most similar points, optionally filtered.

        ``exact=True`` forces brute-force scoring (used to measure HNSW
        recall). Otherwise, selective filters use exact scoring over the
        matching subset and broad/absent filters use the HNSW graph —
        traversed over the quantized tier when the collection was
        created with ``quantize="sq8"``, with the top
        ``rescore_factor·k`` candidates rescored exactly against the
        float32 matrix (default ``DEFAULT_RESCORE_FACTOR``; ignored for
        unquantized collections).

        ``k = 0`` returns no hits and ``k`` beyond the population
        truncates to every (matching) point; negative ``k`` raises.

        An expired ``deadline`` raises
        :class:`~repro.errors.DeadlineExceeded` at entry and again
        between filter evaluation and scoring — the two choke points
        where an over-budget search can still be abandoned cheaply.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if deadline is not None:
            deadline.check("search")
        query = np.asarray(vector, dtype=np.float32)
        if query.shape != (self.dim,):
            raise DimensionMismatch(
                f"query shape {query.shape} != ({self.dim},)"
            )
        if k == 0 or len(self._ids) == 0:
            return []
        quantized = self._sq8 is not None and not exact

        if flt is not None:
            matching = self._matching_nodes(flt)
            if matching.size == 0:
                return []
            if deadline is not None:
                deadline.check("scoring")
            if exact or matching.size <= self.BRUTE_FORCE_THRESHOLD:
                raw = self._flat.search(query, k, subset=matching)
            elif quantized:
                raw = self._sq8_graph_search(
                    query, k, ef, rescore_factor,
                    matching=matching, match_set=set(matching.tolist()),
                )
            else:
                match_set = set(matching.tolist())
                raw = self._ensure_hnsw().search(
                    query, k, ef=ef or self._hnsw_config.ef_search,
                    predicate=lambda n: n in match_set,
                )
        elif exact:
            raw = self._flat.search(query, k)
        elif quantized:
            raw = self._sq8_graph_search(query, k, ef, rescore_factor)
        else:
            raw = self._ensure_hnsw().search(
                query, k, ef=ef or self._hnsw_config.ef_search
            )

        return [
            SearchHit(
                id=self._ids[node],
                score=score,
                payload=dict(self._payloads[node]),
            )
            for node, score in raw
        ]

    @array_contract(vectors="q,d:float32")
    def search_batch(
        self,
        vectors: np.ndarray | Sequence[Sequence[float]],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> list[list[SearchHit]]:
        """Top-``k`` hits for each query row, against one shared filter.

        The batch equivalent of :meth:`search`: the filter's matching-node
        set is evaluated once for the whole batch (the dominant cost of a
        filtered search over payloads), exact scoring dispatches to the
        flat index's matrix–matrix path, and the HNSW path reuses the
        graph's vectorized traversal per query. Returns one hit list per
        query, equivalent to ``[self.search(v, k, ...) for v in vectors]``
        (including the ``k = 0`` / oversized-``k`` edge behaviour).
        ``deadline`` is checked at the same choke points as in
        :meth:`search` (entry, and between filter evaluation and
        scoring).
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if deadline is not None:
            deadline.check("search_batch")
        queries = np.asarray(vectors, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatch(
                f"queries shape {queries.shape} != (n, {self.dim})"
            )
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        if k == 0 or len(self._ids) == 0:
            return [[] for _ in range(n_queries)]
        quantized = self._sq8 is not None and not exact

        if flt is not None:
            matching = self._matching_nodes(flt)
            if matching.size == 0:
                return [[] for _ in range(n_queries)]
            if deadline is not None:
                deadline.check("scoring")
            if exact or matching.size <= self.BRUTE_FORCE_THRESHOLD:
                raw_lists = self._flat.search_batch(queries, k, subset=matching)
            elif quantized:
                match_set = set(matching.tolist())
                raw_lists = [
                    self._sq8_graph_search(
                        query, k, ef, rescore_factor,
                        matching=matching, match_set=match_set,
                    )
                    for query in queries
                ]
            else:
                match_set = set(matching.tolist())
                index = self._ensure_hnsw()
                raw_lists = index.search_batch(
                    queries, k, ef=ef or self._hnsw_config.ef_search,
                    predicate=lambda n: n in match_set,
                )
        elif exact:
            raw_lists = self._flat.search_batch(queries, k)
        elif quantized:
            raw_lists = [
                self._sq8_graph_search(query, k, ef, rescore_factor)
                for query in queries
            ]
        else:
            raw_lists = self._ensure_hnsw().search_batch(
                queries, k, ef=ef or self._hnsw_config.ef_search
            )

        return [
            [
                SearchHit(
                    id=self._ids[node],
                    score=score,
                    payload=dict(self._payloads[node]),
                )
                for node, score in raw
            ]
            for raw in raw_lists
        ]

    # ------------------------------------------------------------------
    # persistence support (used by repro.vectordb.persistence)
    # ------------------------------------------------------------------

    def export_state(self) -> tuple[np.ndarray, list[str], list[dict[str, Any]]]:
        """``(vectors, ids, payloads)`` as independent copies.

        The deliberately-copying export: the result is fully decoupled
        from live storage, safe to hold across later upserts or to hand
        to another thread/process. Snapshot *serialization* no longer
        goes through it — persistence writes straight from the zero-copy
        :meth:`vector_matrix` / :meth:`point_ids` / :meth:`payload_rows`
        views, which is what lets an mmap-served collection save without
        materializing its matrix.
        """
        with self._write_lock:
            return (
                self._flat.matrix().copy(),
                list(self._ids),
                [dict(p) for p in self._payloads],
            )

    def snapshot_view(self) -> SnapshotView:
        """Capture a consistent :class:`SnapshotView` under the write lock.

        Cheap relative to serialization: the vector matrix is a zero-copy
        view (rows below ``len(ids)`` are immutable by contract), only
        ids/payloads are copied, and the HNSW graph — when built — is
        serialized to arrays here because the live graph keeps growing
        after the lock is released.
        """
        with self._write_lock:
            n = len(self._ids)
            graph_arrays = (
                self._hnsw.to_arrays()
                if self.hnsw_is_built and n
                else None
            )
            codes = codebook = None
            if self._sq8 is not None and n:
                self._sq8.sync(self._flat.matrix())
                arrays = self._sq8.as_arrays()
                if arrays is not None:
                    codes = arrays["codes"]
                    codebook = {
                        "mins": arrays["mins"], "steps": arrays["steps"],
                    }
            return SnapshotView(
                name=self.name,
                dim=self.dim,
                metric=self.metric,
                hnsw=self.hnsw_config,
                indexed_fields=tuple(sorted(self.indexed_payload_fields)),
                vectors=self._flat.matrix(),
                ids=list(self._ids),
                payloads=[dict(p) for p in self._payloads],
                graph_arrays=graph_arrays,
                wal=self._wal,
                wal_offset=self._wal.offset if self._wal is not None else None,
                quantize=self._quantize,
                codes=codes,
                codebook=codebook,
            )

    def payload_rows(self) -> list[dict[str, Any]]:
        """The stored payload dicts in node-id order, *by reference*.

        The cheap read-only counterpart of :meth:`export_state`'s payload
        copy: snapshot writes serialize these straight to JSON, so — like
        :meth:`vector_matrix` — no per-point copies are made and an
        mmap-served collection can be saved without materializing
        anything. Callers must not mutate the dicts.
        """
        return list(self._payloads)

    @classmethod
    def from_state(
        cls,
        name: str,
        vectors: np.ndarray,
        ids: list[str],
        payloads: list[dict[str, Any]],
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
        dim: int | None = None,
        quantize: str | None = None,
    ) -> "Collection":
        """Rebuild a collection from :meth:`export_state` output.

        ``dim`` pins the dimensionality explicitly (snapshots record it in
        their metadata); without it the vector matrix's second axis is
        used, which stays correct even for zero points. The HNSW graph is
        rebuilt lazily on first approximate search.
        """
        if len(ids) != len(payloads) or len(ids) != vectors.shape[0]:
            raise CollectionError(
                "inconsistent state: vectors/ids/payloads lengths differ"
            )
        if dim is None:
            dim = vectors.shape[1] if vectors.ndim == 2 else 1
        collection = cls(name, dim, metric=metric, hnsw=hnsw,
                         quantize=quantize)
        if vectors.size:
            collection.upsert(
                PointStruct(id=i, vector=v, payload=p)
                for i, v, p in zip(ids, vectors, payloads)
            )
        return collection

    @classmethod
    @array_contract(vectors="n,d")
    def from_matrix(
        cls,
        name: str,
        vectors: np.ndarray,
        ids: list[str],
        payloads: list[dict[str, Any]],
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
        dim: int | None = None,
        quantize: str | None = None,
    ) -> "Collection":
        """Restore a collection *around* ``vectors`` without copying them.

        The O(metadata) counterpart of :meth:`from_state`: the matrix is
        adopted as storage via :meth:`FlatIndex.from_matrix` (a read-only
        ``np.memmap`` over a snapshot's vector file works — later upserts
        copy on write), ids and payloads are taken over as-is instead of
        being re-validated point by point, and no index work happens.
        Snapshot loading (schema v3) uses this so cold starts skip both
        the per-point upsert loop and the vector copy. The caller must
        hand over rows aligned with ``ids``/``payloads`` and give up
        ownership of the lists.
        """
        if len(ids) != len(payloads) or len(ids) != vectors.shape[0]:
            raise CollectionError(
                "inconsistent state: vectors/ids/payloads lengths differ"
            )
        if dim is None:
            dim = vectors.shape[1] if vectors.ndim == 2 else 1
        if vectors.shape[0] and vectors.shape[1] != dim:
            raise CollectionError(
                f"matrix dim {vectors.shape[1]} != declared dim {dim}"
            )
        collection = cls(name, dim, metric=metric, hnsw=hnsw,
                         quantize=quantize)
        if vectors.shape[0]:
            collection._flat = FlatIndex.from_matrix(vectors, metric=metric)
            if collection._quantize:
                collection._flat.pickle_by_handle = True
        collection._ids = list(ids)
        collection._payloads = list(payloads)
        collection._id_to_node = {
            point_id: node for node, point_id in enumerate(ids)
        }
        if len(collection._id_to_node) != len(ids):
            raise CollectionError(f"duplicate point ids in {name!r}")
        return collection


def build_predicate(payloads: list[Mapping[str, Any]], flt: Filter):
    """Node-id predicate over ``payloads`` for raw HNSW searches."""
    return lambda node: flt.matches(payloads[node])
