"""Per-request deadline budgets.

A :class:`Deadline` is an absolute point on the monotonic clock carried
alongside a request as it moves through the stack: HTTP handler →
serving context → coalescer → sharded fan-out → per-shard search. Every
layer that is about to start a non-trivial unit of work calls
:meth:`Deadline.check` first; once the budget is spent the request fails
fast with :class:`~repro.errors.DeadlineExceeded` instead of occupying a
worker to compute an answer nobody is waiting for.

The type lives in :mod:`repro.vectordb` (the bottom of the dependency
stack) so both the engine and the serving layer can use it without a
circular import. It is a frozen dataclass over one float, so it pickles
and crosses the :class:`~repro.serving.workers.ProcessShardExecutor`
pipe for free. ``time.monotonic`` is ``CLOCK_MONOTONIC`` on Linux —
boot-relative and shared by every process on the box — so a deadline
minted in the server process is still meaningful inside a shard worker.

Deadlines only ever *shorten* effective work; they are checked at choke
points, not preemptively — a shard that is already inside a numpy kernel
finishes that kernel. The contract is "abandon early at the next
checkpoint", not "interrupt mid-instruction".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import DeadlineExceeded

__all__ = ["Deadline", "DeadlineExceeded"]


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the monotonic clock.

    Construct via :meth:`after` / :meth:`after_ms` rather than passing
    ``expires_at`` directly, unless you are forwarding an existing
    deadline across a process boundary.
    """

    expires_at: float  # time.monotonic() timestamp

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now; must be non-negative."""
        if seconds < 0:
            raise ValueError(f"deadline must be non-negative, got {seconds}")
        return cls(expires_at=time.monotonic() + seconds)

    @classmethod
    def after_ms(cls, milliseconds: float) -> "Deadline":
        """A deadline ``milliseconds`` from now; must be non-negative."""
        return cls.after(milliseconds / 1000.0)

    def remaining_s(self) -> float:
        """Seconds of budget left (clamped to 0.0 once expired)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        ``what`` names the unit of work being declined, so the error
        message says where along the pipeline the budget ran out.
        """
        if self.expired:
            raise DeadlineExceeded(f"deadline exceeded before {what}")
