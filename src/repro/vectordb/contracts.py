"""Shape/dtype contracts for public numeric entrypoints.

``@array_contract`` declares what a function expects of its array
arguments — ``"n,d:float32"`` reads "a 2-D float32 matrix whose dims
bind to n and d for this call". Declarations are machine-checkable
documentation first: with enforcement off (the default) the decorator
adds a single attribute check per call and nothing else, so hot paths
pay nothing. Under :mod:`repro.testing.memwatch` (or with
``REPRO_ARRAY_CONTRACTS=1``) every declared parameter and return value
is validated, and a mismatch raises :class:`ArrayContractViolation` at
the entrypoint instead of surfacing three layers down as a silent
float64 upcast or a shape-broadcast bug.

Spec grammar (one string per parameter, or positionally
``@array_contract("n,d", "float32")`` for the first array parameter):

* ``"n,d:float32"`` — shape pattern ``:`` dtype. Dim tokens are named
  (bind and must agree across parameters and the return value),
  integer literals (must match exactly), or ``"?"`` (anything).
* ``"n,d"`` — shape only; dtype unchecked (converting constructors).
* ``"*d:float32"`` — elementwise: the parameter is an iterable whose
  items (or their ``.vector`` attribute, for point structs) are each
  checked against ``d:float32`` as they are consumed. Validation is
  lazy so generator arguments stay streaming.

Only ``np.ndarray`` values are dtype-checked: lists and tuples are
accepted unchecked because the entrypoints convert them anyway — the
contract exists to catch *arrays* of the wrong dtype, which convert
silently and expensively.
"""

from __future__ import annotations

import functools
import inspect
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ArrayContractViolation",
    "array_contract",
    "enforcement_enabled",
    "set_enforcement",
]


class ArrayContractViolation(TypeError):
    """An array argument or return value broke a declared contract."""


#: Process-wide enforcement switch. Off by default so production call
#: paths pay one boolean check per decorated call; flipped on by
#: memwatch during tests or by REPRO_ARRAY_CONTRACTS=1.
_enforcing: bool = bool(os.environ.get("REPRO_ARRAY_CONTRACTS"))


def enforcement_enabled() -> bool:
    """Whether contracts are currently being validated."""
    return _enforcing


def set_enforcement(enabled: bool) -> bool:
    """Toggle validation; returns the previous setting (for restore)."""
    global _enforcing
    previous = _enforcing
    _enforcing = bool(enabled)
    return previous


@dataclass(frozen=True)
class _ArraySpec:
    """One parsed parameter spec."""

    shape: tuple[str, ...]
    dtype: np.dtype | None
    elementwise: bool

    @classmethod
    def parse(cls, spec: str) -> "_ArraySpec":
        text = spec.strip()
        elementwise = text.startswith("*")
        if elementwise:
            text = text[1:]
        shape_part, _, dtype_part = text.partition(":")
        shape = tuple(
            tok.strip() for tok in shape_part.split(",") if tok.strip()
        )
        if not shape:
            raise ValueError(f"array_contract spec {spec!r} has no shape")
        dtype = np.dtype(dtype_part.strip()) if dtype_part.strip() else None
        return cls(shape=shape, dtype=dtype, elementwise=elementwise)


def _check_array(
    value: np.ndarray,
    spec: _ArraySpec,
    dims: dict[str, int],
    where: str,
) -> None:
    if spec.dtype is not None and value.dtype != spec.dtype:
        raise ArrayContractViolation(
            f"{where}: expected dtype {spec.dtype}, got {value.dtype}"
        )
    if value.ndim != len(spec.shape):
        raise ArrayContractViolation(
            f"{where}: expected {len(spec.shape)}-D "
            f"({','.join(spec.shape)}), got {value.ndim}-D "
            f"shape {value.shape}"
        )
    for token, actual in zip(spec.shape, value.shape):
        if token == "?":
            continue
        if token.isdigit():
            if actual != int(token):
                raise ArrayContractViolation(
                    f"{where}: dim {token} expected, got {actual} "
                    f"(shape {value.shape})"
                )
        elif token in dims:
            if dims[token] != actual:
                raise ArrayContractViolation(
                    f"{where}: dim {token}={dims[token]} bound earlier "
                    f"in this call, got {actual} (shape {value.shape})"
                )
        else:
            dims[token] = actual


def _validate(
    value: object,
    spec: _ArraySpec,
    dims: dict[str, int],
    where: str,
) -> object:
    """Validate ``value``; returns it (or a validating wrapper for
    elementwise specs over lazy iterables)."""
    if value is None:
        return value
    if spec.elementwise:
        if isinstance(value, np.ndarray):
            # A matrix passed where points are expected: check rows.
            row_spec = _ArraySpec(spec.shape, spec.dtype, elementwise=False)
            for row in value:
                _check_array(row, row_spec, dims, where)
            return value
        if isinstance(value, Iterable):
            return _validating_iter(value, spec, dims, where)
        return value
    if isinstance(value, np.ndarray):
        _check_array(value, spec, dims, where)
    return value


def _validating_iter(
    items: Iterable,
    spec: _ArraySpec,
    dims: dict[str, int],
    where: str,
) -> Iterator:
    item_spec = _ArraySpec(spec.shape, spec.dtype, elementwise=False)
    for index, item in enumerate(items):
        candidate = getattr(item, "vector", item)
        if isinstance(candidate, np.ndarray):
            _check_array(candidate, item_spec, dims, f"{where}[{index}]")
        yield item


def array_contract(*positional: str, returns: str | None = None, **named: str):
    """Declare shape/dtype contracts on a numeric entrypoint.

    Positional form ``@array_contract("n,d", "float32")`` attaches
    ``shape``/``dtype`` to the first non-``self``/``cls`` parameter;
    the keyword form names parameters explicitly, e.g.
    ``@array_contract(query="d:float32", vectors="n,d:float32",
    returns="n:float32")``. See the module docstring for the grammar.
    """
    if len(positional) > 2:
        raise TypeError(
            "array_contract takes at most (shape, dtype) positionally"
        )
    positional_spec: _ArraySpec | None = None
    if positional:
        text = positional[0]
        if len(positional) == 2:
            text = f"{positional[0]}:{positional[1]}"
        positional_spec = _ArraySpec.parse(text)
    named_specs = {name: _ArraySpec.parse(s) for name, s in named.items()}
    returns_spec = _ArraySpec.parse(returns) if returns else None

    def decorate(fn):
        signature = inspect.signature(fn)
        param_names = list(signature.parameters)
        specs = dict(named_specs)
        if positional_spec is not None:
            for name in param_names:
                if name not in ("self", "cls"):
                    specs.setdefault(name, positional_spec)
                    break
        unknown = set(specs) - set(param_names)
        if unknown:
            raise TypeError(
                f"array_contract on {fn.__qualname__}: unknown "
                f"parameter(s) {sorted(unknown)}"
            )

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enforcing:
                return fn(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            dims: dict[str, int] = {}
            for name, spec in specs.items():
                if name not in bound.arguments:
                    continue
                bound.arguments[name] = _validate(
                    bound.arguments[name], spec, dims,
                    f"{fn.__qualname__}({name})",
                )
            result = fn(*bound.args, **bound.kwargs)
            if returns_spec is not None and isinstance(result, np.ndarray):
                _check_array(
                    result, returns_spec, dims,
                    f"{fn.__qualname__} return",
                )
            return result

        wrapper.__array_contract__ = {
            "params": {n: s for n, s in specs.items()},
            "returns": returns_spec,
        }
        return wrapper

    return decorate
