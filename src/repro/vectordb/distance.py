"""Distance/similarity metrics for the vector database.

Vectors are stored L2-normalized (the embedding models emit unit vectors),
so cosine similarity reduces to a dot product. Scores returned by searches
are *similarities* (higher is better), as in Qdrant's cosine mode.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.vectordb.contracts import array_contract


class Metric(str, Enum):
    """Supported similarity metrics."""

    COSINE = "cosine"
    DOT = "dot"
    EUCLIDEAN = "euclidean"


@array_contract(matrix="n,d", returns="n,d:float32")
def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-normalize ``matrix``, leaving zero rows untouched.

    float32 input normalizes in float32 and returns a fresh float32
    array with no extra conversion pass (``matrix / norms`` already
    allocated the result; ``copy=False`` makes the cast a no-op).
    """
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return (matrix / norms).astype(np.float32, copy=False)


@array_contract(query="d:float32", vectors="n,d:float32",
                returns="n:float32")
def similarity(
    query: np.ndarray, vectors: np.ndarray, metric: Metric = Metric.COSINE
) -> np.ndarray:
    """Similarity of ``query`` to each row of ``vectors``.

    For :attr:`Metric.COSINE` both sides are assumed unit-norm (enforced at
    insert time by the collection). Euclidean distances are negated so that
    "higher is better" holds for every metric.
    """
    if metric in (Metric.COSINE, Metric.DOT):
        return vectors @ query
    diffs = vectors - query
    return -np.sqrt(np.einsum("ij,ij->i", diffs, diffs))


@array_contract(a="n,d:float32", b="m,d:float32", returns="n,m:float32")
def pairwise_similarity(
    a: np.ndarray, b: np.ndarray, metric: Metric = Metric.COSINE
) -> np.ndarray:
    """Similarity matrix between rows of ``a`` and rows of ``b``."""
    if metric in (Metric.COSINE, Metric.DOT):
        return a @ b.T
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    sq = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
    return -np.sqrt(sq)


# ----------------------------------------------------------------------
# int8 scalar-quantized kernels (the sq8 storage tier)
#
# A quantized row decodes as ``x̂ = codes · steps + mins`` (per-dimension
# affine codebook, see repro.vectordb.quantization). Because the decode
# is affine, every similarity against x̂ collapses into matmuls over the
# *raw uint8 codes* — numpy promotes ``uint8 @ float32`` to float32, so
# no float32 copy of the codes is ever materialized. That is the whole
# point of the tier: candidate scoring reads 1 byte per dimension.
# ----------------------------------------------------------------------


@array_contract(codes="n,d:uint8", steps="d:float32", returns="n:float32")
def sq8_energies(codes: np.ndarray, steps: np.ndarray) -> np.ndarray:
    """Per-row energies ``Σ_j (c_ij · s_j)²`` of quantized rows.

    The euclidean kernel's cacheable term: squaring the codes in int32
    (255² fits comfortably) and contracting with ``steps²`` in one
    dtype-pinned matmul avoids both a float32 materialization of the
    code matrix and numpy's int32@float32 → float64 promotion.
    """
    squared = np.square(codes, dtype=np.int32)
    return np.matmul(squared, np.square(steps), dtype=np.float32)


@array_contract(query="d:float32", codes="n,d:uint8", mins="d:float32",
                steps="d:float32", returns="n:float32")
def sq8_similarity(
    query: np.ndarray,
    codes: np.ndarray,
    mins: np.ndarray,
    steps: np.ndarray,
    metric: Metric = Metric.COSINE,
    energies: np.ndarray | None = None,
) -> np.ndarray:
    """Similarity of ``query`` to each *dequantized* row, computed on codes.

    Equal to ``similarity(query, decode(codes))`` up to float
    accumulation order, without dequantizing anything:

    * cosine/dot: ``x̂ · q = codes @ (steps·q) + mins·q`` — one uint8
      matmul plus a per-query constant;
    * euclidean: ``‖x̂ − q‖² = E − 2·codes @ (steps·t) + ‖t‖²`` with
      ``t = q − mins`` and the per-row energies ``E`` (pass the cached
      vector from :func:`sq8_energies`; recomputed here when omitted).
    """
    if metric in (Metric.COSINE, Metric.DOT):
        return codes @ (steps * query) + np.float32(mins @ query)
    t = query - mins
    if energies is None:
        energies = sq8_energies(codes, steps)
    sq = energies - 2.0 * (codes @ (steps * t)) + np.float32(t @ t)
    return -np.sqrt(np.maximum(sq, np.float32(0.0)))
