"""Distance/similarity metrics for the vector database.

Vectors are stored L2-normalized (the embedding models emit unit vectors),
so cosine similarity reduces to a dot product. Scores returned by searches
are *similarities* (higher is better), as in Qdrant's cosine mode.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.vectordb.contracts import array_contract


class Metric(str, Enum):
    """Supported similarity metrics."""

    COSINE = "cosine"
    DOT = "dot"
    EUCLIDEAN = "euclidean"


@array_contract(matrix="n,d", returns="n,d:float32")
def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-normalize ``matrix``, leaving zero rows untouched.

    float32 input normalizes in float32 and returns a fresh float32
    array with no extra conversion pass (``matrix / norms`` already
    allocated the result; ``copy=False`` makes the cast a no-op).
    """
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return (matrix / norms).astype(np.float32, copy=False)


@array_contract(query="d:float32", vectors="n,d:float32",
                returns="n:float32")
def similarity(
    query: np.ndarray, vectors: np.ndarray, metric: Metric = Metric.COSINE
) -> np.ndarray:
    """Similarity of ``query`` to each row of ``vectors``.

    For :attr:`Metric.COSINE` both sides are assumed unit-norm (enforced at
    insert time by the collection). Euclidean distances are negated so that
    "higher is better" holds for every metric.
    """
    if metric in (Metric.COSINE, Metric.DOT):
        return vectors @ query
    diffs = vectors - query
    return -np.sqrt(np.einsum("ij,ij->i", diffs, diffs))


@array_contract(a="n,d:float32", b="m,d:float32", returns="n,m:float32")
def pairwise_similarity(
    a: np.ndarray, b: np.ndarray, metric: Metric = Metric.COSINE
) -> np.ndarray:
    """Similarity matrix between rows of ``a`` and rows of ``b``."""
    if metric in (Metric.COSINE, Metric.DOT):
        return a @ b.T
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    sq = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
    return -np.sqrt(sq)
