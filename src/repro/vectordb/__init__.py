"""Vector database substrate (Qdrant stand-in): collections, filters, HNSW.

Two interchangeable backends share one surface: :class:`Collection` (a
single vector space with flat + HNSW indexes and payload secondary
indexes) and :class:`ShardedCollection` (N hash-partitioned ``Collection``
shards — points route by CRC-32 of their id via
:func:`~repro.vectordb.sharded.shard_for`, searches fan out per shard on a
thread pool and merge into the exact global top-k, filters evaluate per
shard). :class:`VectorDBClient` fronts both (``create_collection(shards=N)``),
and :func:`save_collection` / :func:`load_collection` snapshot both — one
directory per plain collection, one sub-directory per shard (schema v3:
raw memory-mappable vector matrices, persisted HNSW graphs, HNSW config,
and payload-index fields; ``load_collection(..., mmap=True)`` serves
large collections off the page cache, and v1/v2 snapshots still load —
:func:`migrate_snapshot` upgrades them; see
:mod:`repro.vectordb.persistence`).

Offline index lifecycle: ``build_hnsw`` on either backend constructs the
HNSW graph(s) eagerly — sharded collections build per-shard graphs in
parallel worker processes — and :func:`reshard_snapshot` rewrites a saved
snapshot for a different shard count (``VectorDBClient.reshard_collection``
is the in-memory equivalent), so shard counts are an operational knob
rather than frozen at creation time.

Durability: a per-shard write-ahead log (:mod:`repro.vectordb.wal`)
records accepted writes in a checksummed append-only file next to the
snapshot (``<snapshot>.wal/``). ``load_collection`` replays any log tail
on top of the snapshot and ``wal="always"|"batch"|"off"`` attaches live
logs (:func:`attach_wal` does so for freshly built collections), so a
crash between snapshot saves no longer loses acknowledged writes; a
successful ``save_collection`` truncates the log through the offsets the
snapshot covers.
"""

from repro.vectordb.client import VectorDBClient
from repro.vectordb.collection import (
    Collection,
    HnswConfig,
    PointStruct,
    SearchHit,
)
from repro.vectordb.deadline import Deadline
from repro.vectordb.distance import Metric, normalize_rows, similarity
from repro.vectordb.filters import (
    And,
    FieldIn,
    FieldMatch,
    FieldRange,
    Filter,
    GeoBoundingBoxFilter,
    GeoRadiusFilter,
    Not,
    Or,
)
from repro.vectordb.flat import FlatIndex
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.persistence import (
    attach_wal,
    inspect_snapshot,
    load_collection,
    migrate_snapshot,
    reshard_snapshot,
    save_collection,
)
from repro.vectordb.sharded import AnyCollection, ShardedCollection, shard_for
from repro.vectordb.wal import WriteAheadLog, replay_into, wal_directory

__all__ = [
    "AnyCollection",
    "And",
    "Collection",
    "Deadline",
    "FieldIn",
    "FieldMatch",
    "FieldRange",
    "Filter",
    "FlatIndex",
    "GeoBoundingBoxFilter",
    "GeoRadiusFilter",
    "HNSWIndex",
    "HnswConfig",
    "Metric",
    "Not",
    "Or",
    "PointStruct",
    "SearchHit",
    "ShardedCollection",
    "VectorDBClient",
    "WriteAheadLog",
    "attach_wal",
    "inspect_snapshot",
    "load_collection",
    "migrate_snapshot",
    "normalize_rows",
    "replay_into",
    "reshard_snapshot",
    "save_collection",
    "shard_for",
    "similarity",
    "wal_directory",
]
