"""Vector database substrate (Qdrant stand-in): collections, filters, HNSW."""

from repro.vectordb.client import VectorDBClient
from repro.vectordb.collection import (
    Collection,
    HnswConfig,
    PointStruct,
    SearchHit,
)
from repro.vectordb.distance import Metric, normalize_rows, similarity
from repro.vectordb.filters import (
    And,
    FieldIn,
    FieldMatch,
    FieldRange,
    Filter,
    GeoBoundingBoxFilter,
    GeoRadiusFilter,
    Not,
    Or,
)
from repro.vectordb.flat import FlatIndex
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.persistence import load_collection, save_collection

__all__ = [
    "And",
    "Collection",
    "FieldIn",
    "FieldMatch",
    "FieldRange",
    "Filter",
    "FlatIndex",
    "GeoBoundingBoxFilter",
    "GeoRadiusFilter",
    "HNSWIndex",
    "HnswConfig",
    "Metric",
    "Not",
    "Or",
    "PointStruct",
    "SearchHit",
    "VectorDBClient",
    "load_collection",
    "normalize_rows",
    "save_collection",
    "similarity",
]
