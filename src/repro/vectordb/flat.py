"""Exact (brute-force) vector search, the ground truth for HNSW recall.

Single queries score with one matrix–vector product; batched queries
(:meth:`FlatIndex.search_batch`) score with one matrix–matrix product, which
is how real engines amortize memory traffic over concurrent queries.

Storage may be adopted rather than owned: :meth:`FlatIndex.from_matrix`
wraps an existing ``(n, dim)`` float32 matrix — including a read-only
``np.memmap`` over a snapshot's ``vectors.npy`` — without copying it.
Searches only ever read the matrix, so a memory-mapped collection serves
queries straight off the page cache; the first :meth:`FlatIndex.add`
after adoption copies into a fresh writable array (copy-on-write), so
upserts keep working and never touch the snapshot file.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.vectordb.contracts import array_contract
from repro.vectordb.distance import Metric, pairwise_similarity, similarity


def mapped_pickle_handle(
    array: np.ndarray,
) -> tuple[str, str, tuple[int, ...], int] | None:
    """Pickle-by-reference handle for a read-only file-backed memmap.

    ``pickle`` serializes ``np.memmap`` *by value* — a multi-GB mapped
    matrix materializes into the pickle stream and again in every
    process that loads it, defeating the point of mmap-backed storage.
    For arrays that are plain read-only maps of a snapshot file, the
    (path, dtype, shape, offset) tuple is a complete description;
    :func:`remap_from_handle` re-opens the same pages in the receiving
    process. Returns None for anything else (heap arrays, writable or
    anonymous maps, sliced views whose offset no longer matches).
    """
    if not isinstance(array, np.memmap):
        return None
    filename = getattr(array, "filename", None)
    offset = getattr(array, "offset", None)
    if filename is None or offset is None or array.flags.writeable:
        return None
    if not array.flags.c_contiguous:
        return None
    base = array
    while isinstance(getattr(base, "base", None), np.ndarray):
        base = base.base
    # A view that starts mid-buffer inherits the *parent's* offset
    # attribute, which would remap the wrong bytes — only hand out a
    # handle when this array starts exactly at its recorded offset.
    if isinstance(base, np.memmap) and base.ctypes.data != array.ctypes.data:
        return None
    return (str(filename), str(array.dtype), tuple(array.shape), int(offset))


def remap_from_handle(
    handle: tuple[str, str, tuple[int, ...], int],
) -> np.ndarray:
    """Re-open a :func:`mapped_pickle_handle` as a read-only memmap."""
    path, dtype, shape, offset = handle
    return np.memmap(
        path, dtype=np.dtype(dtype), mode="r", shape=tuple(shape),
        offset=int(offset),
    )


class FlatIndex:
    """Exact kNN over a dense matrix; O(n·d) per query."""

    def __init__(self, dim: int, metric: Metric = Metric.COSINE,
                 initial_capacity: int = 1024) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self._dim = dim
        self._metric = metric
        self._vectors = np.zeros((initial_capacity, dim), dtype=np.float32)
        self._count = 0
        #: When set (quantized collections do), pickling replaces an
        #: mmap-backed matrix with a (path, dtype, shape, offset) handle
        #: so shard-replica workers re-map the snapshot file instead of
        #: receiving a full float32 copy through the pipe. Off by
        #: default: an unquantized parent may legitimately outlive the
        #: snapshot file it mapped (the inode keeps the pages alive),
        #: and a re-mapping replica would not.
        self.pickle_by_handle = False

    def __len__(self) -> int:
        return self._count

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if self.pickle_by_handle:
            handle = mapped_pickle_handle(self._vectors[: self._count])
            if handle is not None:
                state["_vectors"] = None
                state["_vectors_handle"] = handle
        return state

    def __setstate__(self, state: dict) -> None:
        handle = state.pop("_vectors_handle", None)
        self.__dict__.update(state)
        if handle is not None:
            self._vectors = remap_from_handle(handle)

    @classmethod
    @array_contract(matrix="n,d")
    def from_matrix(
        cls, matrix: np.ndarray, metric: Metric = Metric.COSINE
    ) -> "FlatIndex":
        """Adopt ``matrix`` as storage without copying.

        ``matrix`` must be ``(n, dim)`` float32 and C-contiguous (other
        dtypes/layouts are converted, which copies). Adopted storage is
        held through a view frozen ``writeable=False`` — the caller's
        own handle is untouched, but nothing reached through this index
        can write into what may be an mmap-ed snapshot file. Searches
        never write, and the first :meth:`add` migrates to a writable
        copy, so read-only adoption costs upserts nothing they did not
        already pay (a full matrix forces the grow-copy regardless).
        """
        if matrix.ndim != 2 or matrix.shape[1] <= 0:
            raise ValueError(
                f"from_matrix expects an (n, dim) matrix, got shape "
                f"{matrix.shape}"
            )
        if matrix.dtype != np.float32 or not matrix.flags.c_contiguous:
            matrix = np.ascontiguousarray(matrix, dtype=np.float32)
        adopted = matrix.view()
        adopted.flags.writeable = False
        index = cls(matrix.shape[1], metric, initial_capacity=1)
        index._vectors = adopted
        index._count = matrix.shape[0]
        return index

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    def add(self, vector: np.ndarray) -> int:
        """Append a vector; returns its node id."""
        vector = np.asarray(vector, dtype=np.float32)
        if vector.shape != (self._dim,):
            raise ValueError(f"vector shape {vector.shape} != ({self._dim},)")
        if (
            self._count == self._vectors.shape[0]
            or not self._vectors.flags.writeable
        ):
            grown = np.zeros(
                (max(1024, self._count + 1, self._vectors.shape[0] * 2),
                 self._dim),
                dtype=np.float32,
            )
            grown[: self._count] = self._vectors[: self._count]
            self._vectors = grown
        self._vectors[self._count] = vector
        self._count += 1
        return self._count - 1

    def vector(self, node_id: int) -> np.ndarray:
        """The stored vector of ``node_id``."""
        if not 0 <= node_id < self._count:
            raise KeyError(f"node {node_id} not in index")
        return self._vectors[node_id]

    def matrix(self) -> np.ndarray:
        """All stored vectors as an ``(n, dim)`` view, in node-id order.

        A view into the live storage (valid until the next :meth:`add`
        reallocates); callers that keep it must copy.
        """
        return self._vectors[: self._count]

    @array_contract(query="d:float32", subset="s")
    def search(
        self,
        query: np.ndarray,
        k: int,
        predicate: Callable[[int], bool] | None = None,
        subset: np.ndarray | None = None,
    ) -> list[tuple[int, float]]:
        """Exact top-``k`` as ``(node_id, similarity)`` descending.

        ``subset`` restricts scoring to the given node ids (used for
        filtered searches where the filter has already been evaluated).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self._count == 0:
            return []
        query = np.asarray(query, dtype=np.float32)

        if subset is not None:
            ids = np.asarray(subset, dtype=np.int64)
            if ids.size == 0:
                return []
            sims = similarity(query, self._vectors[ids], self._metric)
        else:
            ids = np.arange(self._count, dtype=np.int64)
            sims = similarity(query, self._vectors[: self._count], self._metric)

        if predicate is not None:
            keep = np.fromiter(
                (predicate(int(i)) for i in ids), dtype=bool, count=ids.size
            )
            ids, sims = ids[keep], sims[keep]
            if ids.size == 0:
                return []

        top = min(k, ids.size)
        order = np.argpartition(-sims, top - 1)[:top]
        order = order[np.argsort(-sims[order])]
        return [(int(ids[i]), float(sims[i])) for i in order]

    @array_contract(queries="q,d:float32", subset="s")
    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        predicate: Callable[[int], bool] | None = None,
        subset: np.ndarray | None = None,
    ) -> list[list[tuple[int, float]]]:
        """Exact top-``k`` for each row of ``queries``.

        One ``(q, n)`` similarity matrix is computed for the whole batch,
        and ``predicate``/``subset`` are evaluated once and shared across
        all queries. Per-query results match :meth:`search` (same candidate
        sets, same ordering up to floating-point ties).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ValueError(
                f"queries shape {queries.shape} != (n, {self._dim})"
            )
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        if self._count == 0:
            return [[] for _ in range(n_queries)]

        if subset is not None:
            ids = np.asarray(subset, dtype=np.int64)
        else:
            ids = np.arange(self._count, dtype=np.int64)
        if predicate is not None:
            keep = np.fromiter(
                (predicate(int(i)) for i in ids), dtype=bool, count=ids.size
            )
            ids = ids[keep]
        if ids.size == 0:
            return [[] for _ in range(n_queries)]

        matrix = self._vectors[ids]
        if self._metric in (Metric.COSINE, Metric.DOT):
            sims = pairwise_similarity(queries, matrix, self._metric)
        else:
            # EUCLIDEAN: pairwise_similarity's a²+b²−2ab expansion cancels
            # catastrophically for near-duplicate vectors; score each row
            # with the same direct-difference kernel single-query search
            # uses so the equivalence contract holds for every metric.
            sims = np.stack(
                [similarity(q, matrix, self._metric) for q in queries]
            )

        top = min(k, ids.size)
        part = np.argpartition(-sims, top - 1, axis=1)[:, :top]
        part_sims = np.take_along_axis(sims, part, axis=1)
        order = np.argsort(-part_sims, axis=1)
        cols = np.take_along_axis(part, order, axis=1)
        ranked_sims = np.take_along_axis(part_sims, order, axis=1)
        return [
            [
                (int(ids[col]), float(sim))
                for col, sim in zip(cols[row], ranked_sims[row])
            ]
            for row in range(n_queries)
        ]
