"""Hierarchical Navigable Small World (HNSW) approximate kNN index.

A from-scratch implementation of Malkov & Yashunin (TPAMI 2020) — the
algorithm Qdrant uses internally and the paper relies on for its filtering
step ("we run an approximate kNN query using the built-in HNSW algorithm
of Qdrant").

Implemented faithfully:

* exponentially-decaying level assignment with ``mL = 1/ln(M)``;
* greedy descent from the entry point through upper layers (``ef = 1``);
* beam search (Algorithm 2) at the insertion/search layers;
* neighbour selection with the *heuristic* of Algorithm 4 (keeps a
  candidate only if it is closer to the query than to every already-kept
  neighbour — this preserves graph navigability in clustered data);
* bidirectional link insertion with degree capping (``M`` on upper
  layers, ``2M`` on layer 0).

Scores are similarities (dot product over unit vectors; higher = better);
internally the code works with similarity directly rather than distance.

Filtered search takes a node predicate: traversal is unfiltered (as in
Qdrant), but only predicate-passing nodes enter the result set, and the
beam is widened so enough valid results surface.

The layer-0 beam search is vectorized: adjacency is mirrored into a padded
int32 matrix so each visit scores a node's whole neighbour block with one
gather + dot, below-beam neighbours are dropped with a numpy mask before
any per-neighbour Python work, and the visited set is a stamped array
reused across calls (no per-search set allocation). ``search_batch``
answers many queries over this shared machinery; quality is pinned by the
recall regression tests.

Bulk construction: :meth:`HNSWIndex.from_vectors` builds the graph over a
whole matrix at once. It inserts in row order (so node ids equal row
indices, as an ``add`` loop would give), but pre-scores each insert's
similarities to every earlier node with one chunked matrix product —
inside the beam search, neighbour blocks are then scored by a row gather
instead of a fresh gather + dot per visit. Offline index builds (prepare
time, snapshot loads) use this path; ``add`` remains the incremental path
that keeps an already-built graph fresh under later upserts. Built
indexes pickle (the thread-local visited scratch is rebuilt on load), so
per-shard graphs can be constructed in worker processes and shipped back.

Persistence: :meth:`HNSWIndex.to_arrays` flattens the graph into a few
compact numpy arrays (levels, per-layer link counts, one concatenated
neighbour array) and :meth:`HNSWIndex.from_arrays` rebuilds an identical
index around an existing vector matrix — which may be a read-only
``np.memmap``, so a snapshot-loaded graph serves searches without ever
materializing its vectors in RAM. Snapshot schema v3 stores these arrays
instead of rebuilding graphs on load (see
:mod:`repro.vectordb.persistence`).
"""

from __future__ import annotations

import heapq
import random
import threading
from collections.abc import Callable

import numpy as np

from repro.vectordb.contracts import array_contract
from repro.vectordb.flat import mapped_pickle_handle, remap_from_handle


class HNSWIndex:
    """Approximate nearest-neighbour graph over unit vectors."""

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 100,
        seed: int = 7,
        initial_capacity: int = 1024,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if m < 2:
            raise ValueError(f"M must be at least 2, got {m}")
        if ef_construction < m:
            raise ValueError(
                f"ef_construction ({ef_construction}) must be >= M ({m})"
            )
        self._dim = dim
        self._m = m
        self._m0 = 2 * m
        self._ef_construction = ef_construction
        self._ml = 1.0 / np.log(m)
        self._rng = random.Random(seed)

        self._vectors = np.zeros((initial_capacity, dim), dtype=np.float32)
        self._count = 0
        #: per node: list of adjacency lists, one per layer (0 = base).
        self._links: list[list[list[int]]] = []
        self._entry_point: int = -1
        self._max_level: int = -1
        # Layer-0 adjacency mirrored into a padded int32 matrix so the beam
        # search gathers/scores a node's whole neighbour block with numpy
        # instead of per-neighbour Python list work (layer 0 is where nearly
        # all visits happen; upper layers are traversed with ef=1).
        self._adj0 = np.full((initial_capacity, self._m0), -1, dtype=np.int32)
        self._adj0_len = np.zeros(initial_capacity, dtype=np.int32)
        # Visited-set bookkeeping as a stamped array: each _search_layer call
        # takes a fresh stamp, so no per-call set allocation or rehashing.
        # Thread-local so concurrent searches stay as safe as the per-call
        # set they replaced (concurrent add() is unsupported, as before).
        self._visited_tls = threading.local()
        #: When set (quantized collections do), pickling replaces an
        #: mmap-backed vector matrix with its (path, dtype, shape, offset)
        #: handle — the graph shares storage with the collection's
        #: FlatIndex, and shipping both by value would put *two* float32
        #: copies of the corpus in every shard-replica pickle.
        self.pickle_by_handle = False

    def __len__(self) -> int:
        return self._count

    def __getstate__(self) -> dict:
        # The thread-local visited scratch holds per-thread numpy arrays
        # and cannot (and need not) cross process boundaries.
        state = self.__dict__.copy()
        del state["_visited_tls"]
        if state.get("pickle_by_handle"):
            handle = mapped_pickle_handle(self._vectors[: self._count])
            if handle is not None:
                state["_vectors"] = None
                state["_vectors_handle"] = handle
        return state

    def __setstate__(self, state: dict) -> None:
        handle = state.pop("_vectors_handle", None)
        self.__dict__.update(state)
        if handle is not None:
            self._vectors = remap_from_handle(handle)
        self._visited_tls = threading.local()
        # Older pickles predate the handle flag.
        self.__dict__.setdefault("pickle_by_handle", False)

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def m(self) -> int:
        """Max links per node on upper layers."""
        return self._m

    def vector(self, node_id: int) -> np.ndarray:
        """The stored vector of ``node_id``."""
        if not 0 <= node_id < self._count:
            raise KeyError(f"node {node_id} not in index")
        return self._vectors[node_id]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _grow(self) -> None:
        new_capacity = max(1024, self._vectors.shape[0] * 2)
        grown = np.zeros((new_capacity, self._dim), dtype=np.float32)
        grown[: self._count] = self._vectors[: self._count]
        self._vectors = grown
        adj0 = np.full((new_capacity, self._m0), -1, dtype=np.int32)
        adj0[: self._count] = self._adj0[: self._count]
        self._adj0 = adj0
        adj0_len = np.zeros(new_capacity, dtype=np.int32)
        adj0_len[: self._count] = self._adj0_len[: self._count]
        self._adj0_len = adj0_len

    def _sync_adj0(self, node: int) -> None:
        """Refresh the padded layer-0 row of ``node`` from its link list."""
        links = self._links[node][0]
        self._adj0[node, : len(links)] = links
        self._adj0_len[node] = len(links)

    def _take_visit_stamp(self) -> tuple[np.ndarray, int]:
        """This thread's stamp array (sized to capacity) and a fresh stamp."""
        tls = self._visited_tls
        stamp_array = getattr(tls, "stamp_array", None)
        if stamp_array is None or stamp_array.shape[0] < self._vectors.shape[0]:
            stamp_array = np.zeros(self._vectors.shape[0], dtype=np.int64)
            tls.stamp_array = stamp_array
            tls.counter = 0
        tls.counter += 1
        return stamp_array, tls.counter

    def _draw_level(self) -> int:
        return int(-np.log(max(self._rng.random(), 1e-12)) * self._ml)

    def _sims(self, query: np.ndarray, nodes: list[int]) -> np.ndarray:
        return self._vectors[nodes] @ query

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[tuple[float, int]],
        ef: int,
        layer: int,
    ) -> list[tuple[float, int]]:
        """Beam search (Algorithm 2). Returns up to ``ef`` (sim, node) pairs.

        ``entry_points`` are (similarity, node) seeds; result is unsorted.

        The layer-0 hot path gathers each visited node's neighbour block
        from the padded adjacency matrix, masks already-seen nodes with the
        stamped visited array, and scores the block with a single dot — no
        per-neighbour Python membership tests or list-to-array conversions.
        """
        visit_stamp, stamp = self._take_visit_stamp()
        for _, node in entry_points:
            visit_stamp[node] = stamp
        # candidates: max-heap by similarity (store negated); results: min-heap.
        candidates = [(-sim, node) for sim, node in entry_points]
        heapq.heapify(candidates)
        results = list(entry_points)
        heapq.heapify(results)
        base_layer = layer == 0

        while candidates:
            neg_sim, node = heapq.heappop(candidates)
            if -neg_sim < results[0][0] and len(results) >= ef:
                break
            if base_layer:
                # Score the node's whole neighbour block with one gather +
                # dot, then drop everything at or below the entry ``worst``
                # in numpy before any per-neighbour Python work. ``worst``
                # only rises during a search, so a neighbour rejected here
                # is rejected on every later encounter too — which is why
                # only *accepted* neighbours need a visited stamp, and why
                # the results are identical to the per-neighbour original.
                block = self._adj0[node, : self._adj0_len[node]]
                if block.size == 0:
                    continue
                sims = self._vectors[block] @ query
                worst = results[0][0]
                if len(results) >= ef:
                    keep = sims > worst
                    if not keep.any():
                        continue
                    if not keep.all():
                        block = block[keep]
                        sims = sims[keep]
                neighbors = block.tolist()
                for sim, neighbor in zip(sims.tolist(), neighbors):
                    if visit_stamp[neighbor] == stamp:
                        continue
                    if len(results) < ef or sim > worst:
                        visit_stamp[neighbor] = stamp
                        heapq.heappush(candidates, (-sim, neighbor))
                        heapq.heappush(results, (sim, neighbor))
                        if len(results) > ef:
                            heapq.heappop(results)
                        worst = results[0][0]
                continue
            neighbors = [
                n for n in self._links[node][layer]
                if visit_stamp[n] != stamp
            ]
            if not neighbors:
                continue
            visit_stamp[neighbors] = stamp
            sims = self._sims(query, neighbors)
            worst = results[0][0]
            for sim, neighbor in zip(sims.tolist(), neighbors):
                if len(results) < ef or sim > worst:
                    heapq.heappush(candidates, (-sim, neighbor))
                    heapq.heappush(results, (sim, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = results[0][0]
        return results

    def _select_neighbors_heuristic(
        self, query: np.ndarray, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Algorithm 4: diversity-preserving neighbour selection.

        A candidate is kept only if it is closer to the query than to every
        already-kept neighbour. Selecting a candidate can only ever *kill*
        later candidates, so instead of re-scoring each candidate against
        the growing kept set, the candidate-to-candidate similarities are
        computed as one matrix product and an alive-mask column update per
        selection replaces the per-candidate dot + ``all`` of the naive
        loop — same selections, ~one vector op per kept neighbour.
        """
        ordered = sorted(candidates, key=lambda pair: -pair[0])
        n_cand = len(ordered)
        if n_cand <= 1 or m <= 1:
            return [node for _, node in ordered[:m]]
        nodes = [node for _, node in ordered]
        sims_to_query = np.fromiter(
            (sim for sim, _ in ordered), dtype=np.float32, count=n_cand
        )
        cand_vectors = self._vectors[nodes]
        cross = cand_vectors @ cand_vectors.T
        alive = np.ones(n_cand, dtype=bool)
        selected: list[int] = []
        for i in range(n_cand):
            if not alive[i]:
                continue
            selected.append(nodes[i])
            if len(selected) >= m:
                break
            # Kill every candidate at least as close to `i` as to the query.
            alive &= cross[i] < sims_to_query
        # Pad with nearest skipped candidates if the heuristic was too picky.
        if len(selected) < m:
            chosen = set(selected)
            for node in nodes:
                if len(selected) >= m:
                    break
                if node not in chosen:
                    selected.append(node)
                    chosen.add(node)
        return selected

    def add(self, vector: np.ndarray) -> int:
        """Insert ``vector``; returns the new node id (insertion order)."""
        vector = np.asarray(vector, dtype=np.float32)
        if vector.shape != (self._dim,):
            raise ValueError(
                f"vector shape {vector.shape} != ({self._dim},)"
            )
        if (
            self._count == self._vectors.shape[0]
            or not self._vectors.flags.writeable
        ):
            # Full *or* adopted read-only (an mmap-ed snapshot matrix):
            # grow into a fresh writable array before the first write.
            self._grow()
        node = self._count
        self._vectors[node] = vector
        self._count += 1

        level = self._draw_level()
        self._links.append([[] for _ in range(level + 1)])
        self._adj0_len[node] = 0

        if self._entry_point < 0:
            self._entry_point = node
            self._max_level = level
            return node

        query = vector
        ep_sim = float(self._vectors[self._entry_point] @ query)
        entry: list[tuple[float, int]] = [(ep_sim, self._entry_point)]

        # Greedy descent through layers above the new node's level.
        for layer in range(self._max_level, level, -1):
            entry = self._search_layer(query, entry, ef=1, layer=layer)

        # Insert with beam search on each layer from min(level, max) down.
        for layer in range(min(level, self._max_level), -1, -1):
            found = self._search_layer(
                query, entry, ef=self._ef_construction, layer=layer
            )
            self._link_new_node(node, layer, found)
            entry = found

        if level > self._max_level:
            self._max_level = level
            self._entry_point = node
        return node

    def _link_new_node(
        self, node: int, layer: int, candidates: list[tuple[float, int]]
    ) -> None:
        """Wire ``node`` into ``layer``: heuristic selection, bidirectional
        links, degree-cap re-pruning (the second half of Algorithm 1)."""
        query = self._vectors[node]
        m_layer = self._m0 if layer == 0 else self._m
        neighbors = self._select_neighbors_heuristic(
            query, candidates, self._m
        )
        self._links[node][layer] = list(neighbors)
        if layer == 0:
            self._sync_adj0(node)
        for neighbor in neighbors:
            links = self._links[neighbor][layer]
            links.append(node)
            if len(links) > m_layer:
                nvec = self._vectors[neighbor]
                sims = self._vectors[links] @ nvec
                cand = list(zip(sims.tolist(), links))
                self._links[neighbor][layer] = (
                    self._select_neighbors_heuristic(nvec, cand, m_layer)
                )
            if layer == 0:
                self._sync_adj0(neighbor)

    # ------------------------------------------------------------------
    # bulk construction
    # ------------------------------------------------------------------

    #: Row chunk for :meth:`from_vectors` pre-scoring; bounds the scratch
    #: similarity block at ``BULK_CHUNK × n`` float32.
    BULK_CHUNK = 512

    #: Above this many rows, :meth:`from_vectors` falls back to the
    #: incremental insert loop — the pre-scored build's one-off similarity
    #: products are O(n²·dim), which stops paying past tens of thousands
    #: of points per graph (shards keep per-graph n well under this).
    PRESCORE_THRESHOLD = 32768

    @classmethod
    @array_contract(vectors="n,d")
    def from_vectors(
        cls,
        vectors: np.ndarray,
        m: int = 16,
        ef_construction: int = 100,
        seed: int = 7,
        dim: int | None = None,
    ) -> "HNSWIndex":
        """Build an index over a whole ``(n, dim)`` matrix at once.

        The offline-build fast path used at prepare time and by
        ``Collection.build_hnsw``. Node ids equal row indices, exactly as
        an :meth:`add` loop would assign them, and the level draws consume
        the seeded RNG in the same order. The difference is candidate
        generation: each insert's similarities to every earlier node are
        pre-scored with one chunked matrix product, and the per-layer
        candidate set is the *exact* top-``ef_construction`` of the nodes
        on that layer — no beam traversal of the half-built graph.
        Neighbour selection (Algorithm 4), bidirectional linking, and
        degree-cap re-pruning are shared with the incremental path, so the
        graph obeys the same invariants; candidate lists here are exact
        where the beam's are approximate, so navigability is as good or
        better (pinned by the recall tests). Past
        :attr:`PRESCORE_THRESHOLD` rows the quadratic pre-scoring stops
        paying and construction falls back to incremental inserts.

        Returns the built index (node ids = row indices). Raises
        :class:`ValueError` when ``vectors`` is not two-dimensional or
        an explicit ``dim`` disagrees with the matrix's second axis.
        """
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ValueError(
                f"from_vectors expects an (n, dim) matrix, got shape "
                f"{vectors.shape}"
            )
        n, mat_dim = vectors.shape
        if dim is None:
            dim = mat_dim
        elif n and dim != mat_dim:
            raise ValueError(f"dim {dim} != matrix dim {mat_dim}")
        index = cls(
            dim, m=m, ef_construction=ef_construction, seed=seed,
            initial_capacity=max(1024, n),
        )
        if n > cls.PRESCORE_THRESHOLD:
            for row in vectors:
                index.add(row)
        elif n:
            index._bulk_build(vectors)
        return index

    # arraylint: cow-seam bulk build writes into storage __init__ just
    # allocated for this index; nothing mmap-backed is adopted yet
    def _bulk_build(self, vectors: np.ndarray) -> None:
        """Pre-scored construction over ``vectors`` (must be empty self)."""
        n = vectors.shape[0]
        ef = self._ef_construction
        #: members[L] = node ids present on layer L, in insertion order.
        members: list[list[int]] = []
        for start in range(0, n, self.BULK_CHUNK):
            stop = min(start + self.BULK_CHUNK, n)
            # Rows [start, stop) against all nodes < stop; row i only ever
            # reads columns < i, so one product covers the whole chunk.
            block = vectors[start:stop] @ vectors[:stop].T
            for node in range(start, stop):
                self._vectors[node] = vectors[node]
                self._count += 1
                level = self._draw_level()
                self._links.append([[] for _ in range(level + 1)])
                self._adj0_len[node] = 0
                while len(members) <= level:
                    members.append([])
                if self._entry_point < 0:
                    self._entry_point = node
                    self._max_level = level
                else:
                    srow = block[node - start]
                    for layer in range(min(level, self._max_level), -1, -1):
                        if layer == 0:
                            pool_ids = np.arange(node, dtype=np.int64)
                            pool_sims = srow[:node]
                        else:
                            pool = members[layer]
                            if not pool:
                                continue
                            pool_ids = np.asarray(pool, dtype=np.int64)
                            pool_sims = srow[pool_ids]
                        if pool_sims.size > ef:
                            top = np.argpartition(-pool_sims, ef - 1)[:ef]
                            pool_ids = pool_ids[top]
                            pool_sims = pool_sims[top]
                        found = list(
                            zip(pool_sims.tolist(), pool_ids.tolist())
                        )
                        self._link_new_node(node, layer, found)
                    if level > self._max_level:
                        self._max_level = level
                        self._entry_point = node
                for layer in range(level + 1):
                    members[layer].append(node)

    # ------------------------------------------------------------------
    # serialization (snapshot schema v3)
    # ------------------------------------------------------------------

    #: On-disk graph array format; bump when the array layout changes.
    GRAPH_FORMAT_VERSION = 1

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten the graph into compact numpy arrays (no vectors).

        The layout is three arrays plus a header:

        * ``levels``    — int32 ``(n,)``: top layer of each node;
        * ``counts``    — int32: link-list lengths, node-major then
          layer-major (node 0 layer 0, node 0 layer 1, …, node 1 layer 0);
        * ``neighbors`` — int32: every adjacency list concatenated in the
          same order;
        * ``header``    — int64 ``[format, n, dim, m, ef_construction,
          entry_point, max_level]``.

        Vectors are deliberately excluded: the graph is rebuilt by
        :meth:`from_arrays` around the collection's own (possibly
        memory-mapped) matrix, so they are never stored twice.
        """
        n = self._count
        levels = np.fromiter(
            (len(self._links[i]) - 1 for i in range(n)),
            dtype=np.int32, count=n,
        )
        counts = np.fromiter(
            (len(layer) for node in self._links for layer in node),
            dtype=np.int32,
        )
        neighbors = np.fromiter(
            (nb for node in self._links for layer in node for nb in layer),
            dtype=np.int32,
        )
        header = np.array(
            [
                self.GRAPH_FORMAT_VERSION, n, self._dim, self._m,
                self._ef_construction, self._entry_point, self._max_level,
            ],
            dtype=np.int64,
        )
        return {
            "header": header, "levels": levels,
            "counts": counts, "neighbors": neighbors,
        }

    @classmethod
    def from_arrays(
        cls,
        vectors: np.ndarray,
        arrays: dict[str, np.ndarray],
        seed: int = 7,
    ) -> "HNSWIndex":
        """Rebuild an index from :meth:`to_arrays` output + its vectors.

        ``vectors`` is adopted as the index's storage without copying —
        a read-only ``np.memmap`` works (searches only read it; a later
        :meth:`add` grows into a fresh writable array). The arrays are
        validated structurally (sizes, ranges, degree caps) so a
        truncated or corrupted graph file raises :class:`ValueError`
        instead of producing an index that walks out of bounds; callers
        degrade to a rebuild. ``seed`` only feeds the RNG for *future*
        inserts — the restored graph itself is byte-for-byte the one
        serialized.
        """
        header = np.asarray(arrays["header"], dtype=np.int64)
        if header.shape != (7,):
            raise ValueError(f"graph header shape {header.shape} != (7,)")
        fmt, n, dim, m, ef_construction, entry, max_level = (
            int(v) for v in header
        )
        if fmt != cls.GRAPH_FORMAT_VERSION:
            raise ValueError(
                f"graph format {fmt} != {cls.GRAPH_FORMAT_VERSION}"
            )
        if vectors.ndim != 2 or vectors.shape != (n, dim):
            raise ValueError(
                f"vector matrix shape {vectors.shape} != ({n}, {dim})"
            )
        if vectors.dtype != np.float32:
            vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        # Adopt through a view frozen writeable=False: the caller's handle
        # (often the collection's live storage, or a read-only mmap) stays
        # as it was, but no write can reach it through this index — add()
        # grows into a fresh writable array before its first write.
        vectors = vectors.view()
        vectors.flags.writeable = False
        levels = np.asarray(arrays["levels"], dtype=np.int64)
        counts = np.asarray(arrays["counts"], dtype=np.int64)
        neighbors = np.asarray(arrays["neighbors"], dtype=np.int32)
        if levels.shape != (n,) or (n and levels.min() < 0):
            raise ValueError("graph levels array is malformed")
        if counts.shape != (int((levels + 1).sum()),):
            raise ValueError("graph counts array disagrees with levels")
        if counts.size and counts.min() < 0:
            raise ValueError("negative link count in graph arrays")
        if neighbors.shape != (int(counts.sum()),):
            raise ValueError("graph neighbors array disagrees with counts")
        if neighbors.size and (
            neighbors.min() < 0 or neighbors.max() >= n
        ):
            raise ValueError("graph neighbor id out of range")
        if n:
            if not 0 <= entry < n:
                raise ValueError(f"entry point {entry} out of range")
            if max_level != int(levels.max()):
                raise ValueError("max level disagrees with levels array")
            if int(levels[entry]) != max_level:
                raise ValueError(
                    f"entry point {entry} lives on layer {int(levels[entry])}"
                    f", not the top layer {max_level}"
                )
        # Every layer-L adjacency list may only reference nodes that
        # exist on layer L — otherwise an upper-layer traversal indexes
        # past a node's link lists and crashes mid-search. Reconstruct
        # each count entry's layer (node-major, 0..levels[i] per node)
        # without a Python loop, then check the referenced levels.
        lengths = levels + 1
        starts = np.cumsum(lengths) - lengths
        layer_of_list = np.arange(
            int(lengths.sum()), dtype=np.int64
        ) - np.repeat(starts, lengths)
        if np.any(levels[neighbors] < np.repeat(layer_of_list, counts)):
            raise ValueError(
                "graph adjacency references a node above its top layer"
            )
        index = cls(dim, m=m, ef_construction=ef_construction, seed=seed,
                    initial_capacity=1)
        index._vectors = vectors
        index._count = n
        index._adj0 = np.full((max(1, n), index._m0), -1, dtype=np.int32)
        index._adj0_len = np.zeros(max(1, n), dtype=np.int32)
        index._entry_point = entry if n else -1
        index._max_level = max_level if n else -1
        bounds = np.cumsum(counts)
        cursor = 0
        for node in range(n):
            node_links: list[list[int]] = []
            for _ in range(int(levels[node]) + 1):
                lo = bounds[cursor - 1] if cursor else 0
                node_links.append(neighbors[lo:bounds[cursor]].tolist())
                cursor += 1
            index._links.append(node_links)
            if len(node_links[0]) > index._m0:
                raise ValueError(
                    f"node {node} exceeds the layer-0 degree cap"
                )
            index._sync_adj0(node)
        return index

    def traversal_view(self, matrix) -> "HNSWIndex":
        """A shallow clone of this index that scores against ``matrix``.

        The graph (links, entry point, levels) is shared; only the
        storage the beam search dots against is swapped. This is how the
        sq8 tier reuses the float32-built graph: the collection passes
        the uint8 code matrix (or an energy-adjusted wrapper) plus a
        rewritten query so ``matrix[block] @ query`` ranks nodes in the
        quantized score space. ``matrix`` needs only ``.shape`` and
        block indexing whose result supports ``@`` — it is never
        written. The clone also shares the thread-local visited scratch
        (safe: the stamp counter is per-thread monotonic, and the stamp
        array resizes to the larger of the two matrices' row counts).
        Views are cheap to make and should be recreated per search —
        inserts into the live index do not propagate.
        """
        if matrix.shape[0] < self._count:
            raise ValueError(
                f"traversal matrix has {matrix.shape[0]} rows but the "
                f"graph has {self._count} nodes"
            )
        if isinstance(matrix, np.ndarray) and matrix.flags.writeable:
            matrix = matrix.view()
            matrix.flags.writeable = False
        view = object.__new__(type(self))
        view.__dict__.update(self.__dict__)
        view._vectors = matrix
        return view

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    @array_contract(query="d:float32")
    def search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        predicate: Callable[[int], bool] | None = None,
    ) -> list[tuple[int, float]]:
        """Approximate top-``k``: returns ``(node_id, similarity)`` descending.

        ``ef`` controls the layer-0 beam width (default ``max(64, k)``).
        With a ``predicate``, traversal is unfiltered but only passing nodes
        are returned; the beam is widened to compensate, as filtered HNSW
        implementations do.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self._count == 0:
            return []
        query = np.asarray(query, dtype=np.float32)
        if query.shape != (self._dim,):
            raise ValueError(f"query shape {query.shape} != ({self._dim},)")

        ef_search = max(ef if ef is not None else 64, k)
        if predicate is not None:
            ef_search = max(ef_search, 4 * k)

        ep_sim = float(self._vectors[self._entry_point] @ query)
        entry: list[tuple[float, int]] = [(ep_sim, self._entry_point)]
        for layer in range(self._max_level, 0, -1):
            entry = self._search_layer(query, entry, ef=1, layer=layer)
        found = self._search_layer(query, entry, ef=ef_search, layer=0)

        hits = sorted(found, key=lambda pair: -pair[0])
        out: list[tuple[int, float]] = []
        for sim, node in hits:
            if predicate is not None and not predicate(node):
                continue
            out.append((node, float(sim)))
            if len(out) == k:
                break
        return out

    @array_contract(queries="q,d:float32")
    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef: int | None = None,
        predicate: Callable[[int], bool] | None = None,
    ) -> list[list[tuple[int, float]]]:
        """Run :meth:`search` for each row of ``queries``.

        Graph traversal is inherently per-query (each query walks its own
        path), so batching HNSW means amortizing the *inner* work: the
        vectorized neighbour-block scoring and stamped visited array are
        shared machinery that every query in the batch reuses without
        re-allocation. Results are identical to per-query :meth:`search`.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ValueError(
                f"queries shape {queries.shape} != (n, {self._dim})"
            )
        return [
            self.search(query, k, ef=ef, predicate=predicate)
            for query in queries
        ]

    # ------------------------------------------------------------------
    # introspection (used by tests and ablation benches)
    # ------------------------------------------------------------------

    def level_of(self, node_id: int) -> int:
        """Top layer of ``node_id``."""
        return len(self._links[node_id]) - 1

    def neighbors_of(self, node_id: int, layer: int = 0) -> list[int]:
        """Adjacency list of a node at ``layer`` (copy)."""
        return list(self._links[node_id][layer])

    def graph_stats(self) -> dict[str, float]:
        """Degree and layer statistics for diagnostics."""
        if self._count == 0:
            return {"nodes": 0, "max_level": -1, "avg_degree_l0": 0.0}
        degrees = [len(self._links[n][0]) for n in range(self._count)]
        return {
            "nodes": self._count,
            "max_level": self._max_level,
            "avg_degree_l0": sum(degrees) / len(degrees),
        }
