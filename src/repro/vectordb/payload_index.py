"""Payload secondary indexes (Qdrant's "payload index" feature).

A :class:`PayloadIndexRegistry` maintains hash indexes over chosen payload
fields so that equality/membership filters resolve to candidate id sets
without scanning every payload — the optimization real vector databases
apply before falling back to per-point filter evaluation.

Only exact-value fields are indexed (city, is_open, business_id, ...);
range and geo predicates still evaluate per point, but over the reduced
candidate set when combined under ``And``.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.vectordb.filters import And, FieldIn, FieldMatch, Filter


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class PayloadIndexRegistry:
    """Hash indexes over payload fields, maintained incrementally."""

    def __init__(self) -> None:
        self._fields: set[str] = set()
        self._indexes: dict[str, dict[Any, set[int]]] = {}

    def create_index(self, field: str) -> None:
        """Start indexing ``field`` (idempotent; backfilled by the caller)."""
        self._fields.add(field)
        self._indexes.setdefault(field, {})

    @property
    def indexed_fields(self) -> frozenset[str]:
        """Fields currently indexed."""
        return frozenset(self._fields)

    def index_point(self, node: int, payload: Mapping[str, Any]) -> None:
        """Add one point's indexed fields to the registry."""
        for field in self._fields:
            value = payload.get(field)
            if value is None or not _hashable(value):
                continue
            self._indexes[field].setdefault(value, set()).add(node)

    def reindex_point(
        self,
        node: int,
        old_payload: Mapping[str, Any],
        new_payload: Mapping[str, Any],
    ) -> None:
        """Update the registry after a payload change."""
        for field in self._fields:
            old_value = old_payload.get(field)
            if old_value is not None and _hashable(old_value):
                bucket = self._indexes[field].get(old_value)
                if bucket is not None:
                    bucket.discard(node)
        self.index_point(node, new_payload)

    def candidates_for(self, flt: Filter) -> set[int] | None:
        """Node-id candidate set implied by ``flt``, or None if unknown.

        Returns a *superset* of the true matches (callers still verify the
        full filter per point). ``None`` means the filter gives no indexed
        constraint and the caller must scan.
        """
        if isinstance(flt, FieldMatch) and flt.key in self._fields:
            if not _hashable(flt.value):
                return None
            return set(self._indexes[flt.key].get(flt.value, ()))
        if isinstance(flt, FieldIn) and flt.key in self._fields:
            result: set[int] = set()
            for value in flt.values:
                if _hashable(value):
                    result |= self._indexes[flt.key].get(value, set())
            return result
        if isinstance(flt, And):
            best: set[int] | None = None
            for sub in flt.filters:
                candidates = self.candidates_for(sub)
                if candidates is None:
                    continue
                if best is None or len(candidates) < len(best):
                    best = candidates
            return best
        return None
