"""Payload secondary indexes (Qdrant's "payload index" feature).

A :class:`PayloadIndexRegistry` maintains secondary indexes over chosen
payload fields so that filters resolve to candidate id sets without
scanning every payload — the optimization real vector databases apply
before falling back to per-point filter evaluation.

Two index shapes are kept per field:

* a hash index (value → node ids) answering equality/membership filters
  (:class:`~repro.vectordb.filters.FieldMatch`,
  :class:`~repro.vectordb.filters.FieldIn`);
* a sorted numeric column answering range filters
  (:class:`~repro.vectordb.filters.FieldRange`) with two
  ``np.searchsorted`` bisections over a cached ``(values, nodes)`` array
  pair instead of a per-id Python comparison loop. The sorted arrays are
  rebuilt lazily after writes (write-heavy phases pay nothing; the first
  range query after a batch of upserts pays one ``argsort``).

Geo predicates still evaluate per point, but over the reduced candidate
set when combined under ``And``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.vectordb.filters import And, FieldIn, FieldMatch, FieldRange, Filter


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _numeric(value: Any) -> bool:
    """Values :class:`FieldRange` compares (bools are excluded there)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class PayloadIndexRegistry:
    """Hash + sorted-numeric indexes over payload fields."""

    def __init__(self) -> None:
        self._fields: set[str] = set()
        self._indexes: dict[str, dict[Any, set[int]]] = {}
        #: per field: node id -> numeric value (the range index source).
        self._numeric: dict[str, dict[int, float]] = {}
        #: per field: nodes whose value the sorted column cannot place —
        #: NaN (``FieldRange.matches`` treats it as in-range: both
        #: comparisons are False) or ints too large for float. These stay
        #: in every range candidate set (a superset is fine; callers
        #: re-verify with ``matches``) — ``searchsorted`` would otherwise
        #: drop them from a bounded slice.
        self._unsortable: dict[str, set[int]] = {}
        #: per field: cached (sorted values, node ids) pair, or None when
        #: writes have invalidated it.
        self._sorted: dict[str, tuple[np.ndarray, np.ndarray] | None] = {}

    def create_index(self, field: str) -> None:
        """Start indexing ``field`` (idempotent; backfilled by the caller)."""
        self._fields.add(field)
        self._indexes.setdefault(field, {})
        self._numeric.setdefault(field, {})
        self._unsortable.setdefault(field, set())
        self._sorted.setdefault(field, None)

    @property
    def indexed_fields(self) -> frozenset[str]:
        """Fields currently indexed."""
        return frozenset(self._fields)

    def index_point(self, node: int, payload: Mapping[str, Any]) -> None:
        """Add one point's indexed fields to the registry."""
        for field in self._fields:
            value = payload.get(field)
            if value is None:
                continue
            if _hashable(value):
                self._indexes[field].setdefault(value, set()).add(node)
            if _numeric(value):
                try:
                    as_float = float(value)
                except OverflowError:
                    as_float = math.nan  # int too big: unsortable bucket
                if math.isnan(as_float):
                    self._unsortable[field].add(node)
                else:
                    self._numeric[field][node] = as_float
                self._sorted[field] = None

    def reindex_point(
        self,
        node: int,
        old_payload: Mapping[str, Any],
        new_payload: Mapping[str, Any],
    ) -> None:
        """Update the registry after a payload change."""
        for field in self._fields:
            old_value = old_payload.get(field)
            if old_value is not None and _hashable(old_value):
                bucket = self._indexes[field].get(old_value)
                if bucket is not None:
                    bucket.discard(node)
            if old_value is not None and _numeric(old_value):
                self._numeric[field].pop(node, None)
                self._unsortable[field].discard(node)
                self._sorted[field] = None
        self.index_point(node, new_payload)

    def _sorted_column(
        self, field: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """The field's ``(sorted values, node ids)`` pair, (re)built lazily."""
        cached = self._sorted.get(field)
        if cached is None:
            column = self._numeric[field]
            nodes = np.fromiter(column.keys(), dtype=np.int64,
                                count=len(column))
            values = np.fromiter(column.values(), dtype=np.float64,
                                 count=len(column))
            order = np.argsort(values, kind="stable")
            cached = (values[order], nodes[order])
            self._sorted[field] = cached
        return cached

    def _range_candidates(self, flt: FieldRange) -> set[int] | None:
        """Candidates for a range filter: two bisections over the sorted
        column (plus any NaN-valued nodes, which ``matches`` accepts).

        Bounds the bisection cannot place fall back to the scan (None):
        NaN (``matches`` treats it as unbounded — both comparisons are
        False) and ints too large for float. Finite bounds are compared
        as floats, which is safe because float conversion is monotonic:
        a value ``matches`` accepts can collapse onto the bound but
        never cross it, so the slice stays a superset.
        """
        try:
            gte = None if flt.gte is None else float(flt.gte)
            lte = None if flt.lte is None else float(flt.lte)
        except OverflowError:
            return None
        if (gte is not None and math.isnan(gte)) or (
            lte is not None and math.isnan(lte)
        ):
            return None
        values, nodes = self._sorted_column(flt.key)
        lo = (
            0 if gte is None
            else int(np.searchsorted(values, gte, side="left"))
        )
        hi = (
            values.size if lte is None
            else int(np.searchsorted(values, lte, side="right"))
        )
        result = set(nodes[lo:hi].tolist())
        result |= self._unsortable[flt.key]
        return result

    def candidates_for(self, flt: Filter) -> set[int] | None:
        """Node-id candidate set implied by ``flt``, or None if unknown.

        Returns a *superset* of the true matches (callers still verify the
        full filter per point). ``None`` means the filter gives no indexed
        constraint and the caller must scan.
        """
        if isinstance(flt, FieldMatch) and flt.key in self._fields:
            if not _hashable(flt.value):
                return None
            return set(self._indexes[flt.key].get(flt.value, ()))
        if isinstance(flt, FieldIn) and flt.key in self._fields:
            result: set[int] = set()
            for value in flt.values:
                if _hashable(value):
                    result |= self._indexes[flt.key].get(value, set())
            return result
        if isinstance(flt, FieldRange) and flt.key in self._fields:
            return self._range_candidates(flt)
        if isinstance(flt, And):
            best: set[int] | None = None
            for sub in flt.filters:
                candidates = self.candidates_for(sub)
                if candidates is None:
                    continue
                if best is None or len(candidates) < len(best):
                    best = candidates
            return best
        return None
