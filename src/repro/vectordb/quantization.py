"""Int8 scalar quantization — the ``sq8`` storage tier.

A collection created with ``quantize="sq8"`` keeps, next to its float32
matrix, a per-dimension affine codebook and a uint8 code matrix:

    code  = clip(rint((x - mins) / steps), 0, 255)
    x̂     = code * steps + mins        (steps = (max - min) / 255)

HNSW traversal and candidate scoring read the codes (1 byte/dim, 4×
smaller than float32) through the matmul kernels in
:mod:`repro.vectordb.distance`; the final top-``rescore_factor·k``
candidates are rescored *exactly* against the float32 matrix, so the
tier trades a little traversal fidelity — never result fidelity — for
memory.

Numerical contract: all encode/decode arithmetic runs in float64. Two
reasons, both load-bearing for the property suite:

* float32 intermediates overflow for extreme-but-finite inputs
  (``max - min`` exceeds float32 range when columns span ±3e38);
* re-encoding a dequantized matrix reproduces the codes *exactly* in
  float64 (``c·s`` and ``m`` are float32 values, exact in float64, and
  rint lands back on ``c``), which the idempotence test pins. The same
  claim is false for float32 round-trips when ``|mins| ≫ 255·steps``.

Concurrency contract: :class:`SQ8Store` mirrors the collection's
lock-free read path. All tier state a reader needs — codebook, code
buffer, row count, cached energies — lives in one immutable
:class:`_TierState` published by a single attribute store; readers grab
it once and never observe a codebook/codes mismatch across a refit.
Appends and refits serialize on an internal lock.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.vectordb.contracts import array_contract
from repro.vectordb.distance import Metric, sq8_energies, sq8_similarity
from repro.vectordb.flat import mapped_pickle_handle, remap_from_handle

#: Supported values for the ``quantize=`` collection option.
QUANTIZE_KINDS = ("sq8",)

#: Largest code value: codes span 0..255 (uint8).
_LEVELS = 255.0


def validate_quantize(quantize: str | None) -> str | None:
    """Normalize/validate a ``quantize=`` option (None passes through)."""
    if quantize is None:
        return None
    kind = str(quantize)
    if kind not in QUANTIZE_KINDS:
        raise ValueError(
            f"unknown quantize kind {quantize!r}; expected one of "
            f"{QUANTIZE_KINDS} or None"
        )
    return kind


class SQ8Codebook:
    """Per-dimension affine codebook: ``x̂ = code · steps + mins``.

    ``mins``/``steps`` are float32 — they are the canonical on-disk
    representation — but all arithmetic promotes them to float64 (see
    module docstring). Constant columns fit to ``step == 0``; their
    codes are 0 and decode exactly to the column value.
    """

    __slots__ = ("mins", "steps", "_mins64", "_steps64", "_inv_steps64")

    def __init__(self, mins: np.ndarray, steps: np.ndarray) -> None:
        mins = np.asarray(mins, dtype=np.float32)
        steps = np.asarray(steps, dtype=np.float32)
        if mins.ndim != 1 or mins.shape != steps.shape:
            raise ValueError(
                f"codebook arrays must be matching 1-d vectors, got "
                f"mins {mins.shape} / steps {steps.shape}"
            )
        if mins.shape[0] == 0:
            raise ValueError("codebook dimension must be positive")
        if not np.all(np.isfinite(mins)) or not np.all(np.isfinite(steps)):
            raise ValueError("codebook entries must be finite")
        if np.any(steps < 0.0):
            raise ValueError("codebook steps must be non-negative")
        self.mins = mins
        self.steps = steps
        self._mins64 = mins.astype(np.float64, copy=False)
        self._steps64 = steps.astype(np.float64, copy=False)
        self._inv_steps64 = np.divide(
            1.0,
            self._steps64,
            out=np.zeros(self._steps64.shape, dtype=np.float64),
            where=self._steps64 > 0.0,
        )

    @property
    def dim(self) -> int:
        return self.mins.shape[0]

    @classmethod
    def fit(cls, matrix: np.ndarray) -> "SQ8Codebook":
        """Fit per-dimension min/max bounds over the rows of ``matrix``."""
        m64 = np.asarray(matrix, dtype=np.float64)
        if m64.ndim != 2 or m64.shape[0] == 0:
            raise ValueError(
                f"codebook fit needs a non-empty 2-d matrix, got {m64.shape}"
            )
        mins64 = m64.min(axis=0)
        steps64 = (m64.max(axis=0) - mins64) / _LEVELS
        # Cast to the canonical float32 representation here: encode and
        # decode must agree on the exact same (rounded) bounds.
        return cls(
            mins64.astype(np.float32, copy=False),
            steps64.astype(np.float32, copy=False),
        )

    @array_contract(returns="n,d:uint8")
    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """Quantize float rows to uint8 codes (float64 internal math)."""
        shifted = (
            np.asarray(matrix, dtype=np.float64) - self._mins64
        ) * self._inv_steps64
        np.rint(shifted, out=shifted)
        np.clip(shifted, 0.0, _LEVELS, out=shifted)
        return shifted.astype(np.uint8, copy=False)

    def decode(self, codes: np.ndarray, dtype=np.float32) -> np.ndarray:
        """Dequantize codes (float64 internal math, ``dtype`` output)."""
        out = np.asarray(codes, dtype=np.float64) * self._steps64
        out += self._mins64
        return out.astype(dtype, copy=False)

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {"mins": self.mins, "steps": self.steps}


class _EnergyAdjustedRows:
    """A row block of :class:`EnergyAdjustedCodes`: scores as
    ``codes @ w - energies`` (float32)."""

    __slots__ = ("_codes", "_energies")

    def __init__(self, codes: np.ndarray, energies: np.ndarray) -> None:
        self._codes = codes
        self._energies = energies

    def __matmul__(self, w: np.ndarray):
        return self._codes @ w - self._energies


class EnergyAdjustedCodes:
    """Duck-typed code matrix for euclidean HNSW traversal.

    Euclidean ordering over dequantized rows is not a pure matmul:
    ``‖x̂ − q‖² = E − 2·codes@(steps·t) + ‖t‖²`` carries the per-row
    energy ``E``. This wrapper slots into the HNSW hot path
    (``self._vectors[block] @ query``) by making each indexed row block
    evaluate ``codes @ w − E`` — with ``w = 2·steps·(q − mins)`` that is
    ``‖t‖² − ‖x̂ − q‖²``, a per-query constant minus the distance, so
    beam ordering matches the exact float32 euclidean ordering of the
    dequantized rows.
    """

    __slots__ = ("_codes", "_energies")

    def __init__(self, codes: np.ndarray, energies: np.ndarray) -> None:
        if codes.ndim != 2 or energies.shape != (codes.shape[0],):
            raise ValueError(
                f"codes {codes.shape} and energies {energies.shape} disagree"
            )
        self._codes = codes
        self._energies = energies

    @property
    def shape(self) -> tuple[int, int]:
        return self._codes.shape

    def __len__(self) -> int:
        return self._codes.shape[0]

    def __getitem__(self, index) -> _EnergyAdjustedRows:
        return _EnergyAdjustedRows(self._codes[index], self._energies[index])


class _TierState:
    """One immutable published snapshot of the quantized tier.

    ``buffer`` may have spare capacity (like :class:`FlatIndex`);
    ``codes`` is the frozen ``[0, count)`` view readers score against.
    Energies (euclidean only) are computed lazily and cached — the cache
    race is benign: both writers compute identical values.
    """

    __slots__ = ("codebook", "buffer", "count", "codes", "_energies")

    def __init__(
        self, codebook: SQ8Codebook, buffer: np.ndarray, count: int
    ) -> None:
        self.codebook = codebook
        self.buffer = buffer
        self.count = count
        codes = buffer[:count].view()
        codes.flags.writeable = False
        self.codes = codes
        self._energies: np.ndarray | None = None

    def energies(self) -> np.ndarray:
        cached = self._energies
        if cached is None:
            cached = sq8_energies(self.codes, self.codebook.steps)
            self._energies = cached
        return cached


class SQ8Store:
    """The collection-side quantized tier: codes kept in lockstep with
    the float32 matrix.

    ``sync(matrix)`` is the only mutator: it encodes appended rows with
    the current codebook, or refits the codebook from scratch once the
    row count doubles past the fit point (2× policy — bounds drift as
    the corpus grows without re-encoding on every insert). Readers are
    lock-free; see the module docstring for the publishing contract.
    """

    def __init__(self, dim: int) -> None:
        if int(dim) <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self._dim = int(dim)
        self._lock = threading.Lock()
        self._state: _TierState | None = None
        self._fitted = 0

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def count(self) -> int:
        state = self._state
        return 0 if state is None else state.count

    def codebook(self) -> SQ8Codebook | None:
        state = self._state
        return None if state is None else state.codebook

    def codes(self) -> np.ndarray:
        """Frozen uint8 code matrix for rows ``[0, count)``."""
        state = self._state
        if state is None:
            return np.zeros((0, self._dim), dtype=np.uint8)
        return state.codes

    # -- mutation ------------------------------------------------------

    def sync(self, matrix: np.ndarray) -> None:
        """Quantize any rows of ``matrix`` the tier has not seen yet."""
        n = int(matrix.shape[0])
        state = self._state
        if state is not None and state.count >= n:
            return
        with self._lock:
            state = self._state
            if state is not None and state.count >= n:
                return
            if state is None or n >= 2 * max(self._fitted, 1):
                self._state = self._refit(matrix, n)
                self._fitted = n
                return
            codebook = state.codebook
            tail = codebook.encode(matrix[state.count : n])
            buffer = state.buffer
            if n > buffer.shape[0] or not buffer.flags.writeable:
                capacity = max(1024, n, 2 * buffer.shape[0])
                grown = np.zeros((capacity, self._dim), dtype=np.uint8)
                grown[: state.count] = state.codes
                buffer = grown
            # Rows >= the published count are invisible to readers of
            # the old state, so writing them in place is safe.
            buffer[state.count : n] = tail
            self._state = _TierState(codebook, buffer, n)

    def _refit(self, matrix: np.ndarray, n: int) -> _TierState:
        codebook = SQ8Codebook.fit(matrix[:n])
        buffer = np.zeros((max(1024, n), self._dim), dtype=np.uint8)
        buffer[:n] = codebook.encode(matrix[:n])
        return _TierState(codebook, buffer, n)

    # -- scoring -------------------------------------------------------

    def traversal_query(
        self, query: np.ndarray, metric: Metric
    ) -> tuple[np.ndarray | EnergyAdjustedCodes, np.ndarray]:
        """Rewrite ``query`` into code space for HNSW traversal.

        Returns ``(matrix_like, w)`` such that ``matrix_like[rows] @ w``
        orders rows identically to the float32 similarity of the
        *dequantized* rows — a pure uint8 matmul for cosine/dot, the
        energy-adjusted wrapper for euclidean.
        """
        state = self._state
        if state is None:
            raise RuntimeError("quantized tier has no rows; sync() first")
        codebook = state.codebook
        q = np.asarray(query, dtype=np.float32)
        if metric in (Metric.COSINE, Metric.DOT):
            return state.codes, codebook.steps * q
        w = np.float32(2.0) * codebook.steps * (q - codebook.mins)
        return EnergyAdjustedCodes(state.codes, state.energies()), w

    @array_contract(query="d:float32", returns="n:float32")
    def score(self, query: np.ndarray, metric: Metric) -> np.ndarray:
        """Similarity of ``query`` to every dequantized row (full scan)."""
        state = self._state
        if state is None:
            return np.zeros((0,), dtype=np.float32)
        codebook = state.codebook
        energies = state.energies() if metric is Metric.EUCLIDEAN else None
        return sq8_similarity(
            query, state.codes, codebook.mins, codebook.steps,
            metric=metric, energies=energies,
        )

    # -- persistence / adoption ----------------------------------------

    def as_arrays(self) -> dict[str, np.ndarray] | None:
        """Zero-copy arrays for snapshotting (None when tier is empty)."""
        state = self._state
        if state is None:
            return None
        return {
            "codes": state.codes,
            "mins": state.codebook.mins,
            "steps": state.codebook.steps,
        }

    @classmethod
    def from_arrays(
        cls, codes: np.ndarray, mins: np.ndarray, steps: np.ndarray
    ) -> "SQ8Store":
        """Adopt a persisted code matrix (possibly mmap'd) without copying."""
        codebook = SQ8Codebook(mins, steps)
        if codes.ndim != 2 or codes.dtype != np.uint8:
            raise ValueError(
                f"codes must be a uint8 matrix, got {codes.dtype} "
                f"{codes.shape}"
            )
        if codes.shape[1] != codebook.dim:
            raise ValueError(
                f"codes are {codes.shape[1]}-dimensional but the codebook "
                f"is {codebook.dim}-dimensional"
            )
        store = cls(codebook.dim)
        adopted = codes.view()
        adopted.flags.writeable = False  # freeze adopted storage
        store._state = _TierState(codebook, adopted, codes.shape[0])
        store._fitted = codes.shape[0]
        return store

    def __getstate__(self) -> dict:
        payload: dict = {"dim": self._dim, "fitted": self._fitted}
        state = self._state
        if state is not None:
            handle = mapped_pickle_handle(state.codes)
            payload["mins"] = state.codebook.mins
            payload["steps"] = state.codebook.steps
            payload["codes_handle"] = handle
            if handle is None:
                payload["codes"] = np.ascontiguousarray(
                    state.codes, dtype=np.uint8
                )
        return payload

    def __setstate__(self, payload: dict) -> None:
        self._dim = payload["dim"]
        self._lock = threading.Lock()
        self._state = None
        self._fitted = payload["fitted"]
        if "mins" in payload:
            handle = payload.get("codes_handle")
            codes = (
                remap_from_handle(handle)
                if handle is not None
                else payload["codes"]
            )
            codebook = SQ8Codebook(payload["mins"], payload["steps"])
            frozen = codes.view()
            frozen.flags.writeable = False
            self._state = _TierState(codebook, frozen, codes.shape[0])
