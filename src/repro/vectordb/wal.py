"""Per-shard write-ahead logging: durable writes between full snapshots.

Until this module, every write to a served collection lived only in RAM
between ``/admin/save`` calls — a crash silently lost everything since
the last full-snapshot rewrite. A :class:`WriteAheadLog` closes that
hole: each shard appends its accepted writes (``upsert``,
``set_payload``, ``create_payload_index``) to an append-only log *after*
applying them in memory but *before* acknowledging the call, so crash
recovery is "load the last snapshot, replay the log tail"
(:func:`replay_into`, wired through
:func:`repro.vectordb.persistence.load_collection`).

On-disk format — binary, streamed, designed to be salvageable::

    file   := MAGIC (8 bytes) record*
    record := u32 body_len | u32 crc32(body) | body
    body   := u8 op | op-specific fields

    op 1 (upsert):        u16 id_len | id utf-8 | u32 payload_len |
                          payload json utf-8 | u32 dim | dim × f32 (LE)
    op 2 (set_payload):   u16 id_len | id utf-8 | u32 payload_len |
                          payload json utf-8
    op 3 (create_index):  u16 field_len | field utf-8

Vectors are stored as raw little-endian float32 — replay reproduces the
exact bits the collection accepted, so recovered search results are
bit-identical to a process that never crashed. Every record is
independently framed (length prefix) and checksummed (CRC-32 of the
body), so a crash mid-append leaves at worst one torn record at the
tail: :meth:`WriteAheadLog.open` scans the file on open, keeps the
longest valid prefix, and truncates the torn tail (with a
``RuntimeWarning``) instead of failing recovery.

Durability modes (``fsync=``):

* ``"always"`` — ``fsync`` before every append call returns. Every
  acknowledged write survives power loss. Slowest (one disk flush per
  write call).
* ``"batch"`` (default) — appends return after a buffered write; a
  background flusher thread fsyncs at most every ``flush_interval_s``
  (default 5 ms, matched to the request coalescer's dispatch window,
  so one flush covers a whole dispatch window's worth of writes).
  Bounded loss window on power failure; nothing lost on process death
  (the OS already has the bytes).
* ``"off"`` — never fsync (the OS flushes on its own schedule). Still
  safe against process crashes, not against power loss.

Replay is **idempotent**: re-upserting an id with the identical vector
is a payload update, ``set_payload`` re-merges the same keys, and
``create_payload_index`` re-indexes an indexed field — so a log may be
replayed on top of a snapshot that already contains a prefix of it
(exactly what happens after a crash between a snapshot publish and the
log truncation that follows it).

``save_collection`` truncates the log after a successful atomic
publish — but only through the byte offset captured with the snapshot
view (:meth:`WriteAheadLog.truncate_through`), so writes that raced the
save keep their records and replay on top of the new snapshot.
"""

from __future__ import annotations

import io
import json
import os
import struct
import threading
import warnings
import zlib
from collections.abc import Iterator, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import CollectionError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.vectordb.collection import PointStruct

#: File magic: identifies a WAL file and its format revision.
MAGIC = b"SKWAL\x00\x01\n"

#: Record opcodes.
OP_UPSERT = 1
OP_SET_PAYLOAD = 2
OP_CREATE_INDEX = 3

_FRAME = struct.Struct("<II")  # body length, crc32(body)
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Accepted fsync modes (see the module docstring).
FSYNC_MODES = ("always", "batch", "off")


def wal_directory(snapshot_dir: str | Path) -> Path:
    """The WAL directory paired with a snapshot directory.

    A *sibling* (``<snapshot>.wal/``), never a child: snapshot saves
    publish by swapping the whole snapshot directory, and the log must
    survive that swap (its tail may hold writes the new snapshot raced
    with).
    """
    snapshot_dir = Path(snapshot_dir)
    return snapshot_dir.parent / f"{snapshot_dir.name}.wal"


def shard_wal_path(wal_dir: str | Path, shard_index: int) -> Path:
    """The log file for one shard (``shard-00.wal``; plain = shard 0)."""
    return Path(wal_dir) / f"shard-{shard_index:02d}.wal"


# ----------------------------------------------------------------------
# record encoding / decoding
# ----------------------------------------------------------------------


def _encode_str(value: str, width: struct.Struct = _U16) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) >= 1 << (8 * width.size):
        raise CollectionError(f"WAL string field too long ({len(raw)} bytes)")
    return width.pack(len(raw)) + raw


def _encode_json(payload: dict[str, Any]) -> bytes:
    raw = json.dumps(
        payload, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")
    return _U32.pack(len(raw)) + raw


def encode_upsert(point_id: str, vector: np.ndarray,
                  payload: dict[str, Any]) -> bytes:
    """One upsert record body (framing added by the log's append)."""
    row = np.ascontiguousarray(vector, dtype="<f4")
    return (
        _U8.pack(OP_UPSERT)
        + _encode_str(point_id)
        + _encode_json(payload)
        + _U32.pack(row.size)
        + row.tobytes()
    )


def encode_set_payload(point_id: str, payload: dict[str, Any]) -> bytes:
    """One set_payload record body."""
    return _U8.pack(OP_SET_PAYLOAD) + _encode_str(point_id) + _encode_json(payload)


def encode_create_index(field: str) -> bytes:
    """One create_payload_index record body."""
    return _U8.pack(OP_CREATE_INDEX) + _encode_str(field)


class _BodyReader:
    """Sequential decoder over one record body (raises on short reads)."""

    def __init__(self, body: bytes) -> None:
        self._body = body
        self._pos = 0

    def take(self, n: int) -> bytes:
        end = self._pos + n
        if end > len(self._body):
            raise ValueError("record body shorter than its fields declare")
        chunk = self._body[self._pos:end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def string(self, width: str = "u16") -> str:
        length = self.u16() if width == "u16" else self.u32()
        return self.take(length).decode("utf-8")

    def json(self) -> dict[str, Any]:
        length = self.u32()
        return json.loads(self.take(length).decode("utf-8"))


def decode_record(body: bytes) -> tuple[int, tuple[Any, ...]]:
    """``(op, fields)`` from one checksum-verified record body.

    * ``OP_UPSERT`` → ``(id, payload, vector)`` with the vector as an
      owned float32 array (bit-identical to what was logged);
    * ``OP_SET_PAYLOAD`` → ``(id, payload)``;
    * ``OP_CREATE_INDEX`` → ``(field,)``.

    Raises ``ValueError`` for structurally invalid bodies (unknown op,
    fields overrunning the frame) — the replay scanner treats that the
    same as a checksum failure.
    """
    reader = _BodyReader(body)
    op = reader.u8()
    if op == OP_UPSERT:
        point_id = reader.string()
        payload = reader.json()
        dim = reader.u32()
        vector = np.frombuffer(reader.take(dim * 4), dtype="<f4").copy()
        return op, (point_id, payload, vector)
    if op == OP_SET_PAYLOAD:
        return op, (reader.string(), reader.json())
    if op == OP_CREATE_INDEX:
        return op, (reader.string(),)
    raise ValueError(f"unknown WAL opcode {op}")


def iter_records(path: str | Path) -> Iterator[tuple[int, int, tuple]]:
    """Yield ``(end_offset, op, fields)`` for every valid record.

    Stops silently at the first torn or corrupt frame (short header,
    short body, checksum mismatch, undecodable body) — the valid prefix
    is exactly what crash recovery may trust. Use :func:`scan` when the
    caller needs to know where the valid prefix ends. Raises
    :class:`~repro.errors.CollectionError` if the file does not start
    with the WAL magic (it is not a log; silently "recovering" zero
    records from, say, a vector file would mask an operator mistake).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(len(MAGIC))
        if len(head) < len(MAGIC):
            return  # empty/truncated header: an empty log
        if head != MAGIC:
            raise CollectionError(f"{path} is not a WAL file (bad magic)")
        offset = len(MAGIC)
        while True:
            frame = fh.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                return
            body_len, checksum = _FRAME.unpack(frame)
            body = fh.read(body_len)
            if len(body) < body_len:
                return
            if zlib.crc32(body) != checksum:
                return
            try:
                op, fields = decode_record(body)
            except (ValueError, json.JSONDecodeError, UnicodeDecodeError):
                return
            offset += _FRAME.size + body_len
            yield offset, op, fields


def scan(path: str | Path) -> tuple[int, int]:
    """``(valid_end_offset, record_count)`` of the log's intact prefix."""
    path = Path(path)
    end = min(len(MAGIC), path.stat().st_size)
    count = 0
    for end, _op, _fields in iter_records(path):
        count += 1
    return end, count


def replay_into(collection: Any, path: str | Path) -> int:
    """Apply a log's valid records to ``collection``; returns the count.

    ``collection`` is any object with the ``Collection`` write surface
    (a plain or sharded collection — sharded replay routes each record's
    id back to the shard that logged it, because ``shard_for`` is
    stable). Call **before** attaching a live WAL, or the replayed
    writes would be logged a second time. Replay is idempotent (see the
    module docstring), so replaying records the snapshot already
    contains is harmless.
    """
    from repro.vectordb.collection import PointStruct  # local: avoid cycle

    applied = 0
    for _offset, op, fields in iter_records(path):
        if op == OP_UPSERT:
            point_id, payload, vector = fields
            collection.upsert(
                [PointStruct(id=point_id, vector=vector, payload=payload)]
            )
        elif op == OP_SET_PAYLOAD:
            collection.set_payload(fields[0], fields[1])
        elif op == OP_CREATE_INDEX:
            collection.create_payload_index(fields[0])
        applied += 1
    return applied


# ----------------------------------------------------------------------
# the log itself
# ----------------------------------------------------------------------


class WriteAheadLog:
    """One shard's append-only, checksummed write log.

    Thread-safe: appends, syncs, and truncation serialize on an internal
    lock (the owning collection additionally holds its write lock across
    apply + append, which is what makes snapshot views consistent with
    log offsets). Opening repairs a torn tail in place. The log object
    deliberately does not pickle — worker-process shard replicas
    (``parallel="process"``) receive collections whose WAL is stripped,
    so mirrored writes are never logged twice.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        flush_interval_s: float = 0.005,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise CollectionError(
                f"unknown WAL fsync mode {fsync!r}; use one of {FSYNC_MODES}"
            )
        if flush_interval_s <= 0:
            raise CollectionError(
                f"flush_interval_s must be positive, got {flush_interval_s}"
            )
        self.path = Path(path)
        self.fsync_mode = fsync
        self._flush_interval_s = flush_interval_s
        self._lock = threading.Lock()
        self._closed = False
        self._dirty = False  # bytes buffered/written but not yet fsynced
        self._flusher: threading.Thread | None = None
        self._flush_wakeup = threading.Event()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._offset, self._records = self._repair_and_open()

    # -- lifecycle -----------------------------------------------------

    def _repair_and_open(self) -> tuple[int, int]:
        """Truncate any torn tail, open for append; ``(offset, records)``."""
        size = self.path.stat().st_size if self.path.exists() else 0
        if 0 < size < len(MAGIC):
            # A crash while the header itself was being written: nothing
            # in the file can be valid — start the log over.
            warnings.warn(
                f"WAL {self.path} has a torn header; starting empty",
                RuntimeWarning,
                stacklevel=4,
            )
            with open(self.path, "r+b") as fh:
                fh.truncate(0)
                fh.flush()
                os.fsync(fh.fileno())
            size = 0
        if size > 0:
            end, count = scan(self.path)
            if end < size:
                warnings.warn(
                    f"WAL {self.path} has a torn tail ({size - end} bytes "
                    f"after the last intact record); truncating to the "
                    f"valid prefix ({count} records)",
                    RuntimeWarning,
                    stacklevel=4,
                )
                with open(self.path, "r+b") as fh:
                    fh.truncate(end)
                    fh.flush()
                    os.fsync(fh.fileno())
        else:
            end, count = 0, 0
        self._fh = open(self.path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(MAGIC)
            self._fh.flush()
            end = len(MAGIC)
        return end, count

    def close(self) -> None:
        """Flush buffered records and close the file (idempotent).

        ``batch`` mode fsyncs on close (a clean shutdown loses nothing);
        ``off`` only flushes to the OS.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fh.flush()
            if self.fsync_mode != "off" and self._dirty:
                os.fsync(self._fh.fileno())
                self._dirty = False
            self._fh.close()
            flusher = self._flusher
            self._flush_wakeup.set()
        if flusher is not None:
            flusher.join(timeout=5.0)

    def __getstate__(self) -> None:  # pragma: no cover - defensive
        raise TypeError(
            "WriteAheadLog does not pickle: worker replicas must not log "
            "mirrored writes (strip the WAL before shipping a collection)"
        )

    # -- introspection -------------------------------------------------

    @property
    def offset(self) -> int:
        """Current end-of-log byte offset (capture with snapshot views)."""
        with self._lock:
            return self._offset

    @property
    def depth(self) -> int:
        """Records in the log awaiting the next snapshot truncation."""
        with self._lock:
            return self._records

    def stats(self) -> dict:
        """JSON-ready counters (``/healthz`` embeds these per shard)."""
        with self._lock:
            return {
                "path": str(self.path),
                "fsync": self.fsync_mode,
                "records": self._records,
                "bytes": max(0, self._offset - len(MAGIC)),
            }

    # -- appends -------------------------------------------------------

    def _append_bodies(self, bodies: Sequence[bytes]) -> None:
        buffer = io.BytesIO()
        for body in bodies:
            buffer.write(_FRAME.pack(len(body), zlib.crc32(body)))
            buffer.write(body)
        raw = buffer.getvalue()
        with self._lock:
            if self._closed:
                raise CollectionError(f"WAL {self.path} is closed")
            self._fh.write(raw)
            self._offset += len(raw)
            self._records += len(bodies)
            self._dirty = True
            if self.fsync_mode == "always":
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._dirty = False
                return
            # Leave bytes in the userspace buffer no longer than one
            # flush window: process death loses buffered (not yet
            # written) bytes even without a power failure.
            self._fh.flush()
            if self.fsync_mode == "batch":
                self._ensure_flusher()

    def append_points(self, points: Sequence["PointStruct"]) -> None:
        """Log accepted upserts (one record per point, one write + sync)."""
        if not points:
            return
        self._append_bodies([
            encode_upsert(point.id, point.vector, point.payload)
            for point in points
        ])

    def append_set_payload(self, point_id: str,
                           payload: dict[str, Any]) -> None:
        """Log one accepted payload merge."""
        self._append_bodies([encode_set_payload(point_id, payload)])

    def append_create_index(self, field: str) -> None:
        """Log one accepted payload-index creation."""
        self._append_bodies([encode_create_index(field)])

    # -- durability ----------------------------------------------------

    def sync(self) -> None:
        """Force an fsync now (no-op in ``off`` mode, or when clean)."""
        with self._lock:
            if self._closed or not self._dirty:
                return
            self._fh.flush()
            if self.fsync_mode != "off":
                os.fsync(self._fh.fileno())
            self._dirty = False

    def _ensure_flusher(self) -> None:
        """Start the batch-mode flusher lazily (called under the lock)."""
        if self._flusher is None or not self._flusher.is_alive():
            self._flusher = threading.Thread(
                target=self._flush_loop,
                name=f"wal-flush-{self.path.stem}",
                daemon=True,
            )
            self._flusher.start()

    def _flush_loop(self) -> None:
        while True:
            self._flush_wakeup.wait(self._flush_interval_s)
            with self._lock:
                if self._closed:
                    return
                if self._dirty:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                    self._dirty = False

    # -- truncation ----------------------------------------------------

    def truncate_through(self, offset: int) -> int:
        """Drop records up to ``offset``; keep the tail. Returns new depth.

        Called after a snapshot publish succeeds: everything at or
        before the offset captured with the snapshot view is now
        durable in the snapshot itself. The tail (writes that raced the
        save) is rewritten into a fresh log and atomically renamed over
        the old one, so a crash mid-truncation leaves either the full
        old log (replay is idempotent) or the correctly truncated one.
        """
        with self._lock:
            if self._closed:
                raise CollectionError(f"WAL {self.path} is closed")
            offset = max(offset, len(MAGIC))
            if offset >= self._offset:
                tail = b""
            else:
                self._fh.flush()
                with open(self.path, "rb") as fh:
                    fh.seek(offset)
                    tail = fh.read(self._offset - offset)
            replacement = self.path.with_name(self.path.name + ".compact")
            with open(replacement, "wb") as fh:
                fh.write(MAGIC + tail)
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(replacement, self.path)
            self._fh = open(self.path, "ab")
            self._dirty = False
            self._offset = len(MAGIC) + len(tail)
            self._records = sum(1 for _ in iter_records(self.path))
            return self._records
