"""The vector-database client: a Qdrant-like multi-collection facade."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

import numpy as np

from repro.errors import (
    CollectionError,
    CollectionExists,
    CollectionNotFound,
)
from repro.vectordb.collection import (
    Collection,
    HnswConfig,
    PointStruct,
    SearchHit,
)
from repro.vectordb.contracts import array_contract
from repro.vectordb.deadline import Deadline
from repro.vectordb.distance import Metric
from repro.vectordb.filters import Filter
from repro.vectordb.sharded import AnyCollection, ShardedCollection


class VectorDBClient:
    """Manages named collections, in the style of a Qdrant client.

    Owns its collections' lifecycle: dropping a collection (or exiting
    the client's ``with`` block) closes it, releasing sharded
    collections' fan-out workers — threads, or per-shard worker
    *processes* under ``parallel="process"`` — instead of leaking them
    until garbage collection.
    """

    def __init__(self) -> None:
        self._collections: dict[str, AnyCollection] = {}

    def __enter__(self) -> "VectorDBClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close and drop every collection (idempotent)."""
        while self._collections:
            _, collection = self._collections.popitem()
            collection.close()

    def create_collection(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
        exist_ok: bool = False,
        shards: int = 1,
        quantize: str | None = None,
    ) -> AnyCollection:
        """Create a collection; ``exist_ok`` returns the existing one.

        ``shards > 1`` builds a hash-partitioned
        :class:`~repro.vectordb.sharded.ShardedCollection`; both backends
        expose the same surface, so callers need not care which they got.
        ``quantize="sq8"`` adds an int8 scalar-quantized storage tier
        (see :mod:`repro.vectordb.quantization`): graph traversal scores
        against uint8 codes and the final top-k is rescored exactly
        against float32. With ``exist_ok``, the existing collection must
        match the requested dim, metric, shard count, and quantize kind —
        silently returning a differently-configured backend would surface
        as wrong scores or far-away dimension errors instead of failing
        here.
        """
        if shards <= 0:
            raise CollectionError(
                f"shard count must be positive, got {shards}"
            )
        existing = self._collections.get(name)
        if existing is not None:
            if exist_ok:
                have = (existing.dim, existing.metric,
                        getattr(existing, "n_shards", 1),
                        getattr(existing, "quantize", None))
                want = (dim, metric, shards, quantize)
                if have != want:
                    raise CollectionError(
                        f"collection {name!r} exists with "
                        f"(dim, metric, shards, quantize)={have}, "
                        f"requested {want}"
                    )
                return existing
            raise CollectionExists(f"collection {name!r} already exists")
        if shards > 1:
            collection: AnyCollection = ShardedCollection(
                name, dim, metric=metric, hnsw=hnsw, shards=shards,
                quantize=quantize,
            )
        else:
            collection = Collection(
                name, dim, metric=metric, hnsw=hnsw, quantize=quantize
            )
        self._collections[name] = collection
        return collection

    def attach_collection(self, collection: AnyCollection) -> AnyCollection:
        """Register an externally built collection (e.g. a loaded snapshot).

        Replaces any existing collection with the same name.
        """
        self._collections[collection.name] = collection
        return collection

    def get_collection(self, name: str) -> AnyCollection:
        """Look up a collection by name."""
        collection = self._collections.get(name)
        if collection is None:
            known = ", ".join(sorted(self._collections)) or "(none)"
            raise CollectionNotFound(
                f"collection {name!r} not found; existing: {known}"
            )
        return collection

    def delete_collection(self, name: str) -> None:
        """Drop a collection and close it (missing name raises).

        Closing matters for sharded collections, whose fan-out thread
        pools would otherwise outlive the drop in long-lived processes.
        """
        collection = self._collections.pop(name, None)
        if collection is None:
            raise CollectionNotFound(f"collection {name!r} not found")
        collection.close()

    def reshard_collection(self, name: str, new_shards: int) -> AnyCollection:
        """Re-route a live collection's points across ``new_shards`` shards.

        The in-memory counterpart of
        :func:`repro.vectordb.persistence.reshard_snapshot`: every point
        is re-assigned via ``shard_for(id, new_shards)``, global insertion
        order, payloads, payload indexes, the quantized-tier setting, and
        the HNSW config carry over,
        and the old backend is closed and replaced under the same name.
        ``new_shards=1`` produces a plain (unsharded) collection. If the
        old backend had its HNSW graphs built, the new one is built
        eagerly too, so resharding never reintroduces first-search
        latency.
        """
        old = self.get_collection(name)
        if new_shards <= 0:
            raise CollectionError(
                f"shard count must be positive, got {new_shards}"
            )
        quantize = getattr(old, "quantize", None)
        if new_shards > 1:
            new: AnyCollection = ShardedCollection(
                name, old.dim, metric=old.metric, hnsw=old.hnsw_config,
                shards=new_shards, quantize=quantize,
            )
        else:
            new = Collection(
                name, old.dim, metric=old.metric, hnsw=old.hnsw_config,
                quantize=quantize,
            )
        order = (
            old.point_order if isinstance(old, ShardedCollection)
            else old.point_ids()
        )
        new.upsert(
            PointStruct(
                id=point_id,
                vector=old.point_vector(point_id),
                payload=old.retrieve(point_id).payload,
            )
            for point_id in order
        )
        for field in old.indexed_payload_fields:
            new.create_payload_index(field)
        was_built = old.hnsw_is_built and len(old) > 0
        old.close()
        self._collections[name] = new
        if was_built:
            new.build_hnsw()
        return new

    def save(self, name: str, directory: str | Path) -> None:
        """Snapshot the named collection to ``directory`` (atomic).

        Writes snapshot schema v4: vectors as a raw float32 matrix (so a
        later :meth:`load` can memory-map it), any fully built HNSW
        graphs alongside, and — for quantized collections — the uint8
        code matrix plus its codebook, making the next cold start
        O(metadata) instead of O(graph rebuild + re-quantization). See
        :func:`repro.vectordb.persistence.save_collection`.
        """
        from repro.vectordb.persistence import save_collection

        save_collection(self.get_collection(name), directory)

    def load(
        self,
        directory: str | Path,
        hnsw: HnswConfig | None = None,
        mmap: bool = False,
        wal: str | None = None,
    ) -> AnyCollection:
        """Load a snapshot and register it under its stored name.

        ``mmap=True`` serves the collection off a read-only memory map
        of the snapshot's vector file instead of materializing vectors
        in RAM (upserts after load copy on write). Persisted HNSW graphs
        are attached; a damaged graph file degrades to a lazy rebuild
        with a warning. Any write-ahead-log tail next to the snapshot is
        replayed; ``wal="always"|"batch"|"off"`` additionally attaches
        live logs so writes after the load are durable. Replaces any
        same-named collection (closing it). See
        :func:`repro.vectordb.persistence.load_collection`.
        """
        from repro.vectordb.persistence import load_collection

        collection = load_collection(directory, hnsw=hnsw, mmap=mmap, wal=wal)
        previous = self._collections.get(collection.name)
        if previous is not None:
            previous.close()
        return self.attach_collection(collection)

    def list_collections(self) -> list[str]:
        """Names of all collections, sorted."""
        return sorted(self._collections)

    def collection_info(self, name: str) -> dict:
        """JSON-ready summary of one collection.

        Returns name, point count, dim, metric, shard count (1 for a
        plain collection), the active shard executor kind (``None`` when
        unsharded), whether the HNSW graph(s) are built, the indexed
        payload fields, and write-ahead-log counters (``None`` when
        durability is off) — what the serving layer's ``/collections``
        endpoint and the CLI report. Raises
        :class:`~repro.errors.CollectionNotFound` for unknown names.
        """
        collection = self.get_collection(name)
        return {
            "name": collection.name,
            "points": len(collection),
            "dim": collection.dim,
            "metric": collection.metric.value,
            "shards": getattr(collection, "n_shards", 1),
            "parallel": getattr(collection, "parallel", None),
            "quantize": getattr(collection, "quantize", None),
            "hnsw_built": collection.hnsw_is_built,
            "indexed_payload_fields": sorted(
                collection.indexed_payload_fields
            ),
            "wal": collection.wal_stats(),
        }

    def has_collection(self, name: str) -> bool:
        """Whether a collection with ``name`` exists."""
        return name in self._collections

    # convenience passthroughs ------------------------------------------------

    @array_contract(points="*d:float32")
    def upsert(self, name: str, points: Iterable[PointStruct]) -> int:
        """Upsert points into the named collection."""
        return self.get_collection(name).upsert(points)

    def set_payload(
        self, name: str, point_id: str, payload: dict
    ) -> None:
        """Merge ``payload`` into one point of the named collection."""
        self.get_collection(name).set_payload(point_id, payload)

    @array_contract(vector="d:float32")
    def search(
        self,
        name: str,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> list[SearchHit]:
        """Search the named collection (see :meth:`Collection.search`)."""
        return self.get_collection(name).search(
            vector, k, flt=flt, exact=exact, ef=ef, deadline=deadline,
            rescore_factor=rescore_factor,
        )

    @array_contract(vectors="q,d:float32")
    def search_batch(
        self,
        name: str,
        vectors: np.ndarray | Sequence[Sequence[float]],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> list[list[SearchHit]]:
        """Batched search (see :meth:`Collection.search_batch`)."""
        return self.get_collection(name).search_batch(
            vectors, k, flt=flt, exact=exact, ef=ef, deadline=deadline,
            rescore_factor=rescore_factor,
        )

    def count(self, name: str, flt: Filter | None = None) -> int:
        """Count points in the named collection matching ``flt``."""
        return self.get_collection(name).count(flt)
