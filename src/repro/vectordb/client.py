"""The vector-database client: a Qdrant-like multi-collection facade."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import (
    CollectionError,
    CollectionExists,
    CollectionNotFound,
)
from repro.vectordb.collection import (
    Collection,
    HnswConfig,
    PointStruct,
    SearchHit,
)
from repro.vectordb.distance import Metric
from repro.vectordb.filters import Filter
from repro.vectordb.sharded import AnyCollection, ShardedCollection


class VectorDBClient:
    """Manages named collections, in the style of a Qdrant client."""

    def __init__(self) -> None:
        self._collections: dict[str, AnyCollection] = {}

    def create_collection(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        hnsw: HnswConfig | None = None,
        exist_ok: bool = False,
        shards: int = 1,
    ) -> AnyCollection:
        """Create a collection; ``exist_ok`` returns the existing one.

        ``shards > 1`` builds a hash-partitioned
        :class:`~repro.vectordb.sharded.ShardedCollection`; both backends
        expose the same surface, so callers need not care which they got.
        With ``exist_ok``, the existing collection must match the
        requested dim, metric, and shard count — silently returning a
        differently-configured backend would surface as wrong scores or
        far-away dimension errors instead of failing here.
        """
        if shards <= 0:
            raise CollectionError(
                f"shard count must be positive, got {shards}"
            )
        existing = self._collections.get(name)
        if existing is not None:
            if exist_ok:
                have = (existing.dim, existing.metric,
                        getattr(existing, "n_shards", 1))
                want = (dim, metric, shards)
                if have != want:
                    raise CollectionError(
                        f"collection {name!r} exists with "
                        f"(dim, metric, shards)={have}, requested {want}"
                    )
                return existing
            raise CollectionExists(f"collection {name!r} already exists")
        if shards > 1:
            collection: AnyCollection = ShardedCollection(
                name, dim, metric=metric, hnsw=hnsw, shards=shards
            )
        else:
            collection = Collection(name, dim, metric=metric, hnsw=hnsw)
        self._collections[name] = collection
        return collection

    def attach_collection(self, collection: AnyCollection) -> AnyCollection:
        """Register an externally built collection (e.g. a loaded snapshot).

        Replaces any existing collection with the same name.
        """
        self._collections[collection.name] = collection
        return collection

    def get_collection(self, name: str) -> AnyCollection:
        """Look up a collection by name."""
        collection = self._collections.get(name)
        if collection is None:
            known = ", ".join(sorted(self._collections)) or "(none)"
            raise CollectionNotFound(
                f"collection {name!r} not found; existing: {known}"
            )
        return collection

    def delete_collection(self, name: str) -> None:
        """Drop a collection (missing name raises)."""
        if name not in self._collections:
            raise CollectionNotFound(f"collection {name!r} not found")
        del self._collections[name]

    def list_collections(self) -> list[str]:
        """Names of all collections, sorted."""
        return sorted(self._collections)

    def has_collection(self, name: str) -> bool:
        """Whether a collection with ``name`` exists."""
        return name in self._collections

    # convenience passthroughs ------------------------------------------------

    def upsert(self, name: str, points: Iterable[PointStruct]) -> int:
        """Upsert points into the named collection."""
        return self.get_collection(name).upsert(points)

    def search(
        self,
        name: str,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
    ) -> list[SearchHit]:
        """Search the named collection (see :meth:`Collection.search`)."""
        return self.get_collection(name).search(
            vector, k, flt=flt, exact=exact, ef=ef
        )

    def search_batch(
        self,
        name: str,
        vectors: np.ndarray | Sequence[Sequence[float]],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
    ) -> list[list[SearchHit]]:
        """Batched search (see :meth:`Collection.search_batch`)."""
        return self.get_collection(name).search_batch(
            vectors, k, flt=flt, exact=exact, ef=ef
        )

    def count(self, name: str, flt: Filter | None = None) -> int:
        """Count points in the named collection matching ``flt``."""
        return self.get_collection(name).count(flt)
