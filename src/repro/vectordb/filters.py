"""Payload filters, modelled on Qdrant's filter DSL.

The SemaSK pipeline stores each POI's attributes as the point payload and
filters by the query's spatial range at search time (the paper's
"filter the POIs by the given query range" step). Filters compose with
boolean combinators.

Example::

    flt = And(
        GeoBoundingBoxFilter("location", box),
        FieldMatch("city", "Saint Louis"),
    )
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.errors import FilterError
from repro.geo.bbox import BoundingBox
from repro.geo.point import haversine_km


class Filter(ABC):
    """A predicate over point payloads."""

    @abstractmethod
    def matches(self, payload: Mapping[str, Any]) -> bool:
        """Whether ``payload`` satisfies the filter."""


@dataclass(frozen=True)
class FieldMatch(Filter):
    """Exact equality on a payload field (missing field never matches)."""

    key: str
    value: Any

    def matches(self, payload: Mapping[str, Any]) -> bool:
        return self.key in payload and payload[self.key] == self.value


@dataclass(frozen=True)
class FieldIn(Filter):
    """Membership of a payload field in a set of allowed values."""

    key: str
    values: frozenset[Any]

    def __init__(self, key: str, values: Any) -> None:
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "values", frozenset(values))

    def matches(self, payload: Mapping[str, Any]) -> bool:
        return self.key in payload and payload[self.key] in self.values


@dataclass(frozen=True)
class FieldRange(Filter):
    """Numeric range test ``lo <= payload[key] <= hi`` (None = unbounded)."""

    key: str
    gte: float | None = None
    lte: float | None = None

    def __post_init__(self) -> None:
        if self.gte is None and self.lte is None:
            raise FilterError("FieldRange needs at least one bound")
        if self.gte is not None and self.lte is not None and self.gte > self.lte:
            raise FilterError(f"empty range: gte={self.gte} > lte={self.lte}")

    def matches(self, payload: Mapping[str, Any]) -> bool:
        value = payload.get(self.key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.gte is not None and value < self.gte:
            return False
        if self.lte is not None and value > self.lte:
            return False
        return True


def _payload_latlon(payload: Mapping[str, Any], key: str) -> tuple[float, float] | None:
    location = payload.get(key)
    if (
        isinstance(location, Mapping)
        and isinstance(location.get("lat"), (int, float))
        and isinstance(location.get("lon"), (int, float))
    ):
        return float(location["lat"]), float(location["lon"])
    return None


@dataclass(frozen=True)
class GeoBoundingBoxFilter(Filter):
    """Point-in-rectangle test on a ``{"lat": .., "lon": ..}`` payload field."""

    key: str
    box: BoundingBox

    def matches(self, payload: Mapping[str, Any]) -> bool:
        coords = _payload_latlon(payload, self.key)
        if coords is None:
            return False
        return self.box.contains_coords(*coords)


@dataclass(frozen=True)
class GeoRadiusFilter(Filter):
    """Point-within-radius test (haversine, kilometres)."""

    key: str
    center_lat: float
    center_lon: float
    radius_km: float

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise FilterError(f"radius must be positive, got {self.radius_km}")

    def matches(self, payload: Mapping[str, Any]) -> bool:
        coords = _payload_latlon(payload, self.key)
        if coords is None:
            return False
        return (
            haversine_km(self.center_lat, self.center_lon, *coords)
            <= self.radius_km
        )


class And(Filter):
    """All sub-filters must match."""

    def __init__(self, *filters: Filter) -> None:
        if not filters:
            raise FilterError("And() needs at least one sub-filter")
        self.filters = filters

    def matches(self, payload: Mapping[str, Any]) -> bool:
        return all(f.matches(payload) for f in self.filters)


class Or(Filter):
    """At least one sub-filter must match."""

    def __init__(self, *filters: Filter) -> None:
        if not filters:
            raise FilterError("Or() needs at least one sub-filter")
        self.filters = filters

    def matches(self, payload: Mapping[str, Any]) -> bool:
        return any(f.matches(payload) for f in self.filters)


@dataclass(frozen=True)
class Not(Filter):
    """Negation of a sub-filter."""

    inner: Filter

    def matches(self, payload: Mapping[str, Any]) -> bool:
        return not self.inner.matches(payload)
