"""Micro-batching request coalescing: many callers, one batched call.

PR 1's batch engine made 64 queries in one ``search_batch`` call ~5×
cheaper than 64 ``search`` calls — but only for callers that *have* 64
queries in hand. An online server does not: it has 64 concurrent clients
holding one query each. The coalescer bridges the two. Concurrent
callers enqueue single requests and block on a future; a dispatcher
thread drains the queue as soon as a group reaches ``max_batch`` *or*
its oldest request has waited ``max_wait_s``, executes one batched call
for the whole group, and resolves every caller's future — so independent
clients transparently ride the batched hot path.

Three classes:

* :class:`MicroBatcher` — the generic size-or-deadline machinery. Items
  are grouped by a caller-supplied key (only identically-parameterized
  requests may share a batch) and executed by a pluggable
  ``run_batch(key, items)``.
* :class:`SearchCoalescer` — vector searches over a
  :class:`~repro.vectordb.client.VectorDBClient`; groups by
  (collection, k, filter, exact, ef) and executes
  ``client.search_batch``.
* :class:`QueryCoalescer` — full SemaSK pipeline queries; executes
  :meth:`~repro.core.pipeline.SemaSK.query_many` (which itself groups by
  spatial range and fans refinement out over threads).

Error isolation: a batch whose execution raises is retried one item at a
time, so a poison request fails only its own future — the innocent
requests that happened to share its batch still succeed. Equivalence is
inherited from the batch engine's contract (same hits as per-query
calls; scores equal up to float accumulation order) and locked down in
``tests/test_serving.py``.

Tuning: ``max_wait_s`` is the latency a lone request pays for the chance
to be coalesced; ``max_batch`` caps per-call work. Defaults (64 / 5 ms)
suit the benchmarked corpus — see ``docs/serving.md`` for how to choose.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Hashable, Sequence
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.pipeline import SemaSK
from repro.core.query import SpatialKeywordQuery
from repro.core.results import QueryResult
from repro.errors import DimensionMismatch
from repro.vectordb.client import VectorDBClient
from repro.vectordb.collection import SearchHit
from repro.vectordb.filters import Filter


@dataclass
class CoalescerStats:
    """Running counters of one batcher (read-mostly; updated under lock).

    Plain counters only (no per-batch history), so a server can run
    indefinitely without the stats object growing.
    """

    requests: int = 0            # futures ever enqueued
    batches: int = 0             # batched executions dispatched
    requests_dispatched: int = 0  # requests that left the queue in a batch
    max_batch_seen: int = 0      # largest batch executed
    retried_singly: int = 0      # items re-run alone after a batch failure

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch (0.0 before any)."""
        if not self.batches:
            return 0.0
        return self.requests_dispatched / self.batches

    def snapshot(self) -> dict:
        """JSON-ready view (the ``/healthz`` endpoint embeds this)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch_seen": self.max_batch_seen,
            "retried_singly": self.retried_singly,
        }


# reprolint: disable=RL06 -- process-local: lives inside a ServingContext, never pickled
class MicroBatcher:
    """Size-or-deadline micro-batching over a ``run_batch`` callable.

    ``run_batch(key, items)`` must return one result per item, in order.
    :meth:`submit` enqueues an item under ``key`` and returns a
    :class:`~concurrent.futures.Future`; only items with equal keys are
    batched together. A single dispatcher thread watches the queue and
    fires a group when it reaches ``max_batch`` items or its oldest item
    has waited ``max_wait_s`` seconds, whichever comes first.

    Lifecycle: the dispatcher starts with the first :meth:`submit`.
    :meth:`close` drains everything still queued (executing it, not
    cancelling), then stops the thread; submitting after close raises
    ``RuntimeError``.
    """

    def __init__(
        self,
        run_batch: Callable[[Hashable, list[Any]], Sequence[Any]],
        max_batch: int = 64,
        max_wait_s: float = 0.005,
        name: str = "batcher",
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(
                f"max_wait_s must be non-negative, got {max_wait_s}"
            )
        self._run_batch = run_batch
        self._max_batch = max_batch
        self._max_wait_s = max_wait_s
        self._name = name
        self._lock = threading.Condition()
        # key -> (first-enqueue monotonic time, [(item, future), ...]);
        # insertion order doubles as arrival order of the groups.
        self._groups: dict[Hashable, tuple[float, list[tuple[Any, Future]]]]
        self._groups = {}
        self._thread: threading.Thread | None = None
        self._closed = False
        self.stats = CoalescerStats()

    # ------------------------------------------------------------------
    # caller side
    # ------------------------------------------------------------------

    def submit(self, key: Hashable, item: Any) -> Future:
        """Enqueue ``item`` under ``key``; resolve via the returned future.

        Unhashable keys get a private group (no coalescing, still
        batched machinery). Raises ``RuntimeError`` after :meth:`close`.
        """
        try:
            hash(key)
        except TypeError:
            key = object()  # unique: a group of its own
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self._name} is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"dispatch-{self._name}",
                    daemon=True,
                )
                self._thread.start()
            entry = self._groups.get(key)
            if entry is None:
                self._groups[key] = (time.monotonic(), [(item, future)])
            else:
                entry[1].append((item, future))
            self.stats.requests += 1
            self._lock.notify_all()
        return future

    def close(self, timeout: float | None = 5.0) -> None:
        """Drain pending requests, then stop the dispatcher (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._lock.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatcher side
    # ------------------------------------------------------------------

    def _take_ready(self, now: float, drain: bool):
        """Pop the most urgent ready group's first ``max_batch`` items.

        Ready = full (``max_batch``), past its deadline, or ``drain``
        (shutdown flushes everything). Returns ``(key, entries)`` or
        ``None``. Called under the lock.
        """
        for key, (first_ts, entries) in self._groups.items():
            if (
                drain
                or len(entries) >= self._max_batch
                or now - first_ts >= self._max_wait_s
            ):
                break
        else:  # no group is ready (note: the key itself may be None)
            return None
        first_ts, entries = self._groups.pop(key)
        batch, rest = entries[: self._max_batch], entries[self._max_batch:]
        if rest:
            # Leftovers start a fresh deadline: they are a new batch.
            self._groups[key] = (now, rest)
        return key, batch

    def _next_deadline(self, now: float) -> float | None:
        """Seconds until the oldest group must flush (None = no groups)."""
        if not self._groups:
            return None
        oldest = min(first_ts for first_ts, _ in self._groups.values())
        return max(0.0, oldest + self._max_wait_s - now)

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while True:
                    taken = self._take_ready(time.monotonic(), self._closed)
                    if taken is not None:
                        break
                    if self._closed:
                        return  # closed and fully drained
                    self._lock.wait(self._next_deadline(time.monotonic()))
                key, batch = taken
                self.stats.batches += 1
                self.stats.requests_dispatched += len(batch)
                self.stats.max_batch_seen = max(
                    self.stats.max_batch_seen, len(batch)
                )
            self._execute(key, batch)  # outside the lock: submitters go on

    def _execute(
        self, key: Hashable, batch: list[tuple[Any, Future]]
    ) -> None:
        items = [item for item, _ in batch]
        try:
            results = self._run_batch(key, items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for "
                    f"{len(items)} items"
                )
        except BaseException:
            # Error isolation: re-run one by one so only the item(s) that
            # actually fail see an exception — a poison request must not
            # take down the whole batch it happened to ride in.
            for item, future in batch:
                with self._lock:
                    self.stats.retried_singly += 1
                try:
                    result = self._run_batch(key, [item])
                except BaseException as exc:  # noqa: BLE001 - to the caller
                    future.set_exception(exc)
                else:
                    future.set_result(result[0])
            return
        for (_, future), result in zip(batch, results):
            future.set_result(result)


@dataclass(frozen=True)
class _SearchKey:
    """Everything two searches must share to ride one batched call."""

    collection: str
    k: int
    flt: Filter | None
    exact: bool
    ef: int | None


class SearchCoalescer:
    """Coalesces single vector searches into ``search_batch`` calls.

    Concurrent callers use :meth:`search` exactly like
    :meth:`VectorDBClient.search`; requests agreeing on (collection, k,
    filter, exact, ef) are stacked into one matrix and answered by one
    :meth:`~repro.vectordb.client.VectorDBClient.search_batch` call —
    sharing the filter's candidate-set evaluation and the matrix–matrix
    scoring kernel across clients that never heard of each other.

    Request validation happens *before* enqueueing (unknown collection,
    wrong dimensionality), so malformed requests fail fast in the
    caller's thread and never reach a batch.
    """

    def __init__(
        self,
        client: VectorDBClient,
        max_batch: int = 64,
        max_wait_s: float = 0.005,
    ) -> None:
        self._client = client
        self._batcher = MicroBatcher(
            self._run, max_batch=max_batch, max_wait_s=max_wait_s,
            name="search-coalescer",
        )

    @property
    def stats(self) -> CoalescerStats:
        """Dispatch counters (requests, batches, sizes)."""
        return self._batcher.stats

    def _run(
        self, key: _SearchKey, vectors: list[np.ndarray]
    ) -> list[list[SearchHit]]:
        return self._client.search_batch(
            key.collection, np.stack(vectors), key.k,
            flt=key.flt, exact=key.exact, ef=key.ef,
        )

    def submit(
        self,
        collection: str,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
    ) -> Future:
        """Enqueue one search; the future resolves to its hit list.

        Raises immediately (not via the future) for an unknown
        collection, a negative ``k``, or a query of the wrong
        dimensionality — the pre-batch validation that keeps bad
        requests out of shared batches.
        """
        target = self._client.get_collection(collection)
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        query = np.asarray(vector, dtype=np.float32)
        if query.shape != (target.dim,):
            raise DimensionMismatch(
                f"query shape {query.shape} != ({target.dim},)"
            )
        key = _SearchKey(
            collection=collection, k=k, flt=flt, exact=exact, ef=ef
        )
        return self._batcher.submit(key, query)

    def search(
        self,
        collection: str,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        timeout: float | None = 30.0,
    ) -> list[SearchHit]:
        """Blocking :meth:`submit`: returns the hits (or re-raises)."""
        return self.submit(
            collection, vector, k, flt=flt, exact=exact, ef=ef
        ).result(timeout)

    def close(self) -> None:
        """Flush pending searches and stop the dispatcher."""
        self._batcher.close()


class QueryCoalescer:
    """Coalesces full SemaSK queries into ``query_many`` calls.

    All queries share one group — :meth:`SemaSK.query_many` already
    groups by spatial range internally and embeds every text in one
    ``embed_batch`` call, so pre-splitting here would only shrink the
    batches. ``parallel_refine`` is forwarded so LLM refinement of a
    coalesced batch fans out over threads (refinement is I/O-bound
    against a hosted provider).
    """

    def __init__(
        self,
        system: SemaSK,
        max_batch: int = 32,
        max_wait_s: float = 0.010,
        parallel_refine: int = 4,
    ) -> None:
        if parallel_refine <= 0:
            raise ValueError(
                f"parallel_refine must be positive, got {parallel_refine}"
            )
        self._system = system
        self._parallel_refine = parallel_refine
        self._batcher = MicroBatcher(
            self._run, max_batch=max_batch, max_wait_s=max_wait_s,
            name="query-coalescer",
        )

    @property
    def stats(self) -> CoalescerStats:
        """Dispatch counters (requests, batches, sizes)."""
        return self._batcher.stats

    def _run(
        self, key: Hashable, queries: list[SpatialKeywordQuery]
    ) -> list[QueryResult]:
        return self._system.query_many(
            queries, parallel_refine=min(self._parallel_refine, len(queries))
        )

    def submit(self, query: SpatialKeywordQuery) -> Future:
        """Enqueue one pipeline query; resolves to its ``QueryResult``."""
        return self._batcher.submit(None, query)

    def query(
        self, query: SpatialKeywordQuery, timeout: float | None = 60.0
    ) -> QueryResult:
        """Blocking :meth:`submit`."""
        return self.submit(query).result(timeout)

    def close(self) -> None:
        """Flush pending queries and stop the dispatcher."""
        self._batcher.close()
