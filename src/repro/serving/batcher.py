"""Micro-batching request coalescing: many callers, one batched call.

PR 1's batch engine made 64 queries in one ``search_batch`` call ~5×
cheaper than 64 ``search`` calls — but only for callers that *have* 64
queries in hand. An online server does not: it has 64 concurrent clients
holding one query each. The coalescer bridges the two. Concurrent
callers enqueue single requests and block on a future; a dispatcher
thread drains the queue as soon as a group reaches ``max_batch`` *or*
its oldest request has waited ``max_wait_s``, executes one batched call
for the whole group, and resolves every caller's future — so independent
clients transparently ride the batched hot path.

Three classes:

* :class:`MicroBatcher` — the generic size-or-deadline machinery. Items
  are grouped by a caller-supplied key (only identically-parameterized
  requests may share a batch) and executed by a pluggable
  ``run_batch(key, items)``.
* :class:`SearchCoalescer` — vector searches over a
  :class:`~repro.vectordb.client.VectorDBClient`; groups by
  (collection, k, filter, exact, ef, rescore_factor) and executes
  ``client.search_batch``.
* :class:`QueryCoalescer` — full SemaSK pipeline queries; executes
  :meth:`~repro.core.pipeline.SemaSK.query_many` (which itself groups by
  spatial range and fans refinement out over threads).

Error isolation: a batch whose execution raises is retried one item at a
time, so a poison request fails only its own future — the innocent
requests that happened to share its batch still succeed. Equivalence is
inherited from the batch engine's contract (same hits as per-query
calls; scores equal up to float accumulation order) and locked down in
``tests/test_serving.py``.

Tuning: ``max_wait_s`` is the latency a lone request pays for the chance
to be coalesced; ``max_batch`` caps per-call work. Defaults (64 / 5 ms)
suit the benchmarked corpus — see ``docs/serving.md`` for how to choose.
"""

from __future__ import annotations

import inspect
import threading
import time
import warnings
from collections.abc import Callable, Hashable, Sequence
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.pipeline import SemaSK
from repro.core.query import SpatialKeywordQuery
from repro.core.results import QueryResult
from repro.errors import DeadlineExceeded, DimensionMismatch, ServerOverloaded
from repro.testing import chaos
from repro.vectordb.client import VectorDBClient
from repro.vectordb.collection import SearchHit
from repro.vectordb.deadline import Deadline
from repro.vectordb.filters import Filter


@dataclass
class CoalescerStats:
    """Running counters of one batcher (read-mostly; updated under lock).

    Plain counters only (no per-batch history), so a server can run
    indefinitely without the stats object growing.
    """

    requests: int = 0            # futures ever enqueued
    batches: int = 0             # batched executions dispatched
    requests_dispatched: int = 0  # requests that left the queue in a batch
    max_batch_seen: int = 0      # largest batch executed
    retried_singly: int = 0      # items re-run alone after a batch failure
    shed: int = 0                # submits refused because the queue was full
    expired: int = 0             # items dropped for a spent deadline

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch (0.0 before any)."""
        if not self.batches:
            return 0.0
        return self.requests_dispatched / self.batches

    def snapshot(self) -> dict:
        """JSON-ready view (the ``/healthz`` endpoint embeds this)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch_seen": self.max_batch_seen,
            "retried_singly": self.retried_singly,
            "shed": self.shed,
            "expired": self.expired,
        }


def _await_future(
    future: Future,
    timeout: float | None,
    deadline: Deadline | None,
) -> Any:
    """Block on ``future``, never past the deadline's remaining budget.

    A wait that exhausts the budget raises
    :class:`~repro.errors.DeadlineExceeded`; a plain ``timeout`` expiry
    keeps the stdlib ``TimeoutError``. Either way the caller's worker is
    released — the batch the item rode in completes in the background
    and its result is discarded.
    """
    if deadline is not None:
        remaining = deadline.remaining_s()
        timeout = remaining if timeout is None else min(timeout, remaining)
    try:
        return future.result(timeout)
    except FuturesTimeoutError:
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                "deadline exceeded awaiting batch result"
            ) from None
        raise


def _accepts_deadline(run_batch: Callable[..., Any]) -> bool:
    """Whether ``run_batch`` takes a third (deadline) positional arg.

    Sniffed once at construction so legacy two-argument callables (and
    every existing test double) keep working unchanged, while the
    coalescers' three-argument runners get the batch deadline forwarded.
    """
    try:
        parameters = inspect.signature(run_batch).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = [
        p for p in parameters
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if any(p.kind == p.VAR_POSITIONAL for p in parameters):
        return True
    return len(positional) >= 3


# reprolint: disable=RL06 -- process-local: lives inside a ServingContext, never pickled
class MicroBatcher:
    """Size-or-deadline micro-batching over a ``run_batch`` callable.

    ``run_batch(key, items)`` must return one result per item, in order.
    :meth:`submit` enqueues an item under ``key`` and returns a
    :class:`~concurrent.futures.Future`; only items with equal keys are
    batched together. A single dispatcher thread watches the queue and
    fires a group when it reaches ``max_batch`` items or its oldest item
    has waited ``max_wait_s`` seconds, whichever comes first.

    Lifecycle: the dispatcher starts with the first :meth:`submit`.
    :meth:`close` drains everything still queued (executing it, not
    cancelling), then stops the thread; submitting after close raises
    ``RuntimeError``.

    Backpressure: ``max_pending`` bounds how many items may sit in the
    queue awaiting dispatch. A submit that would exceed the bound is
    refused with :class:`~repro.errors.ServerOverloaded` — shed, not
    blocked — so a stalled ``run_batch`` can never grow the queue (and
    the process) without limit. ``None`` keeps the historical unbounded
    behaviour.

    Deadlines: an optional :class:`~repro.vectordb.deadline.Deadline`
    rides with each item. Items whose budget is already spent when their
    batch is picked up are failed with ``DeadlineExceeded`` instead of
    being executed, and when ``run_batch`` accepts a third positional
    argument it receives the batch's most generous deadline (the latest
    expiry among its items — a tight budget never fails a batchmate).
    """

    def __init__(
        self,
        run_batch: Callable[[Hashable, list[Any]], Sequence[Any]],
        max_batch: int = 64,
        max_wait_s: float = 0.005,
        name: str = "batcher",
        max_pending: int | None = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(
                f"max_wait_s must be non-negative, got {max_wait_s}"
            )
        if max_pending is not None and max_pending <= 0:
            raise ValueError(
                f"max_pending must be positive or None, got {max_pending}"
            )
        self._run_batch = run_batch
        self._forward_deadline = _accepts_deadline(run_batch)
        self._max_batch = max_batch
        self._max_wait_s = max_wait_s
        self._max_pending = max_pending
        self._name = name
        self._lock = threading.Condition()
        # key -> (first-enqueue monotonic time,
        #         [(item, future, deadline), ...]);
        # insertion order doubles as arrival order of the groups.
        self._groups: dict[
            Hashable, tuple[float, list[tuple[Any, Future, Deadline | None]]]
        ]
        self._groups = {}
        self._queued = 0  # items awaiting dispatch, across all groups
        self._thread: threading.Thread | None = None
        self._closed = False
        self.stats = CoalescerStats()

    # ------------------------------------------------------------------
    # caller side
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Items currently queued awaiting dispatch (the queue depth)."""
        with self._lock:
            return self._queued

    def submit(
        self,
        key: Hashable,
        item: Any,
        deadline: Deadline | None = None,
    ) -> Future:
        """Enqueue ``item`` under ``key``; resolve via the returned future.

        Unhashable keys get a private group (no coalescing, still
        batched machinery). Raises ``RuntimeError`` after :meth:`close`,
        :class:`~repro.errors.ServerOverloaded` when ``max_pending``
        items are already queued, and
        :class:`~repro.errors.DeadlineExceeded` when ``deadline`` is
        already spent (nothing is enqueued in either case).
        """
        if deadline is not None:
            deadline.check("enqueue")
        try:
            hash(key)
        except TypeError:
            key = object()  # unique: a group of its own
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self._name} is closed")
            if (
                self._max_pending is not None
                and self._queued >= self._max_pending
            ):
                self.stats.shed += 1
                raise ServerOverloaded(
                    f"{self._name} queue is full "
                    f"({self._queued}/{self._max_pending} pending)"
                )
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"dispatch-{self._name}",
                    daemon=True,
                )
                self._thread.start()
            entry = self._groups.get(key)
            if entry is None:
                self._groups[key] = (
                    time.monotonic(), [(item, future, deadline)]
                )
            else:
                entry[1].append((item, future, deadline))
            self._queued += 1
            self.stats.requests += 1
            self._lock.notify_all()
        return future

    def close(self, timeout: float | None = 5.0) -> bool:
        """Drain pending requests, then stop the dispatcher (idempotent).

        Returns True when the dispatcher thread is fully stopped (or
        never ran). A dispatcher still alive after ``timeout`` — e.g. a
        ``run_batch`` wedged on I/O — returns False and emits a
        ``RuntimeWarning`` so the leak is visible to warning filters and
        the session leak guard rather than silently orphaned.
        """
        with self._lock:
            if self._closed:
                thread = self._thread
                already_stopped = thread is None or not thread.is_alive()
                if already_stopped:
                    return True
            self._closed = True
            self._lock.notify_all()
            thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout)
        if thread.is_alive():
            warnings.warn(
                f"{self._name} dispatcher failed to stop within "
                f"{timeout}s; its thread is still running",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        return True

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatcher side
    # ------------------------------------------------------------------

    def _take_ready(self, now: float, drain: bool):
        """Pop the most urgent ready group's first ``max_batch`` items.

        Ready = full (``max_batch``), past its deadline, or ``drain``
        (shutdown flushes everything). Returns ``(key, entries)`` or
        ``None``. Called under the lock.
        """
        for key, (first_ts, entries) in self._groups.items():
            if (
                drain
                or len(entries) >= self._max_batch
                or now - first_ts >= self._max_wait_s
            ):
                break
        else:  # no group is ready (note: the key itself may be None)
            return None
        first_ts, entries = self._groups.pop(key)
        batch, rest = entries[: self._max_batch], entries[self._max_batch:]
        if rest:
            # Leftovers start a fresh deadline: they are a new batch.
            self._groups[key] = (now, rest)
        self._queued -= len(batch)
        return key, batch

    def _next_deadline(self, now: float) -> float | None:
        """Seconds until the oldest group must flush (None = no groups)."""
        if not self._groups:
            return None
        oldest = min(first_ts for first_ts, _ in self._groups.values())
        return max(0.0, oldest + self._max_wait_s - now)

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while True:
                    taken = self._take_ready(time.monotonic(), self._closed)
                    if taken is not None:
                        break
                    if self._closed:
                        return  # closed and fully drained
                    self._lock.wait(self._next_deadline(time.monotonic()))
                key, batch = taken
                self.stats.batches += 1
                self.stats.requests_dispatched += len(batch)
                self.stats.max_batch_seen = max(
                    self.stats.max_batch_seen, len(batch)
                )
            self._execute(key, batch)  # outside the lock: submitters go on

    def _call_run_batch(
        self,
        key: Hashable,
        items: list[Any],
        deadline: Deadline | None,
    ) -> Sequence[Any]:
        """One batched execution, behind the chaos injection point."""
        chaos.fire(
            "batcher.run_batch", name=self._name, key=key, items=items
        )
        if self._forward_deadline:
            return self._run_batch(key, items, deadline)
        return self._run_batch(key, items)

    def _drop_expired(
        self, batch: list[tuple[Any, Future, Deadline | None]]
    ) -> list[tuple[Any, Future, Deadline | None]]:
        """Fail already-over-budget entries; return the live remainder."""
        live = []
        for entry in batch:
            deadline = entry[2]
            if deadline is not None and deadline.expired:
                with self._lock:
                    self.stats.expired += 1
                entry[1].set_exception(
                    DeadlineExceeded("deadline exceeded before dispatch")
                )
            else:
                live.append(entry)
        return live

    def _execute(
        self, key: Hashable, batch: list[tuple[Any, Future, Deadline | None]]
    ) -> None:
        batch = self._drop_expired(batch)
        if not batch:
            return
        items = [item for item, _, _ in batch]
        deadlines = [deadline for _, _, deadline in batch]
        # The batch runs under its most generous member's budget; members
        # with tighter budgets are re-checked at the engine's choke
        # points only via their own deadline when retried singly.
        batch_deadline = (
            None
            if any(d is None for d in deadlines)
            else max(deadlines, key=lambda d: d.expires_at)
        )
        try:
            results = self._call_run_batch(key, items, batch_deadline)
            if len(results) != len(items):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for "
                    f"{len(items)} items"
                )
        except BaseException:
            # Error isolation: re-run one by one so only the item(s) that
            # actually fail see an exception — a poison request must not
            # take down the whole batch it happened to ride in.
            for item, future, deadline in batch:
                with self._lock:
                    self.stats.retried_singly += 1
                if deadline is not None and deadline.expired:
                    with self._lock:
                        self.stats.expired += 1
                    future.set_exception(
                        DeadlineExceeded("deadline exceeded before retry")
                    )
                    continue
                try:
                    result = self._call_run_batch(key, [item], deadline)
                except BaseException as exc:  # noqa: BLE001 - to the caller
                    future.set_exception(exc)
                else:
                    future.set_result(result[0])
            return
        for (_, future, _), result in zip(batch, results):
            future.set_result(result)


@dataclass(frozen=True)
class _SearchKey:
    """Everything two searches must share to ride one batched call."""

    collection: str
    k: int
    flt: Filter | None
    exact: bool
    ef: int | None
    rescore_factor: float | None


class SearchCoalescer:
    """Coalesces single vector searches into ``search_batch`` calls.

    Concurrent callers use :meth:`search` exactly like
    :meth:`VectorDBClient.search`; requests agreeing on (collection, k,
    filter, exact, ef, rescore_factor) are stacked into one matrix and
    answered by one
    :meth:`~repro.vectordb.client.VectorDBClient.search_batch` call —
    sharing the filter's candidate-set evaluation and the matrix–matrix
    scoring kernel across clients that never heard of each other.

    Request validation happens *before* enqueueing (unknown collection,
    wrong dimensionality), so malformed requests fail fast in the
    caller's thread and never reach a batch.
    """

    def __init__(
        self,
        client: VectorDBClient,
        max_batch: int = 64,
        max_wait_s: float = 0.005,
        max_pending: int | None = None,
    ) -> None:
        self._client = client
        self._batcher = MicroBatcher(
            self._run, max_batch=max_batch, max_wait_s=max_wait_s,
            name="search-coalescer", max_pending=max_pending,
        )

    @property
    def stats(self) -> CoalescerStats:
        """Dispatch counters (requests, batches, sizes)."""
        return self._batcher.stats

    @property
    def pending(self) -> int:
        """Searches queued awaiting dispatch (the queue depth)."""
        return self._batcher.pending

    def _run(
        self,
        key: _SearchKey,
        vectors: list[np.ndarray],
        deadline: Deadline | None = None,
    ) -> list[list[SearchHit]]:
        return self._client.search_batch(
            key.collection, np.stack(vectors), key.k,
            flt=key.flt, exact=key.exact, ef=key.ef, deadline=deadline,
            rescore_factor=key.rescore_factor,
        )

    def submit(
        self,
        collection: str,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> Future:
        """Enqueue one search; the future resolves to its hit list.

        Raises immediately (not via the future) for an unknown
        collection, a negative ``k``, a query of the wrong
        dimensionality — the pre-batch validation that keeps bad
        requests out of shared batches — an already-spent ``deadline``,
        or a full queue (:class:`~repro.errors.ServerOverloaded`).
        """
        target = self._client.get_collection(collection)
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        query = np.asarray(vector, dtype=np.float32)
        if query.shape != (target.dim,):
            raise DimensionMismatch(
                f"query shape {query.shape} != ({target.dim},)"
            )
        key = _SearchKey(
            collection=collection, k=k, flt=flt, exact=exact, ef=ef,
            rescore_factor=rescore_factor,
        )
        return self._batcher.submit(key, query, deadline=deadline)

    def search(
        self,
        collection: str,
        vector: np.ndarray | Sequence[float],
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        timeout: float | None = 30.0,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> list[SearchHit]:
        """Blocking :meth:`submit`: returns the hits (or re-raises).

        With a ``deadline``, the wait is capped at the remaining budget
        and a timed-out wait raises
        :class:`~repro.errors.DeadlineExceeded` (the request's worker is
        released; the batch it rode in finishes in the background).
        """
        future = self.submit(
            collection, vector, k, flt=flt, exact=exact, ef=ef,
            deadline=deadline, rescore_factor=rescore_factor,
        )
        return _await_future(future, timeout, deadline)

    def close(self) -> None:
        """Flush pending searches and stop the dispatcher."""
        self._batcher.close()


class QueryCoalescer:
    """Coalesces full SemaSK queries into ``query_many`` calls.

    All queries share one group — :meth:`SemaSK.query_many` already
    groups by spatial range internally and embeds every text in one
    ``embed_batch`` call, so pre-splitting here would only shrink the
    batches. ``parallel_refine`` is forwarded so LLM refinement of a
    coalesced batch fans out over threads (refinement is I/O-bound
    against a hosted provider).
    """

    def __init__(
        self,
        system: SemaSK,
        max_batch: int = 32,
        max_wait_s: float = 0.010,
        parallel_refine: int = 4,
        max_pending: int | None = None,
    ) -> None:
        if parallel_refine <= 0:
            raise ValueError(
                f"parallel_refine must be positive, got {parallel_refine}"
            )
        self._system = system
        self._parallel_refine = parallel_refine
        self._batcher = MicroBatcher(
            self._run, max_batch=max_batch, max_wait_s=max_wait_s,
            name="query-coalescer", max_pending=max_pending,
        )

    @property
    def stats(self) -> CoalescerStats:
        """Dispatch counters (requests, batches, sizes)."""
        return self._batcher.stats

    @property
    def pending(self) -> int:
        """Queries queued awaiting dispatch (the queue depth)."""
        return self._batcher.pending

    def _run(
        self, key: Hashable, queries: list[SpatialKeywordQuery]
    ) -> list[QueryResult]:
        return self._system.query_many(
            queries, parallel_refine=min(self._parallel_refine, len(queries))
        )

    def submit(
        self,
        query: SpatialKeywordQuery,
        deadline: Deadline | None = None,
    ) -> Future:
        """Enqueue one pipeline query; resolves to its ``QueryResult``."""
        return self._batcher.submit(None, query, deadline=deadline)

    def query(
        self,
        query: SpatialKeywordQuery,
        timeout: float | None = 60.0,
        deadline: Deadline | None = None,
    ) -> QueryResult:
        """Blocking :meth:`submit` (waits are capped by the deadline)."""
        return _await_future(self.submit(query, deadline), timeout, deadline)

    def close(self) -> None:
        """Flush pending queries and stop the dispatcher."""
        self._batcher.close()
