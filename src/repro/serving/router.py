"""Replica router: health-checked round-robin over N serving processes.

One box stops being enough before one process does anything wrong:
``docs/resilience.md`` describes the fleet topology this module fronts —
N ``repro serve`` replicas loaded from one shared v3 snapshot (cheap:
the snapshot's vector matrices are mmap-ed, so replicas share page
cache), one :class:`ReplicaRouter` spreading reads across them.

Routing policy:

* **Reads** (``GET *``, ``POST /search``, ``POST /query``) round-robin
  over the backends currently in rotation and are retried on transport
  failures and backend 5xx — they are idempotent, so trying a sibling
  replica is always safe. Retries use exponential backoff with jitter
  (:class:`RetryPolicy`) and honor the request's remaining deadline: a
  retry is never attempted past the ``X-Repro-Deadline-Ms`` budget.
* **Writes** (``POST /upsert``, ``/set_payload``, ``/admin/*``) go to
  the *primary* — the first configured backend — and are **never
  retried**: a connection that dies mid-write leaves the write's fate
  unknown, and blindly resending can double-apply on a server that
  processed the request but lost the response. The client decides,
  informed by 502/503.

Health checking: a daemon prober hits every backend's ``/healthz`` each
``health_interval_s``. ``eject_after`` consecutive failures (probe or
routed request) eject a backend from rotation; an ejected backend whose
probe succeeds turns **half-open** — back in rotation for trial traffic
— and becomes healthy again after one more success (probe or request).
One failure while half-open re-ejects it. Reads therefore fail over
within one health-check interval of a replica dying, without a human in
the loop.

:class:`RouterServer` is the HTTP front: it forwards verbatim, adds
``GET /router/healthz`` (the router's own state: per-backend health,
retry/failover counters), and answers 503 when no backend is in
rotation. Start one with ``repro route --backends ...``.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler

from repro.serving.http import _TrackingHTTPServer
from repro.vectordb.deadline import Deadline

__all__ = ["Backend", "ReplicaRouter", "RetryPolicy", "RouterServer"]

#: POST paths that mutate state: primary-only, never retried.
WRITE_PATHS = frozenset(
    {"/upsert", "/set_payload", "/admin/save", "/admin/load"}
)

#: Headers forwarded from the client request to the backend.
_FORWARD_HEADERS = ("Content-Type", "X-Repro-Deadline-Ms")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for idempotent read retries.

    Attempt ``i`` (0-based) sleeps ``base_delay_s * multiplier**i``
    capped at ``max_delay_s``, then scaled by a random factor in
    ``[1 - jitter, 1]`` so a herd of clients retrying a recovering
    backend spreads out instead of stampeding it.
    """

    attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def delay_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        raw = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** attempt
        )
        fraction = (rng or random).random()
        return raw * (1.0 - self.jitter * fraction)


class Backend:
    """One routed replica and its health bookkeeping (router-lock guarded)."""

    def __init__(self, address: str) -> None:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"backend must be 'host:port', got {address!r}"
            )
        self.host = host
        self.port = int(port)
        self.address = address
        self.state = "healthy"  # healthy | ejected | half-open
        self.consecutive_failures = 0
        self.requests = 0
        self.failures = 0

    def snapshot(self) -> dict:
        """JSON-ready view for ``/router/healthz``."""
        return {
            "address": self.address,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "requests": self.requests,
            "failures": self.failures,
        }


# reprolint: disable=RL06 -- holds a lock and a prober thread; process-local
class ReplicaRouter:
    """Round-robin with ejection/half-open health over serving replicas.

    ``backends`` are ``"host:port"`` strings; the first is the write
    primary. :meth:`start` launches the health prober; :meth:`close`
    stops and joins it. :meth:`forward` does one routed request
    (including retries) and returns ``(status, body_bytes)``.
    """

    def __init__(
        self,
        backends: list[str] | tuple[str, ...],
        health_interval_s: float = 0.25,
        eject_after: int = 2,
        retry: RetryPolicy | None = None,
        request_timeout_s: float = 30.0,
        rng: random.Random | None = None,
    ) -> None:
        if not backends:
            raise ValueError("router needs at least one backend")
        if eject_after <= 0:
            raise ValueError(
                f"eject_after must be positive, got {eject_after}"
            )
        self._backends = [Backend(address) for address in backends]
        self._health_interval_s = health_interval_s
        self._eject_after = eject_after
        self._retry = retry or RetryPolicy()
        self._request_timeout_s = request_timeout_s
        self._rng = rng or random.Random()
        self._lock = threading.Lock()
        self._cursor = 0
        self._stop = threading.Event()
        self._prober: threading.Thread | None = None
        self.retries_total = 0
        self.failovers_total = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ReplicaRouter":
        """Launch the health prober (idempotent); returns self."""
        if self._prober is None:
            self._prober = threading.Thread(
                target=self._probe_loop, name="router-prober", daemon=True
            )
            self._prober.start()
        return self

    def close(self) -> None:
        """Stop and join the health prober (idempotent)."""
        self._stop.set()
        prober = self._prober
        if prober is not None:
            prober.join(timeout=5.0)

    def __enter__(self) -> "ReplicaRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- health --------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.wait(self._health_interval_s):
            self.probe_once()

    def probe_once(self) -> None:
        """One probe round: hit every backend's ``/healthz``, update state.

        All I/O happens before any state is touched, so the router lock
        is never held across a socket operation.
        """
        results = [
            (backend, self._probe(backend)) for backend in self._backends
        ]
        with self._lock:
            for backend, alive in results:
                if alive:
                    self._note_success(backend)
                else:
                    self._note_failure(backend)

    def _probe(self, backend: Backend) -> bool:
        timeout = min(1.0, max(0.05, self._health_interval_s))
        try:
            connection = http.client.HTTPConnection(
                backend.host, backend.port, timeout=timeout
            )
            try:
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                response.read()
                return response.status == 200
            finally:
                connection.close()
        except (OSError, http.client.HTTPException):
            return False

    def _note_success(self, backend: Backend) -> None:
        """Healthy traffic/probe: heal one state step. Called under lock."""
        backend.consecutive_failures = 0
        if backend.state == "ejected":
            backend.state = "half-open"  # trial traffic allowed again
        elif backend.state == "half-open":
            backend.state = "healthy"

    def _note_failure(self, backend: Backend) -> None:
        """Failed traffic/probe: count toward ejection. Called under lock."""
        backend.consecutive_failures += 1
        if backend.state == "half-open":
            backend.state = "ejected"  # one strike while on trial
        elif backend.consecutive_failures >= self._eject_after:
            backend.state = "ejected"

    # -- routing -------------------------------------------------------

    def _read_candidates(self) -> list[Backend]:
        """Backends in rotation, starting at the round-robin cursor."""
        with self._lock:
            rotation = [
                b for b in self._backends if b.state != "ejected"
            ]
            if not rotation:
                return []
            start = self._cursor % len(rotation)
            self._cursor += 1
            return rotation[start:] + rotation[:start]

    def _primary(self) -> Backend | None:
        with self._lock:
            primary = self._backends[0]
            return primary if primary.state != "ejected" else None

    def forward(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, bytes]:
        """Route one request; returns ``(status, response_body_bytes)``.

        Reads retry across replicas under the
        :class:`RetryPolicy` and the request's deadline; writes get one
        attempt at the primary. 503 when nothing is in rotation, 504
        when the deadline expires before an answer, 502 when a write's
        backend fails.
        """
        deadline = self._deadline_from(headers)
        if method == "POST" and path in WRITE_PATHS:
            return self._forward_write(method, path, body, headers)
        return self._forward_read(method, path, body, headers, deadline)

    @staticmethod
    def _deadline_from(headers: dict[str, str]) -> Deadline | None:
        raw = headers.get("X-Repro-Deadline-Ms")
        if raw is None:
            return None
        try:
            return Deadline.after_ms(float(raw))
        except ValueError:
            return None  # the backend will answer 400 for the bad header

    def _forward_write(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, bytes]:
        primary = self._primary()
        if primary is None:
            return 503, _json_error(
                "write primary is not in rotation; retry after it heals"
            )
        outcome = self._request(
            primary, method, path, body, headers, self._request_timeout_s
        )
        if outcome is None:
            # The write's fate on the backend is unknown — surface 502
            # and let the *caller* decide whether resending is safe.
            with self._lock:
                self._note_failure(primary)
            return 502, _json_error(
                f"write to primary {primary.address} failed; not retried "
                "(write outcome unknown)"
            )
        with self._lock:
            self._note_success(primary)
        return outcome

    def _forward_read(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
        deadline: Deadline | None,
    ) -> tuple[int, bytes]:
        last_5xx: tuple[int, bytes] | None = None
        for attempt in range(self._retry.attempts):
            if deadline is not None and deadline.expired:
                return 504, _json_error(
                    "deadline exceeded while routing (budget spent "
                    f"after {attempt} attempt(s))"
                )
            candidates = self._read_candidates()
            if not candidates:
                return 503, _json_error("no backend in rotation")
            outcome = None
            backend = None
            for backend in candidates:
                timeout = self._request_timeout_s
                if deadline is not None:
                    remaining = deadline.remaining_s()
                    if remaining <= 0:
                        return 504, _json_error(
                            "deadline exceeded while routing"
                        )
                    timeout = min(timeout, remaining)
                outcome = self._request(
                    backend, method, path, body, headers, timeout
                )
                if outcome is not None and outcome[0] < 500:
                    with self._lock:
                        self._note_success(backend)
                        if backend is not candidates[0]:
                            self.failovers_total += 1
                    return outcome
                # Transport failure or backend 5xx: a sibling replica
                # can answer this read — mark and move on.
                with self._lock:
                    self._note_failure(backend)
                    self.failovers_total += 1
                if outcome is not None:
                    last_5xx = outcome
            if attempt + 1 >= self._retry.attempts:
                break
            delay = self._retry.delay_s(attempt, self._rng)
            if deadline is not None and deadline.remaining_s() <= delay:
                return 504, _json_error(
                    "deadline exceeded before the next retry"
                )
            with self._lock:
                self.retries_total += 1
            time.sleep(delay)
        if last_5xx is not None:
            return last_5xx
        return 502, _json_error(
            f"every backend failed after {self._retry.attempts} attempt(s)"
        )

    def _request(
        self,
        backend: Backend,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
        timeout: float,
    ) -> tuple[int, bytes] | None:
        """One backend HTTP exchange; None means transport failure."""
        with self._lock:
            backend.requests += 1
        try:
            connection = http.client.HTTPConnection(
                backend.host, backend.port, timeout=timeout
            )
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                return response.status, response.read()
            finally:
                connection.close()
        except (OSError, http.client.HTTPException):
            with self._lock:
                backend.failures += 1
            return None

    # -- introspection -------------------------------------------------

    def snapshot(self) -> dict:
        """The ``/router/healthz`` body."""
        with self._lock:
            return {
                "status": "ok",
                "backends": [b.snapshot() for b in self._backends],
                "retries_total": self.retries_total,
                "failovers_total": self.failovers_total,
                "policy": {
                    "attempts": self._retry.attempts,
                    "base_delay_s": self._retry.base_delay_s,
                    "max_delay_s": self._retry.max_delay_s,
                    "eject_after": self._eject_after,
                    "health_interval_s": self._health_interval_s,
                },
            }


def _json_error(message: str) -> bytes:
    return json.dumps({"error": message}).encode("utf-8")


class _RouterHandler(BaseHTTPRequestHandler):
    """Forwards requests through the bound :class:`ReplicaRouter`."""

    protocol_version = "HTTP/1.1"
    router: ReplicaRouter  # injected by RouterServer
    server: _TrackingHTTPServer

    MAX_BODY_BYTES = 8 * 1024 * 1024

    def log_message(self, *args: object) -> None:
        """Silence per-request stderr logging."""

    def _send(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if status == 429:
            self.send_header("Retry-After", "1")
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _forward(self, body: bytes | None) -> None:
        if not self.server.request_began():
            self.close_connection = True
            self._send(429, _json_error("router overloaded"))
            return
        try:
            headers = {
                name: value
                for name in _FORWARD_HEADERS
                if (value := self.headers.get(name)) is not None
            }
            if body is not None:
                headers["Content-Length"] = str(len(body))
            status, payload = self.router.forward(
                self.command, self.path, body, headers
            )
            self._send(status, payload)
        except (OSError, ValueError) as exc:
            self._send(500, _json_error(f"router error: {exc}"))
        finally:
            self.server.request_finished()

    def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
        if self.path == "/router/healthz":
            body = json.dumps(self.router.snapshot()).encode("utf-8")
            self._send(200, body)
            return
        self._forward(None)

    def do_POST(self) -> None:  # noqa: N802 (stdlib API name)
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            length = -1
        if length <= 0:
            self.close_connection = True
            self._send(411, _json_error("Content-Length required"))
            return
        if length > self.MAX_BODY_BYTES:
            self.close_connection = True
            self._send(413, _json_error("request body too large"))
            return
        self._forward(self.rfile.read(length))


# reprolint: disable=RL06 -- owns live sockets and threads; never pickled
class RouterServer:
    """The :class:`ReplicaRouter` behind an HTTP server (CLI: ``repro route``).

    Mirrors :class:`~repro.serving.http.ServingServer`'s lifecycle:
    ``port=0`` binds ephemerally, :meth:`start` serves on a daemon
    thread, :meth:`shutdown` is graceful and idempotent and also closes
    the router (prober joined).
    """

    def __init__(
        self,
        router: ReplicaRouter,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_inflight: int | None = None,
    ) -> None:
        handler = type("BoundRouterHandler", (_RouterHandler,), {
            "router": router,
        })
        self._router = router
        self._httpd = _TrackingHTTPServer(
            (host, port), handler, max_inflight=max_inflight
        )
        self._thread: threading.Thread | None = None
        self._shutdown_once = threading.Lock()
        self._shut_down = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL of the bound router."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RouterServer":
        """Serve in a background daemon thread; starts the prober too."""
        self._router.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="router-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or ^C)."""
        self._router.start()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting, drain handlers, stop the prober (idempotent)."""
        with self._shutdown_once:
            if self._shut_down:
                return
            self._shut_down = True
        if threading.current_thread() is not self._thread:
            self._httpd.shutdown()
        self._httpd.wait_idle(timeout=10.0)
        self._httpd.server_close()
        if self._thread is not None and (
            threading.current_thread() is not self._thread
        ):
            self._thread.join(timeout=5.0)
        self._router.close()

    def __enter__(self) -> "RouterServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
