"""Concurrent query serving: coalescing, HTTP endpoints, process workers.

The online half of the system (see ``docs/serving.md`` and
``docs/architecture.md``): :mod:`~repro.serving.batcher` turns concurrent
single-query callers into batched engine calls,
:mod:`~repro.serving.http` exposes the engine over stdlib HTTP
(``repro serve``), :mod:`~repro.serving.workers` scales GIL-bound filter
evaluation with one worker process per shard, and
:mod:`~repro.serving.bootstrap` cold-starts a server from a prepared-city
snapshot.
"""

from repro.serving.batcher import (
    CoalescerStats,
    MicroBatcher,
    QueryCoalescer,
    SearchCoalescer,
)
from repro.serving.bootstrap import load_or_prepare
from repro.serving.http import (
    BadRequest,
    ServingContext,
    ServingServer,
    filter_from_json,
)
from repro.serving.workers import ProcessShardExecutor

__all__ = [
    "BadRequest",
    "CoalescerStats",
    "MicroBatcher",
    "ProcessShardExecutor",
    "QueryCoalescer",
    "SearchCoalescer",
    "ServingContext",
    "ServingServer",
    "filter_from_json",
    "load_or_prepare",
]
