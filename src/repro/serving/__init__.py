"""Concurrent query serving: coalescing, HTTP endpoints, process workers.

The online half of the system (see ``docs/serving.md``,
``docs/resilience.md`` and ``docs/architecture.md``):
:mod:`~repro.serving.batcher` turns concurrent single-query callers into
batched engine calls (with bounded, load-shedding queues),
:mod:`~repro.serving.http` exposes the engine over stdlib HTTP
(``repro serve``) with per-request deadline budgets and ``/metrics``,
:mod:`~repro.serving.router` fronts N replicas with health-checked
round-robin and read retries (``repro route``),
:mod:`~repro.serving.metrics` holds the latency histograms,
:mod:`~repro.serving.workers` scales GIL-bound filter evaluation with
one worker process per shard, and :mod:`~repro.serving.bootstrap`
cold-starts a server from a prepared-city snapshot.
"""

from repro.serving.batcher import (
    CoalescerStats,
    MicroBatcher,
    QueryCoalescer,
    SearchCoalescer,
)
from repro.serving.bootstrap import load_or_prepare
from repro.serving.http import (
    BadRequest,
    HttpError,
    ServingContext,
    ServingServer,
    filter_from_json,
)
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.serving.router import (
    Backend,
    ReplicaRouter,
    RetryPolicy,
    RouterServer,
)
from repro.serving.workers import ProcessShardExecutor

__all__ = [
    "Backend",
    "BadRequest",
    "CoalescerStats",
    "HttpError",
    "LatencyHistogram",
    "MicroBatcher",
    "ProcessShardExecutor",
    "QueryCoalescer",
    "ReplicaRouter",
    "RetryPolicy",
    "RouterServer",
    "SearchCoalescer",
    "ServingContext",
    "ServingMetrics",
    "ServingServer",
    "filter_from_json",
    "load_or_prepare",
]
