"""Process-per-shard execution for sharded collections.

Thread fan-out (the :class:`~repro.vectordb.sharded.ShardedCollection`
default) parallelizes the BLAS scoring kernel, which releases the GIL —
but the *Python* half of a filtered search (evaluating the payload filter
over every candidate, building hit objects) still serializes on one
interpreter. :class:`ProcessShardExecutor` removes that ceiling: it keeps
one **long-lived worker process per shard**, each holding a replica of
its shard, and routes fan-out reads to the workers over pipes. Filter
evaluation then runs in N interpreters at once, so filtered throughput
scales with shard count instead of plateauing at one core's worth of
Python.

The tradeoffs, so operators can choose deliberately
(``repro serve --shard-workers process``, or
:meth:`ShardedCollection.set_parallel`):

* **Memory** — every shard is replicated into its worker (vectors,
  payloads, graph). Roughly doubles resident size.
* **IPC cost** — queries and hit lists are pickled across pipes. For
  small, cheap searches the round-trip can exceed the search itself;
  process workers pay off when per-shard work (filter evaluation over
  many payloads, large batches) dominates.
* **Writes** — the parent's shards stay authoritative; writes are applied
  locally and mirrored synchronously to the owning worker, so replicas
  answer identically. Write throughput therefore pays one extra pickle
  per bucket.

Workers are daemonic and shut down on :meth:`ProcessShardExecutor.close`
(a sentinel drains the pipe, then join-with-timeout, then terminate), so
a served deployment never leaks children — locked down by
``tests/test_serving.py``.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.vectordb.collection import Collection
from repro.vectordb.sharded import _build_pool_context


def _shard_worker_main(conn, shard: Collection) -> None:
    """Worker-process loop: execute shard method calls received over ``conn``.

    Module-level so it imports under both ``fork`` and ``spawn`` start
    methods. The protocol is ``(method, args, kwargs)`` tuples in,
    ``("ok", result)`` or ``("error", exception)`` back; ``None`` is the
    shutdown sentinel. Exceptions are caught and shipped back rather than
    killing the worker, so one bad request does not take the shard
    offline.
    """
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died or closed the pipe: exit quietly
            if message is None:
                break
            method, args, kwargs = message
            try:
                result: Any = ("ok", getattr(shard, method)(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                result = ("error", exc)
            try:
                conn.send(result)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()


class ProcessShardExecutor:
    """One long-lived worker process per shard, speaking over pipes.

    Drop-in for :class:`~repro.vectordb.sharded.ThreadShardExecutor`
    behind the ``ShardedCollection`` executor seam. Each worker receives
    a pickled replica of its shard at startup (graphs included — built
    HNSW indexes pickle); reads fan out by sending the method call to
    every addressed worker and collecting replies on an I/O thread pool,
    so per-shard work overlaps across processes while the parent threads
    merely block in ``recv``.

    Raises ``OSError`` (or the platform's process-start failure) from the
    constructor when worker processes cannot be spawned; callers treat
    that as "process mode unavailable" and stay on threads.
    """

    kind = "process"

    def __init__(self, shards: Sequence[Collection], name: str) -> None:
        context = _build_pool_context()
        self._workers: list[tuple[multiprocessing.Process, Any]] = []
        self._locks: list[threading.Lock] = []
        try:
            for index, shard in enumerate(shards):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_conn, shard),
                    name=f"shard-worker-{name}-{index:02d}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers.append((process, parent_conn))
                self._locks.append(threading.Lock())
        except BaseException:
            self.close()
            raise
        self._io_pool = ThreadPoolExecutor(
            max_workers=max(len(self._workers), 1),
            thread_name_prefix=f"shard-io-{name}",
        )
        self._closed = False

    def __getstate__(self) -> None:
        raise TypeError(
            "ProcessShardExecutor holds live worker processes, pipes, and "
            "locks and cannot be pickled; replicas are built from pickled "
            "shard Collections, never from the executor itself"
        )

    def _call(self, index: int, method: str, args: tuple, kwargs: dict) -> Any:
        """One synchronous round-trip to worker ``index`` (thread-safe).

        The per-worker lock pairs each ``send`` with its ``recv`` so
        concurrent parent threads cannot interleave replies; different
        workers proceed in parallel. A worker-side exception is re-raised
        here, in the caller's thread, exactly as the thread executor
        would propagate it.
        """
        process, conn = self._workers[index]
        with self._locks[index]:
            if self._closed:
                raise RuntimeError("process shard executor is closed")
            try:
                # The per-worker lock exists precisely to serialize this
                # send/recv pair; holding it across the pipe round-trip is
                # the design, and other workers' locks are untouched so
                # shards still overlap.
                conn.send((method, args, kwargs))  # reprolint: disable=RL03 -- lock serializes this pipe
                status, payload = conn.recv()  # reprolint: disable=RL03 -- paired recv under same lock
            except (EOFError, OSError):
                # Worker death or a concurrent close() tearing the pipe
                # down mid-call — either way the shard is gone.
                raise RuntimeError(
                    f"shard worker {process.name} exited unexpectedly"
                ) from None
        if status == "error":
            raise payload
        return payload

    def run(
        self, indices: Sequence[int], method: str, *args: Any, **kwargs: Any
    ) -> list[Any]:
        """Call ``method`` on each addressed worker; results in order."""
        if len(indices) == 1:
            return [self._call(indices[0], method, args, kwargs)]
        return list(
            self._io_pool.map(
                lambda i: self._call(i, method, args, kwargs), indices
            )
        )

    def mirror_write(
        self, index: int, method: str, *args: Any, **kwargs: Any
    ) -> None:
        """Apply a write to worker ``index``'s replica (synchronously).

        Synchronous on purpose: once the parent's write call returns, a
        read through the executor must already see it.
        """
        self._call(index, method, args, kwargs)

    def close(self, wait: bool = False) -> None:
        """Stop every worker process (idempotent; never leaks children).

        Sends the shutdown sentinel, joins briefly, and terminates any
        worker that did not exit (e.g. one wedged mid-request). ``wait``
        is accepted for seam parity; process shutdown always joins.

        Each worker's request lock is taken (bounded) before its pipe is
        touched: an in-flight :meth:`_call` holds the lock across its
        send/recv pair, so close waits for that reply rather than
        closing the ``Connection`` out from under a blocked ``recv``
        (the object is not safe for concurrent use from two threads). A
        worker wedged past the bound is terminated regardless.
        """
        self._closed = True
        pool = getattr(self, "_io_pool", None)
        if pool is not None:
            pool.shutdown(wait=wait)
        for index, (process, conn) in enumerate(self._workers):
            lock = self._locks[index] if index < len(self._locks) else None
            acquired = lock.acquire(timeout=5.0) if lock is not None else False
            try:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                conn.close()
            finally:
                if acquired:
                    lock.release()
        for process, _ in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._workers = []
