"""Serving metrics: request counters and log-bucketed latency histograms.

One :class:`ServingMetrics` per server process, updated by the HTTP
dispatch path and read by the ``/metrics`` endpoint (and, abbreviated,
by ``/healthz``). Everything is fixed-size: counters plus a
:class:`LatencyHistogram` per route, whose buckets are a static
logarithmic ladder — a server can run indefinitely without the metrics
object growing, and a snapshot is O(routes × buckets).

Quantiles are read from the bucket ladder the way Prometheus histograms
are: ``quantile_ms(0.99)`` returns the upper bound of the bucket the
99th-percentile observation fell into. That is an over-estimate by at
most one bucket width (~2× at this ladder's resolution) — the right
trade for an always-on histogram, and consistently conservative, so
benchmark floors asserted against it hold against the true p99 too.

Route cardinality is bounded by construction: the handler normalizes
unknown paths to ``"other"`` before observing, so a scanner probing
random URLs cannot grow the route map.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

__all__ = ["LatencyHistogram", "ServingMetrics"]

# Upper bounds (ms) of the latency buckets: ~sub-ms to tens of seconds,
# roughly doubling. The final implicit bucket catches everything slower.
BUCKET_BOUNDS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 30000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (not thread-safe on its own).

    :class:`ServingMetrics` serializes access under its lock; use that,
    or guard concurrent observers yourself.
    """

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)  # +1: overflow
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation (given in seconds)."""
        ms = seconds * 1000.0
        self.counts[bisect_left(BUCKET_BOUNDS_MS, ms)] += 1
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def quantile_ms(self, q: float) -> float:
        """Upper bucket bound at quantile ``q`` (0.0 when empty).

        Overflow-bucket observations report the recorded maximum — the
        ladder has no upper bound to name, and the true value is ≤ max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, round(q * self.count))
        cumulative = 0
        for bucket, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if bucket < len(BUCKET_BOUNDS_MS):
                    return BUCKET_BOUNDS_MS[bucket]
                return self.max_ms
        return self.max_ms

    def snapshot(self) -> dict:
        """JSON-ready summary (counts, mean, p50/p90/p99, max)."""
        mean_ms = self.sum_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean_ms, 3),
            "p50_ms": round(self.quantile_ms(0.50), 3),
            "p90_ms": round(self.quantile_ms(0.90), 3),
            "p99_ms": round(self.quantile_ms(0.99), 3),
            "max_ms": round(self.max_ms, 3),
        }


# reprolint: disable=RL06 -- process-local: lives inside a ServingContext, never pickled
class ServingMetrics:
    """Thread-safe request counters + per-route latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._histograms: dict[str, LatencyHistogram] = {}
        self.requests_total = 0
        self.shed_total = 0              # 429s: queue/in-flight saturation
        self.deadline_exceeded_total = 0  # 504s: budget spent
        self.errors_total = 0            # other 4xx/5xx responses

    def observe(self, route: str, status: int, seconds: float) -> None:
        """Record one completed request: route, response status, latency."""
        with self._lock:
            self.requests_total += 1
            if status == 429:
                self.shed_total += 1
            elif status == 504:
                self.deadline_exceeded_total += 1
            elif status >= 400:
                self.errors_total += 1
            histogram = self._histograms.get(route)
            if histogram is None:
                histogram = self._histograms[route] = LatencyHistogram()
            histogram.observe(seconds)

    def snapshot(self) -> dict:
        """The ``/metrics`` body (sans server-level in-flight fields)."""
        with self._lock:
            return {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests_total": self.requests_total,
                "shed_total": self.shed_total,
                "deadline_exceeded_total": self.deadline_exceeded_total,
                "errors_total": self.errors_total,
                "latency_ms": {
                    route: histogram.snapshot()
                    for route, histogram in sorted(self._histograms.items())
                },
            }

    def counters(self) -> dict:
        """The abbreviated view ``/healthz`` embeds (counters only)."""
        with self._lock:
            return {
                "requests_total": self.requests_total,
                "shed_total": self.shed_total,
                "deadline_exceeded_total": self.deadline_exceeded_total,
                "errors_total": self.errors_total,
            }
