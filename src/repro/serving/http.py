"""The HTTP serving layer: stdlib server, JSON bodies, coalesced execution.

:class:`ServingContext` owns the runtime state — a
:class:`~repro.vectordb.client.VectorDBClient`, an optional
:class:`~repro.core.pipeline.SemaSK` pipeline, and the request
coalescers — and exposes the operations the endpoints need.
:class:`ServingServer` wraps it in a ``ThreadingHTTPServer`` (one thread
per connection; no third-party framework), so every scenario the engine
supports is reachable with ``curl``. Endpoints:

========  ======================  ==========================================
method    path                    purpose
========  ======================  ==========================================
GET       ``/healthz``            liveness + coalescer + WAL + queue stats
GET       ``/metrics``            latency histograms, shed counts, depths
GET       ``/collections``        list collections with point counts
POST      ``/search``             one vector kNN search (coalesced)
POST      ``/query``              one natural-language SemaSK query
POST      ``/upsert``             insert points into a collection
POST      ``/set_payload``        merge payload fields into one point
POST      ``/admin/save``         snapshot a collection to a directory
POST      ``/admin/load``         load a snapshot (mmap and/or WAL)
========  ======================  ==========================================

Durability: writes accepted over ``/upsert`` / ``/set_payload`` are
logged to a per-shard write-ahead log when the served collection has one
attached (``repro serve --wal MODE``, or ``/admin/load`` with a ``wal``
mode). ``/healthz`` then reports the per-collection WAL depth so
operators can see how many acknowledged writes the next ``/admin/save``
would fold into the snapshot; a successful save truncates the log. With
no WAL attached the write endpoints still work — writes are simply
RAM-only until the next save, exactly as before this layer existed.

Request/response schemas are documented in ``docs/serving.md`` (with curl
examples); ``examples/serve_and_query.py`` exercises every endpoint
end-to-end. Errors return ``{"error": ...}`` with 400 (bad request), 404
(unknown path/collection), 411/413 (missing/oversized body), 429
(overloaded — with ``Retry-After``), 504 (deadline exceeded), or 500
(unexpected).

Resilience (see ``docs/resilience.md``): a request may carry a deadline
budget in the ``X-Repro-Deadline-Ms`` header — once spent, the request
answers 504 at the next choke point instead of occupying a worker — and
the server sheds load with 429 when ``max_inflight`` handlers are busy
or a coalescer's ``max_pending`` queue is full, never blocking or
buffering without bound.

Concurrency model: ``ThreadingHTTPServer`` parks each connection in its
own thread; handler threads block on coalescer futures, so concurrent
``/search`` requests ride one ``search_batch`` call (see
:mod:`repro.serving.batcher`). ``coalesce: false`` in a request body
opts that request out — used by the serving benchmark's baseline arm.

Shutdown is graceful: :meth:`ServingServer.shutdown` stops accepting,
finishes in-flight handlers, flushes the coalescers, and closes the
context exactly once, whether triggered by SIGINT/SIGTERM (the
``repro serve`` CLI installs handlers), the context manager, or a test.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.pipeline import SemaSK
from repro.core.query import SpatialKeywordQuery
from repro.core.results import QueryResult
from repro.errors import (
    CollectionNotFound,
    DeadlineExceeded,
    DimensionMismatch,
    ReproError,
    ServerOverloaded,
)
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint
from repro.serving.batcher import QueryCoalescer, SearchCoalescer
from repro.serving.metrics import ServingMetrics
from repro.testing import chaos
from repro.vectordb.client import VectorDBClient
from repro.vectordb.collection import PointStruct, SearchHit
from repro.vectordb.deadline import Deadline
from repro.vectordb.filters import (
    And,
    FieldIn,
    FieldMatch,
    FieldRange,
    Filter,
    GeoBoundingBoxFilter,
    GeoRadiusFilter,
    Not,
    Or,
)


class BadRequest(ValueError):
    """A client error that should surface as HTTP 400."""


class HttpError(ReproError):
    """An error carrying its own HTTP status (411, 413, ...)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def filter_from_json(spec: Any) -> Filter | None:
    """Build a payload filter from its JSON wire form (None passes through).

    The wire form mirrors the filter classes, one key per node::

        {"match":  {"key": "city", "value": "Saint Louis"}}
        {"in":     {"key": "city", "values": ["SL", "SB"]}}
        {"range":  {"key": "stars", "gte": 3.0, "lte": 5.0}}
        {"geo_bounding_box": {"key": "location", "min_lat": ..,
                              "min_lon": .., "max_lat": .., "max_lon": ..}}
        {"geo_radius": {"key": "location", "lat": .., "lon": ..,
                        "radius_km": ..}}
        {"must": [..]}  {"should": [..]}  {"must_not": ..}

    Raises :class:`BadRequest` for malformed specs (unknown node, wrong
    arity, bad field types) so the endpoint can answer 400.
    """
    if spec is None:
        return None
    if not isinstance(spec, dict) or len(spec) != 1:
        raise BadRequest(
            "filter must be a one-key object, e.g. {'match': {...}}"
        )
    (node, body), = spec.items()
    try:
        if node == "match":
            return FieldMatch(body["key"], body["value"])
        if node == "in":
            return FieldIn(body["key"], body["values"])
        if node == "range":
            return FieldRange(
                body["key"], gte=body.get("gte"), lte=body.get("lte")
            )
        if node == "geo_bounding_box":
            return GeoBoundingBoxFilter(
                body["key"],
                BoundingBox(
                    min_lat=float(body["min_lat"]),
                    min_lon=float(body["min_lon"]),
                    max_lat=float(body["max_lat"]),
                    max_lon=float(body["max_lon"]),
                ),
            )
        if node == "geo_radius":
            return GeoRadiusFilter(
                body["key"], float(body["lat"]), float(body["lon"]),
                float(body["radius_km"]),
            )
        if node == "must":
            return And(*(filter_from_json(child) for child in body))
        if node == "should":
            return Or(*(filter_from_json(child) for child in body))
        if node == "must_not":
            return Not(filter_from_json(body))
    except BadRequest:
        raise
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise BadRequest(f"bad {node!r} filter: {exc}") from exc
    raise BadRequest(f"unknown filter node {node!r}")


def _hit_to_json(hit: SearchHit, with_payload: bool = True) -> dict:
    body = {"id": hit.id, "score": float(hit.score)}
    if with_payload:
        body["payload"] = hit.payload
    return body


def _result_to_json(result: QueryResult) -> dict:
    return {
        "query": result.query_text,
        "entries": [asdict(entry) for entry in result.entries],
        "filtered_out": [asdict(entry) for entry in result.filtered_out],
        "candidates_considered": result.candidates_considered,
        "timings": {
            "filter_s": result.timings.filter_s,
            "refine_compute_s": result.timings.refine_compute_s,
            "refine_modeled_s": result.timings.refine_modeled_s,
        },
    }


class ServingContext:
    """Everything a serving process holds: client, pipeline, coalescers.

    ``system`` is optional — a pure vector-store deployment serves
    ``/search`` without a SemaSK pipeline, and ``/query`` then answers
    400. ``coalesce=False`` builds no coalescers at all (every request
    executes directly); per-request ``coalesce: false`` opts out
    selectively when they exist. Close (or use as a context manager) to
    flush the coalescers; the client's collections are closed too when
    ``own_client=True``, which is what the CLI wants — tests that share
    a corpus across cases pass ``own_client=False``.
    """

    def __init__(
        self,
        client: VectorDBClient,
        system: SemaSK | None = None,
        default_center: GeoPoint | None = None,
        coalesce: bool = True,
        max_batch: int = 64,
        max_wait_s: float = 0.005,
        parallel_refine: int = 4,
        own_client: bool = True,
        max_pending: int | None = None,
    ) -> None:
        self._client = client
        self._system = system
        self._default_center = default_center
        self._own_client = own_client
        self._started = time.monotonic()
        self._closed = False
        self.metrics = ServingMetrics()
        self._search_coalescer = (
            SearchCoalescer(
                client, max_batch=max_batch, max_wait_s=max_wait_s,
                max_pending=max_pending,
            )
            if coalesce else None
        )
        self._query_coalescer = (
            QueryCoalescer(
                system, max_batch=max_batch, max_wait_s=max_wait_s,
                parallel_refine=parallel_refine, max_pending=max_pending,
            )
            if coalesce and system is not None else None
        )

    @property
    def client(self) -> VectorDBClient:
        """The underlying vector-database client."""
        return self._client

    # ------------------------------------------------------------------
    # operations behind the endpoints
    # ------------------------------------------------------------------

    def search(
        self,
        collection: str,
        vector: Any,
        k: int,
        flt: Filter | None = None,
        exact: bool = False,
        ef: int | None = None,
        coalesce: bool = True,
        deadline: Deadline | None = None,
        rescore_factor: float | None = None,
    ) -> list[SearchHit]:
        """One kNN search, coalesced with concurrent callers by default.

        ``deadline`` is the request's remaining budget: an expired one
        raises :class:`~repro.errors.DeadlineExceeded` before any engine
        work is dispatched, and a live one rides along to the engine's
        choke points (and caps the coalesced wait). ``rescore_factor``
        tunes the quantized tier's exact-rescore candidate pool
        (ignored for float32-only collections).
        """
        if deadline is not None:
            deadline.check("search dispatch")
        if self._search_coalescer is not None and coalesce:
            return self._search_coalescer.search(
                collection, vector, k, flt=flt, exact=exact, ef=ef,
                deadline=deadline, rescore_factor=rescore_factor,
            )
        return self._client.search(
            collection, vector, k, flt=flt, exact=exact, ef=ef,
            deadline=deadline, rescore_factor=rescore_factor,
        )

    def query(
        self,
        text: str,
        lat: float | None = None,
        lon: float | None = None,
        range_km: float = 5.0,
        coalesce: bool = True,
        deadline: Deadline | None = None,
    ) -> QueryResult:
        """One natural-language SemaSK query around (lat, lon).

        Falls back to the context's ``default_center`` only when *both*
        coordinates are absent; a half-specified location (one of
        lat/lon) is rejected rather than silently answered around the
        default center. Raises :class:`BadRequest` for that, for absent
        coordinates with no default center, and when no pipeline is
        configured.
        """
        if self._system is None:
            raise BadRequest("this server exposes no query pipeline")
        if (lat is None) != (lon is None):
            raise BadRequest(
                "provide both lat and lon, or neither (got only one)"
            )
        if lat is None and lon is None:
            if self._default_center is None:
                raise BadRequest("request needs lat/lon (no default center)")
            center = self._default_center
        else:
            try:
                center = GeoPoint(float(lat), float(lon))
            except (TypeError, ValueError) as exc:
                raise BadRequest(str(exc)) from exc
        try:
            query = SpatialKeywordQuery.around(
                center, text, range_km, range_km
            )
        except ReproError as exc:  # e.g. empty query text
            raise BadRequest(str(exc)) from exc
        if deadline is not None:
            deadline.check("query dispatch")
        if self._query_coalescer is not None and coalesce:
            return self._query_coalescer.query(query, deadline=deadline)
        return self._system.query(query)

    def collections(self) -> list[dict]:
        """Info dicts for every collection, sorted by name."""
        return [
            self._client.collection_info(name)
            for name in self._client.list_collections()
        ]

    def upsert(self, collection: str, points: list[dict]) -> dict:
        """Insert points (``{"id", "vector", "payload"?}`` dicts).

        Applied — and, when the collection has a WAL attached, logged —
        before the response is sent, so an acknowledged write survives a
        crash under ``fsync="always"`` (and a crash after the next flush
        window under ``"batch"``).
        """
        structs = []
        for row in points:
            if not isinstance(row, dict) or "id" not in row or "vector" not in row:
                raise BadRequest(
                    "each point needs at least 'id' and 'vector' fields"
                )
            payload = row.get("payload") or {}
            if not isinstance(payload, dict):
                raise BadRequest("point 'payload' must be an object")
            try:
                vector = np.asarray(row["vector"], dtype=np.float32)
            except (TypeError, ValueError) as exc:
                raise BadRequest(f"bad vector: {exc}") from exc
            structs.append(
                PointStruct(id=str(row["id"]), vector=vector, payload=payload)
            )
        inserted = self._client.upsert(collection, structs)
        target = self._client.get_collection(collection)
        return {
            "collection": collection,
            "received": len(structs),
            "inserted": inserted,
            "points": len(target),
            "wal": target.wal_stats(),
        }

    def set_payload(
        self, collection: str, point_id: str, payload: dict
    ) -> dict:
        """Merge payload fields into one point (logged like upserts)."""
        self._client.set_payload(collection, point_id, payload)
        target = self._client.get_collection(collection)
        return {
            "collection": collection,
            "id": point_id,
            "payload": target.retrieve(point_id).payload,
            "wal": target.wal_stats(),
        }

    def save_snapshot(self, collection: str, directory: str) -> dict:
        """Snapshot ``collection`` to ``directory`` (atomic); returns info.

        Safe under concurrent writes: the save captures the state under
        the collection's write lock(s), and any attached WAL is truncated
        through the captured offset afterwards — the response's ``wal``
        depth reflects that.
        """
        self._client.save(collection, directory)
        return {
            "collection": collection,
            "directory": str(Path(directory)),
            "wal": self._client.get_collection(collection).wal_stats(),
        }

    def load_snapshot(
        self, directory: str, mmap: bool = False, wal: str | None = None
    ) -> dict:
        """Load a snapshot into the client; returns the collection info.

        Replays any WAL tail beside the snapshot; ``wal`` (an fsync
        mode) attaches live logs so writes served afterwards are durable.
        """
        collection = self._client.load(directory, mmap=mmap, wal=wal)
        return self._client.collection_info(collection.name)

    def queue_depths(self) -> dict:
        """Current coalescer queue depths (items awaiting dispatch)."""
        depths = {}
        if self._search_coalescer is not None:
            depths["search"] = self._search_coalescer.pending
        if self._query_coalescer is not None:
            depths["query"] = self._query_coalescer.pending
        return depths

    def health(self) -> dict:
        """The ``/healthz`` body: liveness, uptime, coalescer + WAL stats."""
        body: dict = {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "collections": self._client.list_collections(),
            "pipeline": self._system.name if self._system else None,
            "coalescing": self._search_coalescer is not None,
            "queue_depths": self.queue_depths(),
            "backpressure": self.metrics.counters(),
        }
        if self._search_coalescer is not None:
            body["search_coalescer"] = self._search_coalescer.stats.snapshot()
        if self._query_coalescer is not None:
            body["query_coalescer"] = self._query_coalescer.stats.snapshot()
        # Per-collection WAL depth (records awaiting the next snapshot
        # truncation); None when that collection's durability is off.
        wal = {
            name: self._client.get_collection(name).wal_stats()
            for name in self._client.list_collections()
        }
        body["wal"] = wal if any(v is not None for v in wal.values()) else None
        return body

    def metrics_body(self) -> dict:
        """The ``/metrics`` body: counters, histograms, queue depths."""
        body = self.metrics.snapshot()
        body["queue_depths"] = self.queue_depths()
        coalescers = {}
        if self._search_coalescer is not None:
            coalescers["search"] = self._search_coalescer.stats.snapshot()
        if self._query_coalescer is not None:
            coalescers["query"] = self._query_coalescer.stats.snapshot()
        body["coalescers"] = coalescers
        return body

    def close(self) -> None:
        """Flush coalescers; close the client if owned (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._search_coalescer is not None:
            self._search_coalescer.close()
        if self._query_coalescer is not None:
            self._query_coalescer.close()
        if self._own_client:
            self._client.close()

    def __enter__(self) -> "ServingContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# reprolint: disable=RL06 -- a live socket server is never pickled
class _TrackingHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` that counts in-flight request handlers.

    Handler threads are daemonic (an *idle* keep-alive connection must
    not block shutdown), so ``server_close`` cannot be relied on to
    join them; instead every dispatched request is counted and
    :meth:`wait_idle` lets a graceful shutdown drain the requests that
    are actually executing before the coalescers and client close.
    """

    daemon_threads = True

    def __init__(
        self,
        *args: Any,
        max_inflight: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self.max_inflight = max_inflight
        self.shed_total = 0

    @property
    def inflight(self) -> int:
        """Requests currently executing a handler."""
        with self._inflight_cv:
            return self._inflight

    def request_began(self) -> bool:
        """Admit a request unless ``max_inflight`` handlers already run.

        Returns False — and counts the shed — when at capacity; the
        caller answers 429 without touching the context. Admission and
        the count are one atomic step, so a burst can never overshoot
        the cap.
        """
        with self._inflight_cv:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self.shed_total += 1
                return False
            self._inflight += 1
            return True

    def request_finished(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight <= 0:
                self._inflight_cv.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is executing (True) or timeout (False)."""
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the :class:`ServingContext` (set per server)."""

    protocol_version = "HTTP/1.1"  # keep-alive: clients reuse connections
    context: ServingContext  # injected by ServingServer
    server: _TrackingHTTPServer

    #: Hard cap on accepted request bodies; larger gets 413 unread. Even
    #: a full batch of float vectors fits in a fraction of this.
    MAX_BODY_BYTES = 8 * 1024 * 1024

    #: Paths metrics may record verbatim; anything else becomes "other"
    #: so probing scanners cannot grow the route map.
    KNOWN_ROUTES = frozenset({
        "/healthz", "/metrics", "/collections", "/search", "/query",
        "/upsert", "/set_payload", "/admin/save", "/admin/load",
    })

    # -- plumbing ------------------------------------------------------

    def log_message(self, *args: object) -> None:
        """Silence per-request stderr logging."""

    def _send_json(
        self,
        status: int,
        body: dict | list,
        headers: dict[str, str] | None = None,
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> dict:
        """Parse the JSON request body, refusing to read unbounded bytes.

        A missing/zero ``Content-Length`` is 411 (this server does not
        accept chunked bodies) and one beyond :attr:`MAX_BODY_BYTES` is
        413 — in both cases the body is *never read*, so a hostile
        header cannot make the handler allocate; the connection closes
        since unread bytes would poison the next keep-alive request.
        """
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            self.close_connection = True
            raise HttpError(411, "Content-Length required")
        try:
            length = int(raw_length)
        except ValueError as exc:
            self.close_connection = True
            raise HttpError(
                411, f"invalid Content-Length {raw_length!r}"
            ) from exc
        if length <= 0:
            self.close_connection = True
            raise HttpError(411, "request body required")
        if length > self.MAX_BODY_BYTES:
            self.close_connection = True
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.MAX_BODY_BYTES}-byte limit",
            )
        try:
            body = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        return body

    def _request_deadline(self) -> Deadline | None:
        """The request's budget from ``X-Repro-Deadline-Ms`` (or None)."""
        raw = self.headers.get("X-Repro-Deadline-Ms")
        if raw is None:
            return None
        try:
            budget_ms = float(raw)
        except ValueError as exc:
            raise BadRequest(
                f"invalid X-Repro-Deadline-Ms {raw!r}"
            ) from exc
        if budget_ms < 0:
            raise BadRequest("X-Repro-Deadline-Ms must be non-negative")
        return Deadline.after_ms(budget_ms)

    def _dispatch(self, handler) -> None:
        if not self.server.request_began():
            # Shed, not blocked: at max_inflight the cheapest honest
            # answer is an immediate 429 — the client backs off while
            # the admitted requests keep their latency.
            self.close_connection = True
            self.context.metrics.observe(self._route(), 429, 0.0)
            self._send_json(
                429,
                {"error": "server overloaded (in-flight cap reached)"},
                headers={"Retry-After": "1"},
            )
            return
        started = time.monotonic()
        status = 500
        try:
            try:
                chaos.fire(
                    "http.request", method=self.command, path=self.path
                )
                status, body = handler()
            except BadRequest as exc:
                status, body = 400, {"error": str(exc)}
            except DeadlineExceeded as exc:
                status, body = 504, {"error": str(exc)}
            except ServerOverloaded as exc:
                status, body = 429, {"error": str(exc)}
            except HttpError as exc:
                status, body = exc.status, {"error": str(exc)}
            except (DimensionMismatch, ValueError, KeyError, TypeError) as exc:
                status, body = 400, {"error": str(exc)}
            except CollectionNotFound as exc:
                status, body = 404, {"error": str(exc)}
            except ReproError as exc:
                status, body = 400, {"error": str(exc)}
            except Exception as exc:  # reprolint: last-resort -- every handler error becomes a JSON 500
                status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
            headers = {"Retry-After": "1"} if status == 429 else None
            self._send_json(status, body, headers=headers)
        finally:
            self.context.metrics.observe(
                self._route(), status, time.monotonic() - started
            )
            self.server.request_finished()

    def _route(self) -> str:
        """The path as a bounded-cardinality metrics label."""
        return self.path if self.path in self.KNOWN_ROUTES else "other"

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
        if self.path == "/healthz":
            self._dispatch(lambda: (200, self._health_body()))
        elif self.path == "/metrics":
            self._dispatch(lambda: (200, self._metrics_body()))
        elif self.path == "/collections":
            self._dispatch(lambda: (200, self.context.collections()))
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _health_body(self) -> dict:
        body = self.context.health()
        body["inflight"] = self.server.inflight
        body["max_inflight"] = self.server.max_inflight
        body["inflight_shed_total"] = self.server.shed_total
        return body

    def _metrics_body(self) -> dict:
        body = self.context.metrics_body()
        body["inflight"] = self.server.inflight
        body["max_inflight"] = self.server.max_inflight
        body["inflight_shed_total"] = self.server.shed_total
        return body

    def do_POST(self) -> None:  # noqa: N802 (stdlib API name)
        routes = {
            "/search": self._post_search,
            "/query": self._post_query,
            "/upsert": self._post_upsert,
            "/set_payload": self._post_set_payload,
            "/admin/save": self._post_save,
            "/admin/load": self._post_load,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        self._dispatch(handler)

    def _post_search(self) -> tuple[int, dict]:
        body = self._read_body()
        for required in ("collection", "vector", "k"):
            if required not in body:
                raise BadRequest(f"missing field {required!r}")
        try:
            vector = np.asarray(body["vector"], dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad vector: {exc}") from exc
        hits = self.context.search(
            str(body["collection"]),
            vector,
            int(body["k"]),
            flt=filter_from_json(body.get("filter")),
            exact=bool(body.get("exact", False)),
            ef=int(body["ef"]) if body.get("ef") is not None else None,
            coalesce=bool(body.get("coalesce", True)),
            deadline=self._request_deadline(),
            rescore_factor=(
                float(body["rescore_factor"])
                if body.get("rescore_factor") is not None else None
            ),
        )
        # with_payload=false trims the response to ids + scores — POI
        # payloads carry full tip texts, which dominate the wire size.
        with_payload = bool(body.get("with_payload", True))
        return 200, {
            "hits": [_hit_to_json(hit, with_payload) for hit in hits]
        }

    def _post_query(self) -> tuple[int, dict]:
        body = self._read_body()
        if "text" not in body:
            raise BadRequest("missing field 'text'")
        result = self.context.query(
            str(body["text"]),
            lat=body.get("lat"),
            lon=body.get("lon"),
            range_km=float(body.get("range_km", 5.0)),
            coalesce=bool(body.get("coalesce", True)),
            deadline=self._request_deadline(),
        )
        return 200, _result_to_json(result)

    def _post_upsert(self) -> tuple[int, dict]:
        body = self._read_body()
        for required in ("collection", "points"):
            if required not in body:
                raise BadRequest(f"missing field {required!r}")
        points = body["points"]
        if not isinstance(points, list):
            raise BadRequest("'points' must be a list of point objects")
        return 200, self.context.upsert(str(body["collection"]), points)

    def _post_set_payload(self) -> tuple[int, dict]:
        body = self._read_body()
        for required in ("collection", "id", "payload"):
            if required not in body:
                raise BadRequest(f"missing field {required!r}")
        if not isinstance(body["payload"], dict):
            raise BadRequest("'payload' must be an object")
        return 200, self.context.set_payload(
            str(body["collection"]), str(body["id"]), body["payload"]
        )

    def _post_save(self) -> tuple[int, dict]:
        body = self._read_body()
        for required in ("collection", "directory"):
            if required not in body:
                raise BadRequest(f"missing field {required!r}")
        return 200, self.context.save_snapshot(
            str(body["collection"]), str(body["directory"])
        )

    def _post_load(self) -> tuple[int, dict]:
        body = self._read_body()
        if "directory" not in body:
            raise BadRequest("missing field 'directory'")
        wal = body.get("wal")
        return 200, self.context.load_snapshot(
            str(body["directory"]),
            mmap=bool(body.get("mmap", False)),
            wal=str(wal) if wal is not None else None,
        )


# reprolint: disable=RL06 -- owns the server thread; process-local by construction
class ServingServer:
    """A :class:`ServingContext` behind a ``ThreadingHTTPServer``.

    ``port=0`` binds an ephemeral port (tests and benchmarks);
    :attr:`address` reports the bound ``(host, port)``. Run blocking via
    :meth:`serve_forever` (the CLI) or in a daemon thread via
    :meth:`start` (tests, examples). :meth:`shutdown` is graceful and
    idempotent: stop accepting, drain handlers, flush coalescers, close
    the context. The server is also a context manager, guaranteeing
    shutdown on the way out of a ``with`` block.
    """

    def __init__(
        self,
        context: ServingContext,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_inflight: int | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive or None, got {max_inflight}"
            )
        handler = type("BoundHandler", (_Handler,), {"context": context})
        self._context = context
        self._httpd = _TrackingHTTPServer(
            (host, port), handler, max_inflight=max_inflight
        )
        self._thread: threading.Thread | None = None
        self._shutdown_once = threading.Lock()
        self._shut_down = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServingServer":
        """Serve in a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="serving-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or ^C)."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting, drain handlers, flush coalescers (idempotent)."""
        with self._shutdown_once:
            if self._shut_down:
                return
            self._shut_down = True
        # From the serving thread itself, httpd.shutdown() would deadlock
        # (it waits for serve_forever to exit); only call it from others.
        if threading.current_thread() is not self._thread:
            self._httpd.shutdown()
        # Handler threads are daemonic (idle keep-alive connections must
        # not pin the process), so server_close() does not join them —
        # drain the requests that are actually executing before tearing
        # down what they depend on (coalescers, collections).
        self._httpd.wait_idle(timeout=10.0)
        self._httpd.server_close()
        if self._thread is not None and (
            threading.current_thread() is not self._thread
        ):
            self._thread.join(timeout=5.0)
        self._context.close()

    def __enter__(self) -> "ServingServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
