"""Cold-start bootstrap: load a prepared-city snapshot, or build + cache one.

A serving process (and the demo) should come up in milliseconds, not by
re-running data preparation — generation, geocoding, summarization, and
embedding take orders of magnitude longer than loading the schema-v3
snapshot of their output (PR 4's ``from_matrix`` restore path attaches
persisted HNSW graphs and can memory-map the vector matrix).
:func:`load_or_prepare` is the one helper every entry point shares:

* snapshot directory exists → :func:`~repro.core.storage.load_prepared`
  (``mmap=True`` by default — serving reads off the page cache);
* otherwise → build the corpus once, then
  :func:`~repro.core.storage.save_prepared` so the *next* start is fast.

``repro serve``, ``repro demo --snapshot``, and
``examples/demo_stlouis.py`` all boot through here — none of them
re-embeds a corpus that is already on disk.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.prepare import PreparedCity
from repro.core.storage import (
    collection_snapshot_dir,
    has_prepared,
    load_prepared,
    save_prepared,
)


def load_or_prepare(
    snapshot_dir: str | Path | None,
    city: str = "SL",
    count: int | None = 1200,
    seed: int = 7,
    shards: int = 1,
    mmap: bool = True,
    refresh: bool = False,
    wal: str | None = None,
) -> PreparedCity:
    """A prepared city, from its snapshot when possible.

    ``snapshot_dir=None`` always builds in memory (no caching).
    ``refresh=True`` rebuilds even if a snapshot exists and overwrites
    it. Note the build parameters (``city``, ``count``, ``seed``,
    ``shards``) only apply when building — a loaded snapshot serves
    whatever it was built with; pass ``refresh=True`` after changing
    them. Raises :class:`~repro.errors.DatasetError` if an existing
    snapshot is unreadable or was prepared with a different embedder.

    ``wal`` (an fsync mode) makes the served collection durable: on the
    load path it replays + attaches write-ahead logs next to the cached
    collection snapshot; on the build path logs are attached right after
    the snapshot is first saved, so writes accepted by a brand-new
    deployment are covered too. It requires a ``snapshot_dir`` — with no
    snapshot there is nothing a WAL replay could be anchored to — and
    raises :class:`~repro.errors.CollectionError` without one.
    """
    # Imported here, not at module top: eval.corpus pulls in the data
    # generator + ontology stack, which the load path never needs.
    from repro.eval.corpus import build_corpus

    if wal is not None and snapshot_dir is None:
        from repro.errors import CollectionError

        raise CollectionError(
            "wal mode requires a snapshot directory (the log lives "
            "beside the collection snapshot)"
        )
    if snapshot_dir is not None:
        snapshot_dir = Path(snapshot_dir)
        if not refresh and has_prepared(snapshot_dir):
            return load_prepared(snapshot_dir, mmap=mmap, wal=wal)
    corpus = build_corpus(
        city, seed=seed, count=count, shards=shards, eager_index=True
    )
    if snapshot_dir is not None:
        save_prepared(corpus.prepared, snapshot_dir)
        if wal is not None:
            from repro.vectordb.persistence import attach_wal

            prepared = corpus.prepared
            attach_wal(
                prepared.client.get_collection(prepared.collection_name),
                collection_snapshot_dir(snapshot_dir),
                fsync=wal,
            )
    return corpus.prepared
