"""repro: a full reproduction of SemaSK (EDBT 2025).

SemaSK answers semantics-aware spatial keyword queries with a
retrieval-augmented, filtering-and-refinement pipeline: spatial filtering
plus embedding kNN, then LLM re-ranking. This package reproduces the
entire system offline — the Yelp-style corpus, the reverse geocoder, the
embedding model, the Qdrant-like vector database with a from-scratch HNSW,
the LLM behaviours (summarization, query generation, refinement), the
LDA/TF-IDF baselines, and the full evaluation harness for every table and
figure in the paper. See DESIGN.md for the substitution map.
"""

from repro._version import __version__
from repro.core import (
    DataPreparation,
    SemaSK,
    SemaSKConfig,
    SpatialKeywordQuery,
    semask,
    semask_em,
    semask_o1,
)
from repro.data import Dataset, POIRecord, YelpStyleGenerator

__all__ = [
    "DataPreparation",
    "Dataset",
    "POIRecord",
    "SemaSK",
    "SemaSKConfig",
    "SpatialKeywordQuery",
    "YelpStyleGenerator",
    "__version__",
    "semask",
    "semask_em",
    "semask_o1",
]
