"""Surface-form lexicon and concept extraction.

The lexicon maps natural-language phrases to concepts, each with a
*difficulty* grade (see :mod:`repro.semantics.ontology.surface`). A
:class:`ConceptExtractor` scans text for known phrases using greedy
longest-match over the token stream.

Model fidelity is expressed as *knowledge*: each simulated model (the
embedding model, simulated GPT-4o, simulated o1-mini) knows a
deterministic subset of the lexicon, chosen per surface form by hashing
the phrase against the model's coverage curve. Harder forms are less
likely to be known — exactly how a smaller embedding model "misses" the
connection from "flat white" to coffee while a stronger LLM does not. The
subset is a property of the model, not of the call: the same phrase is
always known or always unknown to a given model.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.text.tokenize import tokenize

#: Longest phrase length (in tokens) the matcher will consider.
MAX_PHRASE_TOKENS = 8


@dataclass(frozen=True, slots=True)
class SurfaceForm:
    """One phrase -> concept mapping."""

    phrase: str           # normalized phrase, e.g. "watch the game"
    tokens: tuple[str, ...]
    concept_id: str
    difficulty: float     # 0 = trivially lexical, 1 = deeply semantic

    def __post_init__(self) -> None:
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError(
                f"difficulty must be in [0, 1], got {self.difficulty}"
            )


@dataclass(frozen=True, slots=True)
class ConceptMention:
    """A concept detected in text, with provenance."""

    concept_id: str
    phrase: str
    difficulty: float
    position: int  # token index where the phrase starts


class Lexicon:
    """All known surface forms, indexed for longest-match extraction."""

    def __init__(self, forms: Iterable[SurfaceForm] = ()) -> None:
        self._forms: dict[tuple[str, ...], list[SurfaceForm]] = {}
        self._by_concept: dict[str, list[SurfaceForm]] = {}
        for form in forms:
            self.add(form)

    def __len__(self) -> int:
        return sum(len(v) for v in self._forms.values())

    def add(self, form: SurfaceForm) -> None:
        """Register a surface form (multiple concepts per phrase allowed)."""
        if len(form.tokens) > MAX_PHRASE_TOKENS:
            raise ValueError(
                f"phrase {form.phrase!r} exceeds {MAX_PHRASE_TOKENS} tokens"
            )
        bucket = self._forms.setdefault(form.tokens, [])
        if any(f.concept_id == form.concept_id for f in bucket):
            return  # identical mapping already present
        bucket.append(form)
        self._by_concept.setdefault(form.concept_id, []).append(form)

    def add_phrase(self, phrase: str, concept_id: str, difficulty: float) -> None:
        """Convenience wrapper building the :class:`SurfaceForm`."""
        tokens = tuple(tokenize(phrase))
        if not tokens:
            raise ValueError(f"phrase {phrase!r} tokenizes to nothing")
        self.add(SurfaceForm(" ".join(tokens), tokens, concept_id, difficulty))

    def forms_of(self, concept_id: str) -> list[SurfaceForm]:
        """All surface forms of a concept (copy; empty when unknown)."""
        return list(self._by_concept.get(concept_id, []))

    def forms(self) -> list[SurfaceForm]:
        """Every surface form, in insertion order per phrase bucket."""
        return [f for bucket in self._forms.values() for f in bucket]

    def concepts(self) -> list[str]:
        """All concept ids that have at least one surface form."""
        return list(self._by_concept)

    def lookup(self, tokens: tuple[str, ...]) -> list[SurfaceForm]:
        """Exact-match lookup of a token tuple."""
        return list(self._forms.get(tokens, ()))

    def oblique_forms_of(
        self, concept_id: str, min_difficulty: float
    ) -> list[SurfaceForm]:
        """Forms of a concept at or above ``min_difficulty``.

        Query generation draws from these so that test queries are "hard
        for keyword matching" per the paper's construction.
        """
        return [
            f
            for f in self._by_concept.get(concept_id, [])
            if f.difficulty >= min_difficulty
        ]


def _stable_unit_hash(text: str, salt: str) -> float:
    """Deterministic hash of ``text`` to [0, 1), independent of PYTHONHASHSEED."""
    digest = hashlib.sha256(f"{salt}:{text}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class KnowledgeProfile:
    """How much of the lexicon a simulated model knows.

    ``coverage(difficulty)`` gives the probability that a form of that
    difficulty is in the model's vocabulary; membership is then decided
    deterministically per phrase via hashing, salted by ``name`` so
    different models miss *different* forms.
    """

    name: str
    coverage: Callable[[float], float]

    def knows(self, form: SurfaceForm) -> bool:
        """Whether this model understands ``form`` (stable per model+phrase)."""
        p = self.coverage(form.difficulty)
        if p >= 1.0:
            return True
        if p <= 0.0:
            return False
        return _stable_unit_hash(f"{form.phrase}->{form.concept_id}", self.name) < p


def full_knowledge(name: str = "oracle") -> KnowledgeProfile:
    """A profile that knows every surface form (used for ground truth)."""
    return KnowledgeProfile(name=name, coverage=lambda d: 1.0)


def linear_knowledge(name: str, base: float, slope: float) -> KnowledgeProfile:
    """Coverage ``base - slope * difficulty`` clamped to [0, 1].

    E.g. ``linear_knowledge("embed", 1.0, 0.85)`` knows all trivial forms
    but only ~15% of the hardest ones.
    """
    def coverage(difficulty: float) -> float:
        return max(0.0, min(1.0, base - slope * difficulty))

    return KnowledgeProfile(name=name, coverage=coverage)


class ConceptExtractor:
    """Greedy longest-match concept extraction under a knowledge profile."""

    def __init__(self, lexicon: Lexicon, knowledge: KnowledgeProfile | None = None) -> None:
        self._lexicon = lexicon
        self._knowledge = knowledge or full_knowledge()

    @property
    def knowledge(self) -> KnowledgeProfile:
        """The profile governing which surface forms are recognized."""
        return self._knowledge

    def extract(self, text: str) -> list[ConceptMention]:
        """Return all concept mentions found in ``text``.

        Scans left to right; at each position tries the longest phrase
        first, and on a match emits every concept mapped to that phrase
        (that the model knows), then resumes after the phrase.
        """
        tokens = tokenize(text)
        mentions: list[ConceptMention] = []
        i = 0
        n = len(tokens)
        while i < n:
            matched_len = 0
            for length in range(min(MAX_PHRASE_TOKENS, n - i), 0, -1):
                window = tuple(tokens[i : i + length])
                forms = self._lexicon.lookup(window)
                known = [f for f in forms if self._knowledge.knows(f)]
                if known:
                    for form in known:
                        mentions.append(
                            ConceptMention(
                                concept_id=form.concept_id,
                                phrase=form.phrase,
                                difficulty=form.difficulty,
                                position=i,
                            )
                        )
                    matched_len = length
                    break
            i += matched_len if matched_len else 1
        return mentions

    def extract_concepts(self, text: str) -> frozenset[str]:
        """Just the set of concept ids mentioned in ``text``."""
        return frozenset(m.concept_id for m in self.extract(text))
