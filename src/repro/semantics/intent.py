"""Query intent: the latent meaning behind a natural-language query.

A semantics-aware spatial keyword query in this reproduction carries a
latent :class:`QueryIntent` — the set of concepts the user is asking for.
The intent is what ground truth is defined against; the query *text* is a
paraphrase of the intent generated to defeat keyword matching (per the
paper's test-set construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.semantics.concepts import ConceptGraph


@dataclass(frozen=True)
class QueryIntent:
    """The concepts a query demands of a matching POI.

    ``required`` concepts must all be satisfied (hypernym-aware) for a POI
    to belong to the answer set; ``preferred`` concepts only contribute to
    ranking, mirroring the paper's "could only partially match" language
    in the refinement prompt.
    """

    required: frozenset[str]
    preferred: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.required:
            raise ValueError("a query intent needs at least one required concept")
        overlap = self.required & self.preferred
        if overlap:
            raise ValueError(
                f"concepts cannot be both required and preferred: {sorted(overlap)}"
            )

    def is_satisfied_by(self, concepts: frozenset[str], graph: ConceptGraph) -> bool:
        """Whether a POI carrying ``concepts`` fully answers the intent."""
        return all(graph.any_satisfies(concepts, req) for req in self.required)

    def match_score(self, concepts: frozenset[str], graph: ConceptGraph) -> float:
        """Graded relevance in [0, 1].

        Required concepts dominate (weight 0.85 split equally); preferred
        concepts contribute the remaining 0.15. Used by the simulated LLM
        to rank candidates and to decide partial matches.
        """
        req = sorted(self.required)
        req_hit = sum(1 for r in req if graph.any_satisfies(concepts, r))
        score = 0.85 * req_hit / len(req)
        if self.preferred:
            pref = sorted(self.preferred)
            pref_hit = sum(1 for p in pref if graph.any_satisfies(concepts, p))
            score += 0.15 * pref_hit / len(pref)
        else:
            score += 0.15 * (req_hit == len(req))
        return score

    def all_concepts(self) -> frozenset[str]:
        """Required and preferred concepts together."""
        return self.required | self.preferred
