"""Concept graph: the latent semantic space behind the synthetic corpus.

The paper's thesis is that query text and POI text describe the same
*concepts* with different *words* ("café" vs "flat white and pastries"),
which defeats keyword matching but not semantic models. To reproduce that
gap offline we make the concept space explicit:

* every synthetic POI is generated *from* a set of latent concepts,
* query generation paraphrases concepts while avoiding the POI's words,
* ground truth is defined by concept satisfaction,
* the simulated embedding model and LLM recover concepts from text with
  model-specific fidelity (see :mod:`repro.semantics.lexicon`).

Concepts form a DAG via *is-a* edges (``sports_bar`` is-a ``bar`` is-a
``nightlife``). A required concept is satisfied by any equal-or-more-
specific concept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import lru_cache


class ConceptKind(str, Enum):
    """Role a concept plays in a POI description."""

    CATEGORY = "category"   # business type: cafe, sports_bar, auto_repair
    ITEM = "item"           # product/menu item: espresso, wings, sushi
    ASPECT = "aspect"       # service/quality trait: watch_sports, pet_friendly


@dataclass(frozen=True, slots=True)
class Concept:
    """A node in the concept graph."""

    id: str
    kind: ConceptKind
    label: str                      # human-readable, e.g. "Sports Bar"
    parents: tuple[str, ...] = ()   # is-a edges (ids of broader concepts)


class ConceptGraph:
    """An immutable-after-build is-a DAG over :class:`Concept` nodes."""

    def __init__(self) -> None:
        self._concepts: dict[str, Concept] = {}

    def __len__(self) -> int:
        return len(self._concepts)

    def __contains__(self, concept_id: str) -> bool:
        return concept_id in self._concepts

    def __iter__(self):
        return iter(self._concepts.values())

    def add(self, concept: Concept) -> None:
        """Register ``concept``; parents must already be registered."""
        if concept.id in self._concepts:
            raise ValueError(f"duplicate concept id {concept.id!r}")
        for parent in concept.parents:
            if parent not in self._concepts:
                raise ValueError(
                    f"concept {concept.id!r} references unknown parent {parent!r}"
                )
        self._concepts[concept.id] = concept

    def get(self, concept_id: str) -> Concept:
        """Return the concept with ``concept_id`` (KeyError when missing)."""
        return self._concepts[concept_id]

    def ids(self) -> list[str]:
        """All concept ids in registration order (deterministic)."""
        return list(self._concepts)

    def of_kind(self, kind: ConceptKind) -> list[Concept]:
        """All concepts of the given kind, in registration order."""
        return [c for c in self._concepts.values() if c.kind == kind]

    def ancestors(self, concept_id: str) -> frozenset[str]:
        """All transitive is-a ancestors of ``concept_id`` (exclusive)."""
        return self._ancestors_cached(concept_id)

    @lru_cache(maxsize=None)  # noqa: B019 — graph is append-only; adds are pre-query
    def _ancestors_cached(self, concept_id: str) -> frozenset[str]:
        concept = self._concepts[concept_id]
        result: set[str] = set()
        for parent in concept.parents:
            result.add(parent)
            result |= self._ancestors_cached(parent)
        return frozenset(result)

    def satisfies(self, candidate_id: str, required_id: str) -> bool:
        """Whether ``candidate_id`` is the same as or a kind of ``required_id``.

        A POI tagged ``sports_bar`` satisfies a query for ``bar``; a POI
        tagged only ``bar`` does not satisfy a query for ``sports_bar``.
        """
        if candidate_id == required_id:
            return True
        if candidate_id not in self._concepts or required_id not in self._concepts:
            return False
        return required_id in self.ancestors(candidate_id)

    def any_satisfies(self, candidates: frozenset[str] | set[str], required_id: str) -> bool:
        """Whether any of ``candidates`` satisfies ``required_id``."""
        return any(self.satisfies(c, required_id) for c in candidates)

    def expand(self, concept_ids: set[str] | frozenset[str]) -> frozenset[str]:
        """Close ``concept_ids`` under ancestors (used for soft matching)."""
        result = set(concept_ids)
        for cid in concept_ids:
            if cid in self._concepts:
                result |= self.ancestors(cid)
        return frozenset(result)

    def relatedness(self, a: str, b: str) -> float:
        """A [0, 1] similarity from shared ancestry.

        1.0 for identical concepts, 0.75 when one subsumes the other,
        otherwise the Jaccard overlap of their ancestor-closures. Gives the
        simulated LLM a notion of "partially matches" for its explanations.
        """
        if a == b:
            return 1.0
        if a not in self._concepts or b not in self._concepts:
            return 0.0
        if self.satisfies(a, b) or self.satisfies(b, a):
            return 0.75
        closure_a = self.ancestors(a) | {a}
        closure_b = self.ancestors(b) | {b}
        inter = len(closure_a & closure_b)
        if inter == 0:
            return 0.0
        return 0.5 * inter / len(closure_a | closure_b)


@dataclass(frozen=True)
class ConceptProfile:
    """The latent semantics of one POI: what it *is* and what it *offers*.

    ``category`` is the primary business type; ``items`` and ``aspects``
    are the offerings/traits its tips talk about. The union is the POI's
    ground-truth concept set used for answer-set construction.
    """

    category: str
    items: tuple[str, ...] = ()
    aspects: tuple[str, ...] = ()
    secondary_categories: tuple[str, ...] = field(default=())

    def all_concepts(self) -> frozenset[str]:
        """Every concept the POI genuinely carries."""
        return frozenset(
            (self.category, *self.secondary_categories, *self.items, *self.aspects)
        )
