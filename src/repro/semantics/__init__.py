"""Concept ontology, surface-form lexicon, and query intents.

This package makes the latent semantic space of the synthetic corpus
explicit; see :mod:`repro.semantics.concepts` for the rationale.
"""

from repro.semantics.concepts import (
    Concept,
    ConceptGraph,
    ConceptKind,
    ConceptProfile,
)
from repro.semantics.intent import QueryIntent
from repro.semantics.lexicon import (
    ConceptExtractor,
    ConceptMention,
    KnowledgeProfile,
    Lexicon,
    SurfaceForm,
    full_knowledge,
    linear_knowledge,
)
from repro.semantics.ontology.build import (
    LABEL_DIFFICULTY,
    build_concept_graph,
    build_lexicon,
    category_aspects,
    category_items,
    default_ontology,
    primary_categories,
)

__all__ = [
    "Concept",
    "ConceptExtractor",
    "ConceptGraph",
    "ConceptKind",
    "ConceptMention",
    "ConceptProfile",
    "KnowledgeProfile",
    "LABEL_DIFFICULTY",
    "Lexicon",
    "QueryIntent",
    "SurfaceForm",
    "build_concept_graph",
    "build_lexicon",
    "category_aspects",
    "category_items",
    "default_ontology",
    "full_knowledge",
    "linear_knowledge",
    "primary_categories",
]
