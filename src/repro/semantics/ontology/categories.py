"""Business-category concepts (the Yelp-style category taxonomy).

Each entry is ``(id, label, parents)``. Labels double as the strings in the
synthetic record's ``categories`` attribute, so they are phrased the way
Yelp phrases them ("Sports Bars", "Ice Cream & Frozen Yogurt", ...).
Parents are is-a edges; roots are the top-level Yelp domains. A few
categories also have *aspect* parents (a sports bar is definitionally good
for watching sports), letting aspect-level queries be satisfied by the
right categories.
"""

from __future__ import annotations

# (concept id, Yelp-style label, parent ids)
CATEGORY_DEFS: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    # ---- top-level domains -------------------------------------------------
    ("food_drink", "Food", ()),
    ("restaurants", "Restaurants", ("food_drink",)),
    ("nightlife", "Nightlife", ()),
    ("shopping", "Shopping", ()),
    ("automotive", "Automotive", ()),
    ("beauty_spas", "Beauty & Spas", ()),
    ("health_medical", "Health & Medical", ()),
    ("active_life", "Active Life", ()),
    ("arts_entertainment", "Arts & Entertainment", ()),
    ("local_services", "Local Services", ()),
    ("home_services", "Home Services", ()),
    ("hotels_travel", "Hotels & Travel", ()),
    ("pets", "Pets", ()),
    ("education", "Education", ()),
    # ---- restaurants -------------------------------------------------------
    ("italian_restaurant", "Italian", ("restaurants",)),
    ("japanese_restaurant", "Japanese", ("restaurants",)),
    ("sushi_bar", "Sushi Bars", ("japanese_restaurant",)),
    ("ramen_shop", "Ramen", ("japanese_restaurant",)),
    ("chinese_restaurant", "Chinese", ("restaurants",)),
    ("mexican_restaurant", "Mexican", ("restaurants",)),
    ("taqueria", "Taquerias", ("mexican_restaurant",)),
    ("thai_restaurant", "Thai", ("restaurants",)),
    ("indian_restaurant", "Indian", ("restaurants",)),
    ("vietnamese_restaurant", "Vietnamese", ("restaurants",)),
    ("korean_restaurant", "Korean", ("restaurants",)),
    ("mediterranean_restaurant", "Mediterranean", ("restaurants",)),
    ("greek_restaurant", "Greek", ("mediterranean_restaurant",)),
    ("french_restaurant", "French", ("restaurants",)),
    ("american_restaurant", "American (Traditional)", ("restaurants",)),
    ("new_american_restaurant", "American (New)", ("restaurants",)),
    ("southern_restaurant", "Southern", ("restaurants",)),
    ("cajun_restaurant", "Cajun/Creole", ("restaurants",)),
    ("bbq_joint", "Barbeque", ("restaurants",)),
    ("steakhouse", "Steakhouses", ("restaurants",)),
    ("seafood_restaurant", "Seafood", ("restaurants",)),
    ("pizza_place", "Pizza", ("restaurants",)),
    ("burger_joint", "Burgers", ("restaurants",)),
    ("sandwich_shop", "Sandwiches", ("restaurants",)),
    ("deli", "Delis", ("sandwich_shop",)),
    ("diner", "Diners", ("american_restaurant",)),
    ("breakfast_brunch", "Breakfast & Brunch", ("restaurants", "brunch_service")),
    ("vegan_restaurant", "Vegan", ("restaurants",)),
    ("vegetarian_restaurant", "Vegetarian", ("restaurants",)),
    ("food_truck", "Food Trucks", ("food_drink",)),
    ("buffet", "Buffets", ("restaurants",)),
    ("fast_food", "Fast Food", ("restaurants", "fast_service")),
    ("chicken_wings_joint", "Chicken Wings", ("restaurants",)),
    ("soup_spot", "Soup", ("restaurants",)),
    ("salad_bar", "Salad", ("restaurants",)),
    ("tapas_bar", "Tapas/Small Plates", ("restaurants",)),
    ("noodle_house", "Noodles", ("restaurants",)),
    # ---- cafés & sweets ----------------------------------------------------
    ("cafe", "Cafes", ("food_drink",)),
    ("coffee_shop", "Coffee & Tea", ("cafe",)),
    ("tea_house", "Tea Rooms", ("cafe",)),
    ("bakery", "Bakeries", ("food_drink",)),
    ("ice_cream_shop", "Ice Cream & Frozen Yogurt", ("food_drink",)),
    ("donut_shop", "Donuts", ("bakery",)),
    ("juice_bar", "Juice Bars & Smoothies", ("food_drink",)),
    ("dessert_shop", "Desserts", ("food_drink",)),
    ("bubble_tea_shop", "Bubble Tea", ("food_drink",)),
    # ---- nightlife ---------------------------------------------------------
    ("bar", "Bars", ("nightlife",)),
    ("sports_bar", "Sports Bars", ("bar", "watch_sports")),
    ("dive_bar", "Dive Bars", ("bar",)),
    ("wine_bar", "Wine Bars", ("bar",)),
    ("cocktail_bar", "Cocktail Bars", ("bar",)),
    ("pub", "Pubs", ("bar",)),
    ("gastropub", "Gastropubs", ("pub", "restaurants")),
    ("brewery", "Breweries", ("nightlife", "food_drink")),
    ("nightclub", "Dance Clubs", ("nightlife",)),
    ("karaoke_bar", "Karaoke", ("nightlife",)),
    ("music_venue", "Music Venues", ("nightlife", "arts_entertainment")),
    ("comedy_club", "Comedy Clubs", ("nightlife", "arts_entertainment")),
    # ---- shopping ----------------------------------------------------------
    ("grocery_store", "Grocery", ("shopping", "food_drink")),
    ("farmers_market", "Farmers Market", ("shopping", "food_drink")),
    ("convenience_store", "Convenience Stores", ("shopping",)),
    ("bookstore", "Bookstores", ("shopping",)),
    ("clothing_store", "Women's Clothing", ("shopping",)),
    ("mens_clothing_store", "Men's Clothing", ("shopping",)),
    ("shoe_store", "Shoe Stores", ("shopping",)),
    ("jewelry_store", "Jewelry", ("shopping",)),
    ("florist", "Florists", ("shopping",)),
    ("gift_shop", "Gift Shops", ("shopping",)),
    ("toy_store", "Toy Stores", ("shopping",)),
    ("hardware_store", "Hardware Stores", ("shopping", "home_services")),
    ("electronics_store", "Electronics", ("shopping",)),
    ("record_store", "Vinyl Records", ("shopping",)),
    ("thrift_store", "Thrift Stores", ("shopping",)),
    ("furniture_store", "Furniture Stores", ("shopping", "home_services")),
    ("sporting_goods_store", "Sporting Goods", ("shopping",)),
    ("liquor_store", "Beer, Wine & Spirits", ("shopping", "food_drink")),
    # ---- automotive ----------------------------------------------------------
    ("auto_repair", "Auto Repair", ("automotive",)),
    ("tire_shop", "Tires", ("automotive",)),
    ("oil_change_station", "Oil Change Stations", ("automotive",)),
    ("car_wash", "Car Wash", ("automotive",)),
    ("gas_station", "Gas Stations", ("automotive",)),
    ("car_dealer", "Car Dealers", ("automotive",)),
    ("auto_parts_store", "Auto Parts & Supplies", ("automotive", "shopping")),
    ("body_shop", "Body Shops", ("automotive",)),
    # ---- beauty & spas -------------------------------------------------------
    ("hair_salon", "Hair Salons", ("beauty_spas",)),
    ("barber_shop", "Barbers", ("beauty_spas",)),
    ("nail_salon", "Nail Salons", ("beauty_spas",)),
    ("day_spa", "Day Spas", ("beauty_spas",)),
    ("massage_studio", "Massage", ("beauty_spas",)),
    ("tattoo_parlor", "Tattoo", ("beauty_spas",)),
    # ---- health --------------------------------------------------------------
    ("dentist", "Dentists", ("health_medical",)),
    ("family_doctor", "Family Practice", ("health_medical",)),
    ("urgent_care", "Urgent Care", ("health_medical",)),
    ("optometrist", "Optometrists", ("health_medical",)),
    ("chiropractor", "Chiropractors", ("health_medical",)),
    ("pharmacy", "Drugstores", ("health_medical", "shopping")),
    ("physical_therapy", "Physical Therapy", ("health_medical",)),
    # ---- active life ---------------------------------------------------------
    ("gym", "Gyms", ("active_life",)),
    ("yoga_studio", "Yoga", ("active_life",)),
    ("pilates_studio", "Pilates", ("active_life",)),
    ("climbing_gym", "Rock Climbing", ("active_life",)),
    ("swimming_pool", "Swimming Pools", ("active_life",)),
    ("bowling_alley", "Bowling", ("active_life", "arts_entertainment")),
    ("golf_course", "Golf", ("active_life",)),
    ("bike_shop", "Bikes", ("active_life", "shopping")),
    ("dance_studio", "Dance Studios", ("active_life", "arts_entertainment")),
    ("martial_arts_studio", "Martial Arts", ("active_life",)),
    # ---- arts & entertainment --------------------------------------------------
    ("movie_theater", "Cinema", ("arts_entertainment",)),
    ("museum", "Museums", ("arts_entertainment",)),
    ("art_gallery", "Art Galleries", ("arts_entertainment",)),
    ("arcade", "Arcades", ("arts_entertainment",)),
    ("escape_room", "Escape Games", ("arts_entertainment",)),
    ("theater", "Performing Arts", ("arts_entertainment",)),
    # ---- local & home services ---------------------------------------------
    ("laundromat", "Laundromat", ("local_services",)),
    ("dry_cleaner", "Dry Cleaning", ("local_services",)),
    ("bank", "Banks & Credit Unions", ("local_services",)),
    ("post_office", "Post Offices", ("local_services",)),
    ("library", "Libraries", ("local_services", "education")),
    ("locksmith", "Keys & Locksmiths", ("local_services", "home_services")),
    ("plumber", "Plumbing", ("home_services",)),
    ("electrician", "Electricians", ("home_services",)),
    ("landscaper", "Landscaping", ("home_services",)),
    ("cleaning_service", "Home Cleaning", ("home_services",)),
    ("storage_facility", "Self Storage", ("local_services",)),
    ("phone_repair_shop", "Mobile Phone Repair", ("local_services",)),
    ("shoe_repair_shop", "Shoe Repair", ("local_services",)),
    ("tailor", "Sewing & Alterations", ("local_services",)),
    # ---- hotels, pets, education ------------------------------------------
    ("hotel", "Hotels", ("hotels_travel",)),
    ("hostel", "Hostels", ("hotels_travel",)),
    ("bed_breakfast", "Bed & Breakfast", ("hotels_travel",)),
    ("veterinarian", "Veterinarians", ("pets", "health_medical")),
    ("pet_groomer", "Pet Groomers", ("pets",)),
    ("pet_store", "Pet Stores", ("pets", "shopping")),
    ("dog_park", "Dog Parks", ("pets", "active_life")),
    ("music_school", "Music Schools", ("education",)),
    ("tutoring_center", "Tutoring Centers", ("education",)),
    ("driving_school", "Driving Schools", ("education",)),
    ("daycare", "Child Care & Day Care", ("local_services", "education")),
)

#: Category ids that the dataset generator may assign as a POI's primary
#: category (leaf-ish nodes; top-level domains are never primary).
PRIMARY_CATEGORY_IDS: tuple[str, ...] = tuple(
    cid
    for cid, _, parents in CATEGORY_DEFS
    if parents  # roots are not primary
    and cid
    not in {
        "restaurants",  # too generic to be a believable Yelp primary category
        "bar",
        "cafe",
    }
)
