"""Assemble the concept graph and lexicon from the declarative tables."""

from __future__ import annotations

from functools import lru_cache

from repro.semantics.concepts import Concept, ConceptGraph, ConceptKind
from repro.semantics.lexicon import Lexicon
from repro.semantics.ontology.aspects import (
    ASPECT_DEFS,
    CATEGORY_ASPECTS,
    UNIVERSAL_ASPECTS,
)
from repro.semantics.ontology.categories import CATEGORY_DEFS, PRIMARY_CATEGORY_IDS
from repro.semantics.ontology.items import CATEGORY_ITEMS, ITEM_DEFS
from repro.semantics.ontology.surface import SURFACE_FORMS

#: Difficulty assigned to a concept's own label when no explicit form
#: overrides it — a label is trivially matchable by keyword search.
LABEL_DIFFICULTY = 0.05


def build_concept_graph() -> ConceptGraph:
    """Build the full concept DAG.

    Aspects and items are registered before categories because a few
    categories have aspect parents (e.g. ``sports_bar`` is-a
    ``watch_sports``).
    """
    graph = ConceptGraph()
    for cid, label, parents in ASPECT_DEFS:
        graph.add(Concept(cid, ConceptKind.ASPECT, label, parents))
    for cid, label, parents in ITEM_DEFS:
        graph.add(Concept(cid, ConceptKind.ITEM, label, parents))
    for cid, label, parents in CATEGORY_DEFS:
        graph.add(Concept(cid, ConceptKind.CATEGORY, label, parents))
    return graph


def build_lexicon(graph: ConceptGraph) -> Lexicon:
    """Build the lexicon: explicit surface forms plus each concept's label."""
    lexicon = Lexicon()
    for concept in graph:
        lexicon.add_phrase(concept.label, concept.id, LABEL_DIFFICULTY)
        for phrase, difficulty in SURFACE_FORMS.get(concept.id, ()):
            lexicon.add_phrase(phrase, concept.id, difficulty)
    return lexicon


def category_items(category_id: str) -> tuple[str, ...]:
    """Items a category plausibly offers (empty tuple when none)."""
    return CATEGORY_ITEMS.get(category_id, ())


def category_aspects(category_id: str) -> tuple[str, ...]:
    """Aspects that fit a category, including the universal ones."""
    specific = CATEGORY_ASPECTS.get(category_id, ())
    return specific + tuple(a for a in UNIVERSAL_ASPECTS if a not in specific)


def primary_categories() -> tuple[str, ...]:
    """Category ids eligible as a POI's primary category."""
    return PRIMARY_CATEGORY_IDS


@lru_cache(maxsize=1)
def default_ontology() -> tuple[ConceptGraph, Lexicon]:
    """The shared (graph, lexicon) pair, built once per process."""
    graph = build_concept_graph()
    return graph, build_lexicon(graph)
