"""Declarative concept inventory: categories, items, aspects, surface forms."""

from repro.semantics.ontology.build import (
    build_concept_graph,
    build_lexicon,
    category_aspects,
    category_items,
    default_ontology,
    primary_categories,
)

__all__ = [
    "build_concept_graph",
    "build_lexicon",
    "category_aspects",
    "category_items",
    "default_ontology",
    "primary_categories",
]
