"""Dataset container: a city's POI records with lookup and persistence."""

from __future__ import annotations

import gzip
import json
from collections.abc import Iterator
from pathlib import Path

from repro.data.model import POIRecord
from repro.errors import DatasetError
from repro.geo.bbox import BoundingBox
from repro.text.tokenize import count_tokens


class Dataset:
    """An ordered collection of :class:`POIRecord` with id-based lookup."""

    def __init__(self, records: list[POIRecord], city_code: str = "") -> None:
        self._records = list(records)
        self._by_id = {r.business_id: r for r in self._records}
        if len(self._by_id) != len(self._records):
            raise DatasetError("duplicate business_id in dataset")
        self.city_code = city_code

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[POIRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> POIRecord:
        return self._records[index]

    def get(self, business_id: str) -> POIRecord:
        """Record by business id (KeyError when absent)."""
        return self._by_id[business_id]

    def contains_id(self, business_id: str) -> bool:
        """Whether a record with ``business_id`` exists."""
        return business_id in self._by_id

    def in_range(self, box: BoundingBox) -> list[POIRecord]:
        """All records whose location lies inside ``box`` (linear scan)."""
        return [
            r for r in self._records if box.contains_coords(r.latitude, r.longitude)
        ]

    def replace(self, record: POIRecord) -> None:
        """Swap in an updated record with the same business id (in place)."""
        if record.business_id not in self._by_id:
            raise DatasetError(f"unknown business_id {record.business_id!r}")
        for i, existing in enumerate(self._records):
            if existing.business_id == record.business_id:
                self._records[i] = record
                break
        self._by_id[record.business_id] = record

    def statistics(self) -> dict[str, float]:
        """Corpus statistics matching the paper's §3.1 reporting."""
        if not self._records:
            return {"poi_count": 0, "avg_tips": 0.0, "avg_tip_tokens": 0.0,
                    "avg_summary_tokens": 0.0}
        total_tips = sum(r.tip_count for r in self._records)
        total_tokens = sum(count_tokens(r.tips) for r in self._records)
        summaries = [r.tip_summary for r in self._records if r.tip_summary]
        avg_summary = (
            count_tokens(summaries) / len(summaries) if summaries else 0.0
        )
        n = len(self._records)
        return {
            "poi_count": n,
            "avg_tips": total_tips / n,
            "avg_tip_tokens": total_tokens / n,
            "avg_summary_tokens": avg_summary,
        }

    # ------------------------------------------------------------------
    # persistence (JSONL, optionally gzipped by file extension)
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the dataset as JSON Lines (``.gz`` suffix enables gzip)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        opener = gzip.open if path.suffix == ".gz" else open
        with opener(path, "wt", encoding="utf-8") as fh:
            fh.write(json.dumps({"city_code": self.city_code}) + "\n")
            for record in self._records:
                fh.write(json.dumps(record.to_dict(), ensure_ascii=False) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        """Read a dataset written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"dataset file not found: {path}")
        opener = gzip.open if path.suffix == ".gz" else open
        records: list[POIRecord] = []
        city_code = ""
        with opener(path, "rt", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DatasetError(
                        f"{path}:{line_no + 1}: invalid JSON ({exc})"
                    ) from exc
                if line_no == 0 and "business_id" not in data:
                    city_code = data.get("city_code", "")
                    continue
                records.append(POIRecord.from_dict(data))
        return cls(records, city_code=city_code)
