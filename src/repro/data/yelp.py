"""The synthetic Yelp-style dataset generator.

Stands in for the Yelp Open Dataset the paper uses (which cannot be
redistributed; the paper itself documents construction steps instead of
shipping data — this module plays that role offline). Records follow the
paper's Table 1 schema exactly, and the corpus statistics target §3.1:
five cities with the paper's POI counts, ~11 tips and ~147 tip tokens per
POI.

Generation is fully deterministic given a seed. Each POI is created from a
latent :class:`~repro.semantics.concepts.ConceptProfile`; tips, name,
hours, and categories are all *renderings* of that profile, which is what
later lets ground truth be defined independently of any retrieval model.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence

from repro.data.gen.hours import generate_hours
from repro.data.gen.names import generate_name
from repro.data.gen.streets import generate_street_address
from repro.data.gen.tips import generate_tips
from repro.data.model import POIRecord
from repro.geo.regions import CityRegion
from repro.semantics.concepts import ConceptGraph, ConceptKind, ConceptProfile
from repro.semantics.lexicon import Lexicon
from repro.semantics.ontology.build import (
    category_aspects,
    category_items,
    default_ontology,
    primary_categories,
)

#: Sampling weight per top-level domain — food and nightlife dominate Yelp.
_DOMAIN_WEIGHTS: dict[str, float] = {
    "food_drink": 3.0,
    "restaurants": 3.0,
    "nightlife": 1.6,
    "shopping": 1.4,
    "beauty_spas": 1.0,
    "automotive": 0.9,
    "health_medical": 0.8,
    "active_life": 0.8,
    "arts_entertainment": 0.7,
    "local_services": 0.7,
    "home_services": 0.5,
    "hotels_travel": 0.5,
    "pets": 0.5,
    "education": 0.4,
}

#: Aspects that boost the star rating when present.
_STAR_BOOST_ASPECTS = frozenset(
    {"friendly_staff", "fresh_ingredients", "craft_quality", "reliable_service",
     "gentle_care", "local_favorite", "hidden_gem", "knowledgeable_staff"}
)


def _business_id(city_code: str, index: int, seed: int) -> str:
    """A stable 22-character Yelp-like business id."""
    digest = hashlib.sha256(f"{seed}:{city_code}:{index}".encode()).hexdigest()
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_"
    value = int(digest, 16)
    chars = []
    for _ in range(22):
        value, rem = divmod(value, 64)
        chars.append(alphabet[rem])
    return "".join(chars)


class YelpStyleGenerator:
    """Deterministic generator of city POI sets."""

    def __init__(
        self,
        graph: ConceptGraph | None = None,
        lexicon: Lexicon | None = None,
        seed: int = 7,
    ) -> None:
        if graph is None or lexicon is None:
            graph, lexicon = default_ontology()
        self._graph = graph
        self._lexicon = lexicon
        self._seed = seed
        self._category_pool, self._category_weights = self._build_category_pool()

    def _build_category_pool(self) -> tuple[list[str], list[float]]:
        pool: list[str] = []
        weights: list[float] = []
        for cid in primary_categories():
            concept = self._graph.get(cid)
            roots = [a for a in self._graph.ancestors(cid) if not self._graph.get(a).parents]
            if not roots:  # cid itself is a root child with a root parent only
                roots = list(concept.parents)
            weight = max(_DOMAIN_WEIGHTS.get(r, 0.5) for r in roots) if roots else 0.5
            pool.append(cid)
            weights.append(weight)
        return pool, weights

    def _sample_profile(self, rng: random.Random) -> ConceptProfile:
        category = rng.choices(self._category_pool, self._category_weights, k=1)[0]
        items = list(category_items(category))
        rng.shuffle(items)
        n_items = min(len(items), rng.choice((1, 2, 2, 3, 3, 4)))
        aspects = list(category_aspects(category))
        rng.shuffle(aspects)
        n_aspects = min(len(aspects), rng.choice((2, 2, 3, 3, 4)))
        secondary: tuple[str, ...] = ()
        if rng.random() < 0.12:
            parents = self._graph.get(category).parents
            if parents:
                siblings = [
                    c.id
                    for c in self._graph.of_kind(ConceptKind.CATEGORY)
                    if c.id != category and set(c.parents) & set(parents)
                ]
                if siblings:
                    secondary = (rng.choice(siblings),)
        return ConceptProfile(
            category=category,
            items=tuple(items[:n_items]),
            aspects=tuple(aspects[:n_aspects]),
            secondary_categories=secondary,
        )

    def _categories_attribute(self, profile: ConceptProfile) -> tuple[str, ...]:
        """The Yelp ``categories`` strings: own label + broader labels."""
        labels: list[str] = []
        for cid in (profile.category, *profile.secondary_categories):
            concept = self._graph.get(cid)
            labels.append(concept.label)
            for ancestor in sorted(self._graph.ancestors(cid)):
                label = self._graph.get(ancestor).label
                if label not in labels:
                    labels.append(label)
        return tuple(labels)

    def _sample_stars(self, profile: ConceptProfile, rng: random.Random) -> float:
        base = rng.gauss(3.6, 0.7)
        boost = 0.15 * sum(
            1 for a in profile.aspects if a in _STAR_BOOST_ASPECTS
        )
        raw = base + boost
        return min(5.0, max(1.0, round(raw * 2.0) / 2.0))

    def _sample_location(
        self,
        city: CityRegion,
        clusters: Sequence[tuple[float, float]],
        rng: random.Random,
    ) -> tuple[float, float]:
        bounds = city.bounds
        if clusters and rng.random() < 0.72:
            clat, clon = rng.choice(clusters)
            spread_lat = (bounds.max_lat - bounds.min_lat) * 0.045
            spread_lon = (bounds.max_lon - bounds.min_lon) * 0.045
            lat = rng.gauss(clat, spread_lat)
            lon = rng.gauss(clon, spread_lon)
        else:
            lat = rng.uniform(bounds.min_lat, bounds.max_lat)
            lon = rng.uniform(bounds.min_lon, bounds.max_lon)
        lat = min(bounds.max_lat, max(bounds.min_lat, lat))
        lon = min(bounds.max_lon, max(bounds.min_lon, lon))
        return lat, lon

    def generate_city(
        self, city: CityRegion, count: int | None = None
    ) -> list[POIRecord]:
        """Generate ``count`` POIs (default: the paper's count) for ``city``."""
        n = count if count is not None else city.poi_count
        if n <= 0:
            raise ValueError(f"POI count must be positive, got {n}")
        rng = random.Random(f"{self._seed}:{city.code}")
        bounds = city.bounds
        n_clusters = max(3, len(city.neighborhoods) // 2)
        clusters = [
            (
                rng.uniform(bounds.min_lat, bounds.max_lat),
                rng.uniform(bounds.min_lon, bounds.max_lon),
            )
            for _ in range(n_clusters)
        ]
        # Pin one cluster to the city centre so downtown is dense.
        clusters[0] = (city.center.lat, city.center.lon)

        records: list[POIRecord] = []
        for i in range(n):
            profile = self._sample_profile(rng)
            concept = self._graph.get(profile.category)
            name, _leaks = generate_name(profile.category, concept.label, rng)
            stars = self._sample_stars(profile, rng)
            lat, lon = self._sample_location(city, clusters, rng)
            hours = generate_hours(profile.category, profile.aspects, rng)
            tips = generate_tips(profile, stars, self._lexicon, rng)
            records.append(
                POIRecord(
                    business_id=_business_id(city.code, i, self._seed),
                    name=name,
                    address=generate_street_address(rng),
                    city=city.name,
                    state=city.state,
                    latitude=lat,
                    longitude=lon,
                    stars=stars,
                    is_open=1 if rng.random() < 0.95 else 0,
                    categories=self._categories_attribute(profile),
                    hours=hours,
                    tips=tips,
                    profile=profile,
                )
            )
        return records
