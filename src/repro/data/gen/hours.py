"""Opening-hours generation in the Yelp ``'Day': 'H:M-H:M'`` format.

Hours are driven by the business category's typical rhythm and adjusted by
the POI's aspects: ``late_night`` pushes closing time toward 2am,
``open_early`` pulls opening toward 6am — so hours are *consistent with the
tips*, letting the simulated LLM reason about "open late" queries from
either signal, like the paper's refinement prompt intends.
"""

from __future__ import annotations

import random

DAYS: tuple[str, ...] = (
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday",
    "Sunday",
)

#: (open_hour, close_hour, open_weekends) defaults per rhythm class.
_RHYTHMS: dict[str, tuple[int, int, bool]] = {
    "breakfast": (6, 14, True),    # diners, bakeries, brunch
    "daytime": (9, 17, False),     # offices, services, clinics
    "retail": (10, 19, True),      # shops
    "dinner": (11, 22, True),      # restaurants
    "nightlife": (16, 26, True),   # bars, clubs (26 == 2am next day)
    "always": (0, 24, True),       # gas stations, some gyms
}

_CATEGORY_RHYTHM: dict[str, str] = {
    "coffee_shop": "breakfast", "tea_house": "retail", "cafe": "breakfast",
    "bakery": "breakfast", "donut_shop": "breakfast", "juice_bar": "breakfast",
    "ice_cream_shop": "retail", "dessert_shop": "retail",
    "bubble_tea_shop": "retail", "diner": "breakfast",
    "breakfast_brunch": "breakfast", "deli": "breakfast",
    "bar": "nightlife", "sports_bar": "nightlife", "dive_bar": "nightlife",
    "wine_bar": "nightlife", "cocktail_bar": "nightlife", "pub": "nightlife",
    "gastropub": "nightlife", "brewery": "nightlife", "nightclub": "nightlife",
    "karaoke_bar": "nightlife", "music_venue": "nightlife",
    "comedy_club": "nightlife",
    "gas_station": "always", "convenience_store": "always",
    "laundromat": "always", "storage_facility": "daytime",
    "pharmacy": "retail", "grocery_store": "retail",
    "hotel": "always", "hostel": "always", "bed_breakfast": "always",
    "urgent_care": "retail", "gym": "always",
    "dentist": "daytime", "family_doctor": "daytime",
    "optometrist": "daytime", "chiropractor": "daytime",
    "physical_therapy": "daytime", "bank": "daytime",
    "post_office": "daytime", "library": "retail", "daycare": "daytime",
    "auto_repair": "daytime", "tire_shop": "daytime",
    "oil_change_station": "daytime", "car_wash": "retail",
    "car_dealer": "retail", "auto_parts_store": "retail",
    "body_shop": "daytime", "plumber": "daytime", "electrician": "daytime",
    "landscaper": "daytime", "cleaning_service": "daytime",
    "locksmith": "daytime", "dry_cleaner": "daytime",
    "phone_repair_shop": "retail", "shoe_repair_shop": "daytime",
    "tailor": "daytime", "veterinarian": "daytime", "pet_groomer": "daytime",
    "movie_theater": "dinner", "museum": "daytime", "art_gallery": "retail",
    "theater": "dinner", "arcade": "dinner", "escape_room": "dinner",
    "bowling_alley": "dinner", "golf_course": "breakfast",
    "swimming_pool": "breakfast", "dog_park": "always",
    "farmers_market": "breakfast",
}


def _fmt(hour: int) -> str:
    """Format an hour (possibly >= 24, meaning past midnight) as ``H:0``."""
    return f"{hour % 24}:0"


def generate_hours(
    category_id: str,
    aspects: tuple[str, ...],
    rng: random.Random,
) -> dict[str, str]:
    """Generate Yelp-format hours consistent with the category and aspects.

    Closed days are simply absent from the dict, as in the raw Yelp data.
    A day entry of ``'0:0-0:0'`` denotes closed-that-day (Yelp's quirk,
    visible in the paper's Table 1 sample).
    """
    rhythm = _CATEGORY_RHYTHM.get(category_id, "dinner" if "restaurant" in category_id else "retail")
    open_h, close_h, open_weekends = _RHYTHMS[rhythm]

    open_h += rng.choice((-1, 0, 0, 1))
    close_h += rng.choice((-1, 0, 0, 1))
    if "open_early" in aspects:
        open_h = min(open_h, 6)
    if "late_night" in aspects:
        close_h = max(close_h, 24 + rng.choice((0, 1, 2)))
    if rhythm == "always":
        open_h, close_h = 0, 24

    open_h = max(0, open_h)
    close_h = max(open_h + 4, close_h)

    hours: dict[str, str] = {}
    closed_day = rng.choice(DAYS[:5]) if rng.random() < 0.25 else None
    for day in DAYS:
        weekend = day in ("Saturday", "Sunday")
        if weekend and not open_weekends and rng.random() < 0.7:
            hours[day] = "0:0-0:0"
            continue
        if day == closed_day:
            hours[day] = "0:0-0:0"
            continue
        day_open, day_close = open_h, close_h
        if weekend and rhythm in ("dinner", "nightlife"):
            day_close = close_h + 1
        if day == "Sunday" and rhythm in ("retail", "daytime"):
            day_open, day_close = max(day_open, 10), min(day_close, 17)
        if rhythm == "always":
            hours[day] = "0:0-24:0"
            continue
        hours[day] = f"{_fmt(day_open)}-{_fmt(day_close)}"
    return hours


def is_open_late(hours: dict[str, str]) -> bool:
    """Whether any day closes at/after midnight (simulated-LLM reasoning)."""
    for span in hours.values():
        if span == "0:0-24:0":
            return True
        try:
            open_part, close_part = span.split("-")
            open_h = int(open_part.split(":")[0])
            close_h = int(close_part.split(":")[0])
        except ValueError:
            continue
        if close_h != 0 and (close_h < open_h or close_h >= 24):
            return True
    return False


def opens_early(hours: dict[str, str]) -> bool:
    """Whether any day opens at or before 7am."""
    for span in hours.values():
        if span in ("0:0-0:0",):
            continue
        if span == "0:0-24:0":
            return True
        try:
            open_h = int(span.split("-")[0].split(":")[0])
        except ValueError:
            continue
        if 0 < open_h <= 7:
            return True
    return False
