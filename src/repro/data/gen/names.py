"""Business-name generation.

Names follow four templates. Two of them *leak* the business category into
the name ("Mike's Ice Cream", "Lakeside Sushi Bar") and two do not
("Copper Kettle", "Industry & Oak"). The non-leaking fraction is what makes
the Figure-1 phenomenon reproducible: a keyword search for "café" cannot
find "Industry Beans" even though its tips are all about flat whites.
"""

from __future__ import annotations

import random

FIRST_NAMES: tuple[str, ...] = (
    "Mike", "Sarah", "Tony", "Rosa", "Jack", "Elena", "Sam", "Nina",
    "Leo", "Grace", "Otis", "May", "Frank", "Ida", "Gus", "Pearl",
    "Ray", "Vera", "Cal", "June", "Max", "Ruby", "Ned", "Hazel",
    "Joe", "Stella", "Art", "Daisy", "Walt", "Iris", "Hank", "Lucy",
)

LAST_NAMES: tuple[str, ...] = (
    "Miller", "Nguyen", "Garcia", "Rossi", "Kim", "Patel", "Brennan",
    "Kowalski", "Dubois", "Tanaka", "Ortiz", "Schmidt", "Olsen",
    "Romano", "Silva", "Janssen", "Costa", "Novak", "Weber", "Fontaine",
)

ADJECTIVES: tuple[str, ...] = (
    "Golden", "Lakeside", "Old Town", "Riverside", "Sunny", "Corner",
    "Downtown", "Uptown", "Little", "Grand", "Royal", "Happy", "Lucky",
    "Silver", "Prime", "Union", "Central", "Heritage", "Liberty",
    "Midtown", "Classic", "Urban", "Garden", "Harbor",
)

#: Word pairs for evocative (category-opaque) names.
EVOCATIVE_FIRST: tuple[str, ...] = (
    "Copper", "Iron", "Velvet", "Cedar", "Amber", "Indigo", "Willow",
    "Juniper", "Ember", "Marble", "Raven", "Honey", "Clover", "Slate",
    "Wren", "Birch", "Fox", "Harvest", "Meridian", "Cobalt", "Saffron",
    "Magnolia", "Hollow", "Tandem", "Paper", "Industry", "Atlas",
    "Penny", "Maple", "Drift", "Nomad", "Summit",
)

EVOCATIVE_SECOND: tuple[str, ...] = (
    "Kettle", "Anchor", "Finch", "Oak", "Lantern", "Compass", "Harbor",
    "Beans", "Press", "Social", "House", "Standard", "Supply", "Mercantile",
    "Collective", "Branch", "Post", "Parlor", "Exchange", "Commons",
    "Workshop", "Company", "Provisions", "Hall", "Room", "Letter",
)

#: Explicit category nouns where the Yelp label doesn't read as a name part.
_CATEGORY_NOUN_OVERRIDES: dict[str, tuple[str, ...]] = {
    "coffee_shop": ("Coffee", "Cafe", "Coffee Roasters", "Espresso Bar"),
    "tea_house": ("Tea House", "Tea Room"),
    "cafe": ("Cafe", "Coffee House"),
    "bakery": ("Bakery", "Bakehouse", "Breads"),
    "ice_cream_shop": ("Ice Cream", "Creamery", "Scoops"),
    "donut_shop": ("Donuts", "Donut Co."),
    "juice_bar": ("Juice Bar", "Juicery", "Smoothies"),
    "dessert_shop": ("Desserts", "Sweets"),
    "bubble_tea_shop": ("Bubble Tea", "Boba"),
    "italian_restaurant": ("Italian Kitchen", "Trattoria", "Ristorante"),
    "japanese_restaurant": ("Japanese Kitchen", "Izakaya"),
    "sushi_bar": ("Sushi", "Sushi Bar", "Sushi House"),
    "ramen_shop": ("Ramen", "Ramen House"),
    "chinese_restaurant": ("Chinese Restaurant", "Wok", "Garden"),
    "mexican_restaurant": ("Mexican Grill", "Cantina", "Cocina"),
    "taqueria": ("Taqueria", "Tacos"),
    "thai_restaurant": ("Thai Kitchen", "Thai Cuisine"),
    "indian_restaurant": ("Indian Cuisine", "Curry House", "Tandoor"),
    "vietnamese_restaurant": ("Pho", "Vietnamese Kitchen"),
    "korean_restaurant": ("Korean BBQ", "Korean Kitchen"),
    "mediterranean_restaurant": ("Mediterranean Grill", "Kebab House"),
    "greek_restaurant": ("Greek Taverna", "Gyro House"),
    "french_restaurant": ("Bistro", "Brasserie"),
    "american_restaurant": ("Grill", "Kitchen", "Eatery"),
    "new_american_restaurant": ("Kitchen & Bar", "Table", "Eatery"),
    "southern_restaurant": ("Southern Kitchen", "Biscuit Co."),
    "cajun_restaurant": ("Cajun Kitchen", "Creole House"),
    "bbq_joint": ("BBQ", "Smokehouse", "Barbecue Pit"),
    "steakhouse": ("Steakhouse", "Chophouse", "Prime Steaks"),
    "seafood_restaurant": ("Seafood", "Fish House", "Oyster Bar"),
    "pizza_place": ("Pizza", "Pizzeria", "Pizza Co."),
    "burger_joint": ("Burgers", "Burger Bar", "Patty Shack"),
    "sandwich_shop": ("Sandwiches", "Subs", "Sandwich Co."),
    "deli": ("Deli", "Delicatessen"),
    "diner": ("Diner", "Lunch Counter"),
    "breakfast_brunch": ("Breakfast House", "Brunch Kitchen", "Pancake House"),
    "vegan_restaurant": ("Vegan Kitchen", "Plant Cafe"),
    "vegetarian_restaurant": ("Vegetarian Kitchen", "Greens"),
    "food_truck": ("Food Truck", "Street Kitchen"),
    "buffet": ("Buffet", "All-You-Can-Eat"),
    "fast_food": ("Drive-In", "Express Grill", "Quick Bites"),
    "chicken_wings_joint": ("Wings", "Wing Shack", "Hot Wings"),
    "soup_spot": ("Soup Co.", "Soup Kitchen"),
    "salad_bar": ("Salads", "Greens Bar"),
    "tapas_bar": ("Tapas", "Small Plates"),
    "noodle_house": ("Noodle House", "Noodle Bar"),
    "bar": ("Bar", "Lounge"),
    "sports_bar": ("Sports Bar", "Sports Grill", "Taphouse"),
    "dive_bar": ("Tavern", "Saloon", "Bar"),
    "wine_bar": ("Wine Bar", "Vino", "Cellar"),
    "cocktail_bar": ("Cocktail Lounge", "Cocktails", "Bar Room"),
    "pub": ("Pub", "Public House", "Alehouse"),
    "gastropub": ("Gastropub", "Kitchen & Taps"),
    "brewery": ("Brewing Co.", "Brewery", "Brewworks"),
    "nightclub": ("Nightclub", "Club"),
    "karaoke_bar": ("Karaoke", "Karaoke Lounge"),
    "music_venue": ("Music Hall", "Ballroom", "Stage"),
    "comedy_club": ("Comedy Club", "Laugh House"),
    "grocery_store": ("Grocery", "Market", "Foods"),
    "farmers_market": ("Farmers Market", "Market"),
    "convenience_store": ("Mini Mart", "Corner Store", "Quick Stop"),
    "bookstore": ("Books", "Bookshop", "Book Exchange"),
    "clothing_store": ("Boutique", "Clothing Co.", "Apparel"),
    "mens_clothing_store": ("Menswear", "Clothiers", "Haberdashery"),
    "shoe_store": ("Shoes", "Footwear", "Shoe Co."),
    "jewelry_store": ("Jewelers", "Fine Jewelry", "Gems"),
    "florist": ("Flowers", "Florist", "Blooms"),
    "gift_shop": ("Gifts", "Gift Shop", "Curiosities"),
    "toy_store": ("Toys", "Toy Shop", "Playthings"),
    "hardware_store": ("Hardware", "Tools & Supply"),
    "electronics_store": ("Electronics", "Tech Shop"),
    "record_store": ("Records", "Vinyl", "Music Exchange"),
    "thrift_store": ("Thrift", "Second Chances", "Resale"),
    "furniture_store": ("Furniture", "Home Furnishings"),
    "sporting_goods_store": ("Sporting Goods", "Outfitters", "Sports Gear"),
    "liquor_store": ("Liquors", "Wine & Spirits", "Bottle Shop"),
    "auto_repair": ("Auto Repair", "Auto Care", "Garage", "Automotive"),
    "tire_shop": ("Tire Center", "Tires", "Tire & Wheel"),
    "oil_change_station": ("Quick Lube", "Oil & Lube", "Express Oil"),
    "car_wash": ("Car Wash", "Auto Spa", "Wash & Shine"),
    "gas_station": ("Fuel Stop", "Gas & Go", "Petroleum"),
    "car_dealer": ("Motors", "Auto Sales", "Cars"),
    "auto_parts_store": ("Auto Parts", "Parts & Supply"),
    "body_shop": ("Collision Center", "Auto Body", "Body Works"),
    "hair_salon": ("Salon", "Hair Studio", "Hair & Co."),
    "barber_shop": ("Barbershop", "Barbers", "Cuts"),
    "nail_salon": ("Nails", "Nail Bar", "Nail Studio"),
    "day_spa": ("Day Spa", "Spa & Wellness", "Spa Retreat"),
    "massage_studio": ("Massage", "Bodyworks", "Massage Therapy"),
    "tattoo_parlor": ("Tattoo", "Ink Studio", "Tattoo Parlor"),
    "dentist": ("Dental", "Family Dentistry", "Dental Care"),
    "family_doctor": ("Family Medicine", "Medical Group", "Clinic"),
    "urgent_care": ("Urgent Care", "Walk-In Clinic"),
    "optometrist": ("Eye Care", "Vision Center", "Optical"),
    "chiropractor": ("Chiropractic", "Spine & Wellness"),
    "pharmacy": ("Pharmacy", "Drugs", "Apothecary"),
    "physical_therapy": ("Physical Therapy", "Rehab & Motion"),
    "gym": ("Fitness", "Gym", "Athletic Club", "Strength Co."),
    "yoga_studio": ("Yoga", "Yoga Studio", "Yoga Loft"),
    "pilates_studio": ("Pilates", "Core Studio"),
    "climbing_gym": ("Climbing", "Boulders", "Ascent Gym"),
    "swimming_pool": ("Aquatic Center", "Swim Club", "Pools"),
    "bowling_alley": ("Lanes", "Bowl", "Bowling Center"),
    "golf_course": ("Golf Club", "Links", "Golf Course"),
    "bike_shop": ("Cycles", "Bike Shop", "Cyclery"),
    "dance_studio": ("Dance Studio", "Dance Academy"),
    "martial_arts_studio": ("Martial Arts", "Karate Academy", "Dojo"),
    "movie_theater": ("Cinema", "Theatres", "Picture House"),
    "museum": ("Museum", "History Center", "Gallery of History"),
    "art_gallery": ("Gallery", "Art Space", "Fine Art"),
    "arcade": ("Arcade", "Game Room", "Pinball Hall"),
    "escape_room": ("Escape Rooms", "Puzzle House"),
    "theater": ("Theatre", "Playhouse", "Performing Arts Center"),
    "laundromat": ("Laundry", "Wash House", "Coin Laundry"),
    "dry_cleaner": ("Cleaners", "Dry Cleaning"),
    "bank": ("Bank", "Credit Union", "Savings"),
    "post_office": ("Postal Center", "Mail & Ship"),
    "library": ("Library", "Public Library", "Reading Room"),
    "locksmith": ("Lock & Key", "Locksmith", "Security"),
    "plumber": ("Plumbing", "Plumbing Co.", "Pipe Works"),
    "electrician": ("Electric", "Electrical Services"),
    "landscaper": ("Landscaping", "Lawn & Garden", "Gardens"),
    "cleaning_service": ("Cleaning Co.", "Maid Service", "Home Cleaning"),
    "storage_facility": ("Storage", "Self Storage", "Store-All"),
    "phone_repair_shop": ("Phone Repair", "Device Fix", "Screen Repair"),
    "shoe_repair_shop": ("Shoe Repair", "Cobbler", "Boot & Shoe"),
    "tailor": ("Tailoring", "Alterations", "Tailor Shop"),
    "hotel": ("Hotel", "Inn", "Suites", "Lodge"),
    "hostel": ("Hostel", "Backpackers"),
    "bed_breakfast": ("Bed & Breakfast", "Guest House", "Inn"),
    "veterinarian": ("Animal Hospital", "Veterinary Clinic", "Pet Care"),
    "pet_groomer": ("Pet Grooming", "Grooming Co.", "Paws & Claws"),
    "pet_store": ("Pet Supply", "Pets", "Pet Shop"),
    "dog_park": ("Dog Park", "Bark Park"),
    "music_school": ("School of Music", "Music Academy"),
    "tutoring_center": ("Tutoring", "Learning Center", "Academics"),
    "driving_school": ("Driving School", "Driver Training"),
    "daycare": ("Daycare", "Child Care", "Little Learners"),
}


def category_nouns(category_id: str, label: str) -> tuple[str, ...]:
    """Name nouns for a category; fall back to the Yelp label itself."""
    return _CATEGORY_NOUN_OVERRIDES.get(category_id, (label,))


def generate_name(
    category_id: str,
    label: str,
    rng: random.Random,
    evocative_fraction: float = 0.35,
) -> tuple[str, bool]:
    """Generate a business name; return ``(name, leaks_category)``.

    ``leaks_category`` is True when the name contains the category noun
    (and so is findable by naive keyword search on the category word).
    """
    if rng.random() < evocative_fraction:
        first = rng.choice(EVOCATIVE_FIRST)
        second = rng.choice(EVOCATIVE_SECOND)
        style = rng.random()
        if style < 0.2:
            return f"{first} & {rng.choice(EVOCATIVE_SECOND[:10])}", False
        if style < 0.35:
            return f"The {first} {second}", False
        return f"{first} {second}", False

    noun = rng.choice(category_nouns(category_id, label))
    template = rng.random()
    if template < 0.4:
        owner = rng.choice(FIRST_NAMES)
        return f"{owner}'s {noun}", True
    if template < 0.7:
        return f"{rng.choice(ADJECTIVES)} {noun}", True
    surname = rng.choice(LAST_NAMES)
    return f"{surname} {noun}", True
