"""Generators for the synthetic Yelp-style corpus (names, hours, tips)."""

from repro.data.gen.hours import DAYS, generate_hours, is_open_late, opens_early
from repro.data.gen.names import generate_name
from repro.data.gen.streets import generate_street_address
from repro.data.gen.tips import generate_tips

__all__ = [
    "DAYS",
    "generate_hours",
    "generate_name",
    "generate_street_address",
    "generate_tips",
    "is_open_late",
    "opens_early",
]
