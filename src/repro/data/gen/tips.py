"""Tip (short review) generation.

Tips are the dataset's semantic payload: they express the POI's latent
concepts through surface forms of mixed difficulty, so that

* every latent concept is mentioned in at least one tip (the full-lexicon
  reader can in principle recover the whole profile),
* phrasing varies — a café's tips may say "flat white" and "pour over"
  without ever containing the word "café" (the Figure-1 phenomenon),
* sentiment correlates with the star rating, and a small distractor rate
  mentions concepts the POI does *not* carry (as real reviews do:
  "better than any taqueria in town" at a burger joint), bounding every
  text-based system's precision honestly.

Statistics target the paper's §3.1: ~11 tips and ~147 tokens per POI.
"""

from __future__ import annotations

import random

from repro.semantics.concepts import ConceptProfile
from repro.semantics.lexicon import Lexicon, SurfaceForm

_POSITIVE_TEMPLATES: tuple[str, ...] = (
    "Love the {a} here!",
    "The {a} is amazing. Highly recommend.",
    "Great {a} and even better {b}.",
    "Came for the {a}, stayed for the {b}.",
    "Best {a} I've had in ages.",
    "{a} was top notch. Will be back!",
    "You have to try the {a}.",
    "Really impressed by the {a}.",
    "Solid {a}, and the {b} never disappoints.",
    "If you're after {a}, this is the spot.",
    "The {a} alone is worth the visit.",
    "Obsessed with their {a}.",
)

_NEGATIVE_TEMPLATES: tuple[str, ...] = (
    "Disappointed — the {a} was not great this time.",
    "The {a} used to be better. Went downhill.",
    "Overpriced for what you get. {a} was just okay.",
    "Long wait, and the {a} didn't make up for it.",
    "Meh. The {a} left a lot to be desired.",
)

_MIXED_TEMPLATES: tuple[str, ...] = (
    "Orders get mixed up sometimes, but the {a} keeps me coming back.",
    "Busy on weekends, still worth it for the {a}.",
    "Hit or miss, but when the {a} is on, it's on.",
)

_FILLER_TIPS: tuple[str, ...] = (
    "Will definitely return.",
    "Worth the trip across town.",
    "My go-to spot in the neighborhood.",
    "Can't wait to come back.",
    "Been coming here for years and it never gets old.",
    "Exactly what this part of town needed.",
    "Don't sleep on this place.",
    "Tell them a regular sent you.",
)

_DISTRACTOR_TEMPLATES: tuple[str, ...] = (
    "Better than any {a} in town, honestly.",
    "Skip the {a} next door and come here instead.",
    "Not a {a}, but scratches the same itch.",
)

#: Average tips per POI (paper: "an average of 11 tips").
MEAN_TIPS = 11
#: Probability that a tip is concept-free filler.
FILLER_RATE = 0.18
#: Probability that a concept-bearing tip mentions a concept the POI lacks.
DISTRACTOR_RATE = 0.05


def _weighted_form(forms: list[SurfaceForm], rng: random.Random) -> SurfaceForm:
    """Sample a surface form, favouring conversational (mid-difficulty) ones.

    Labels (difficulty ~0) still appear, but real reviews rarely call a
    café "Cafes" — they talk about lattes. Weight peaks near 0.45.
    """
    weights = [1.25 - abs(f.difficulty - 0.45) for f in forms]
    return rng.choices(forms, weights=weights, k=1)[0]


def _phrase_for(concept_id: str, lexicon: Lexicon, rng: random.Random) -> str:
    forms = lexicon.forms_of(concept_id)
    if not forms:
        return concept_id.replace("_", " ")
    return _weighted_form(forms, rng).phrase


def generate_tips(
    profile: ConceptProfile,
    stars: float,
    lexicon: Lexicon,
    rng: random.Random,
    mean_tips: int = MEAN_TIPS,
) -> tuple[str, ...]:
    """Generate this POI's tips from its latent concept profile."""
    n_tips = max(3, round(rng.gauss(mean_tips, 2.5)))
    mentionable = [c for c in profile.items + profile.aspects]
    if not mentionable:
        mentionable = [profile.category]

    # Guarantee coverage: cycle through the profile's concepts first, then
    # sample freely, so every latent concept is expressed at least once.
    concept_plan: list[str] = []
    pool = list(mentionable)
    rng.shuffle(pool)
    while len(concept_plan) < n_tips:
        if pool:
            concept_plan.append(pool.pop())
        else:
            concept_plan.append(rng.choice(mentionable))

    negative_rate = max(0.03, (4.6 - stars) * 0.12)
    tips: list[str] = []
    for i, concept in enumerate(concept_plan):
        # Filler only after all concepts are covered at least once.
        covered = i >= len(mentionable)
        if covered and rng.random() < FILLER_RATE:
            tips.append(rng.choice(_FILLER_TIPS))
            continue
        if covered and rng.random() < DISTRACTOR_RATE:
            distractor = rng.choice(_DISTRACTOR_CATEGORIES)
            phrase = _phrase_for(distractor, lexicon, rng)
            tips.append(rng.choice(_DISTRACTOR_TEMPLATES).format(a=phrase))
            continue

        phrase_a = _phrase_for(concept, lexicon, rng)
        roll = rng.random()
        if roll < negative_rate:
            template = rng.choice(_NEGATIVE_TEMPLATES)
        elif roll < negative_rate + 0.08:
            template = rng.choice(_MIXED_TEMPLATES)
        else:
            template = rng.choice(_POSITIVE_TEMPLATES)

        if "{b}" in template:
            other = rng.choice(mentionable)
            phrase_b = _phrase_for(other, lexicon, rng)
            if phrase_b == phrase_a:
                phrase_b = "service"
            tip = template.format(a=phrase_a, b=phrase_b)
        else:
            tip = template.format(a=phrase_a)
        if rng.random() < 0.55:
            tip = f"{tip} {rng.choice(_TAIL_SENTENCES)}"
        tips.append(tip)
    return tuple(tips)


#: Concept-neutral second sentences, appended to some tips so the corpus
#: token statistics land near the paper's ~147 tokens per POI.
_TAIL_SENTENCES: tuple[str, ...] = (
    "Totally worth it.",
    "Five stars from me.",
    "You won't regret stopping by.",
    "Tell your friends about this one.",
    "Easily one of my favorites around here.",
    "I keep telling everyone I know about it.",
    "Honestly it made my whole week.",
    "Do yourself a favor and check it out soon.",
)

#: Categories used for distractor mentions (common, recognizable ones).
_DISTRACTOR_CATEGORIES: tuple[str, ...] = (
    "pizza_place", "taqueria", "coffee_shop", "burger_joint", "bakery",
    "sports_bar", "diner", "food_truck",
)
