"""Street-name material for synthetic addresses."""

from __future__ import annotations

import random

STREET_NAMES: tuple[str, ...] = (
    "Main", "2nd Ave N", "Oak", "Maple", "Washington", "Lafayette Road",
    "Market", "Broad", "Church", "College", "Jefferson", "Monroe",
    "Walnut", "Chestnut", "Pine", "Cedar", "Spring", "High", "Mill",
    "Union", "Park Ave", "Front", "Water", "Bridge", "Canal", "Dock",
    "Elm", "Cherry", "Vine", "State", "Division", "Meridian",
)

STREET_SUFFIXES: tuple[str, ...] = (
    "St", "Ave", "Blvd", "Rd", "Dr", "Way", "Pl", "Ln",
)


def generate_street_address(rng: random.Random) -> str:
    """One-line street address like ``"129 2nd Ave N"`` or ``"482 Oak St"``."""
    number = rng.randint(1, 9999)
    name = rng.choice(STREET_NAMES)
    if any(ch.isdigit() for ch in name) or " " in name:
        return f"{number} {name}"
    return f"{number} {name} {rng.choice(STREET_SUFFIXES)}"
