"""The geo-textual object model (the paper's §3 data model).

A :class:`POIRecord` mirrors the Yelp record schema of the paper's Table 1:
business_id, name, address, city, state, latitude, longitude, stars,
tip_count, is_open, categories, hours, tips — plus the fields added by the
data-preparation module (completed address parts and the tip summary).

Each synthetic record additionally carries its latent
:class:`~repro.semantics.concepts.ConceptProfile` — the concepts the POI
was generated from. The profile is *ground-truth-only* metadata: query
processing systems must use :meth:`POIRecord.attributes` /
:meth:`POIRecord.document_text`, which expose exactly what the paper's
systems see (the textual record), never the latent profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import SchemaError
from repro.geo.point import GeoPoint
from repro.semantics.concepts import ConceptProfile

#: Attribute keys of the paper's Table 1 sample record, in display order.
TABLE1_KEYS: tuple[str, ...] = (
    "business_id", "name", "address", "city", "state", "latitude",
    "longitude", "stars", "tip_count", "is_open", "categories", "hours",
    "tips",
)


@dataclass
class POIRecord:
    """One geo-textual object ``o_i`` with location ``o_i.l`` and attributes ``o_i.A``."""

    business_id: str
    name: str
    address: str
    city: str
    state: str
    latitude: float
    longitude: float
    stars: float
    is_open: int
    categories: tuple[str, ...]
    hours: dict[str, str]
    tips: tuple[str, ...]
    # --- data-preparation outputs (empty until the prepare pipeline runs) ---
    county: str = ""
    suburb: str = ""
    neighborhood: str = ""
    tip_summary: str = ""
    # --- generator ground truth (never shown to query systems) -------------
    profile: ConceptProfile | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.business_id:
            raise SchemaError("business_id must be non-empty")
        if not self.name:
            raise SchemaError(f"POI {self.business_id}: name must be non-empty")
        if not -90.0 <= self.latitude <= 90.0:
            raise SchemaError(
                f"POI {self.business_id}: latitude {self.latitude} out of range"
            )
        if not -180.0 <= self.longitude <= 180.0:
            raise SchemaError(
                f"POI {self.business_id}: longitude {self.longitude} out of range"
            )
        if not 1.0 <= self.stars <= 5.0:
            raise SchemaError(
                f"POI {self.business_id}: stars {self.stars} outside [1, 5]"
            )
        if self.is_open not in (0, 1):
            raise SchemaError(
                f"POI {self.business_id}: is_open must be 0 or 1, got {self.is_open}"
            )

    @property
    def location(self) -> GeoPoint:
        """The location attribute ``o_i.l``."""
        return GeoPoint(self.latitude, self.longitude)

    @property
    def tip_count(self) -> int:
        """Number of tips, as in the raw Yelp schema."""
        return len(self.tips)

    def attributes(self, include_tips: bool = True) -> dict[str, Any]:
        """The non-location attributes ``o_i.A`` as a key-value dict.

        This is the record view the paper's systems consume: the raw POI
        attributes fed to the LLM refinement prompt and (via
        :meth:`document_text`) to the embedding model and the baselines.
        """
        attrs: dict[str, Any] = {
            "business_id": self.business_id,
            "name": self.name,
            "address": self.address,
            "city": self.city,
            "state": self.state,
            "stars": self.stars,
            "tip_count": self.tip_count,
            "is_open": self.is_open,
            "categories": ", ".join(self.categories),
            "hours": dict(self.hours),
        }
        if self.neighborhood:
            attrs["neighborhood"] = self.neighborhood
        if self.suburb:
            attrs["suburb"] = self.suburb
        if self.county:
            attrs["county"] = self.county
        if self.tip_summary:
            attrs["tip_summary"] = self.tip_summary
        if include_tips:
            attrs["tips"] = list(self.tips)
        return attrs

    def document_text(self, use_summary: bool = True) -> str:
        """The textual document representing this POI for retrieval.

        Mirrors the paper's embedding input: "POI name, address, categories,
        hours, and tip summary". When the summary has not been generated yet
        (or ``use_summary`` is False), the raw tips are used instead so the
        record is still searchable.
        """
        parts = [
            self.name,
            self.address,
            self.neighborhood,
            ", ".join(self.categories),
        ]
        if use_summary and self.tip_summary:
            parts.append(self.tip_summary)
        else:
            parts.extend(self.tips)
        return ". ".join(p for p in parts if p)

    def with_preparation(
        self,
        county: str,
        suburb: str,
        neighborhood: str,
        tip_summary: str,
    ) -> "POIRecord":
        """Return a copy with the data-preparation fields filled in."""
        return replace(
            self,
            county=county,
            suburb=suburb,
            neighborhood=neighborhood,
            tip_summary=tip_summary,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dict (includes the latent profile)."""
        data: dict[str, Any] = {
            "business_id": self.business_id,
            "name": self.name,
            "address": self.address,
            "city": self.city,
            "state": self.state,
            "latitude": self.latitude,
            "longitude": self.longitude,
            "stars": self.stars,
            "is_open": self.is_open,
            "categories": list(self.categories),
            "hours": dict(self.hours),
            "tips": list(self.tips),
            "county": self.county,
            "suburb": self.suburb,
            "neighborhood": self.neighborhood,
            "tip_summary": self.tip_summary,
        }
        if self.profile is not None:
            data["profile"] = {
                "category": self.profile.category,
                "secondary_categories": list(self.profile.secondary_categories),
                "items": list(self.profile.items),
                "aspects": list(self.profile.aspects),
            }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "POIRecord":
        """Inverse of :meth:`to_dict`; raises SchemaError on bad input."""
        try:
            profile_data = data.get("profile")
            profile = None
            if profile_data is not None:
                profile = ConceptProfile(
                    category=profile_data["category"],
                    secondary_categories=tuple(
                        profile_data.get("secondary_categories", ())
                    ),
                    items=tuple(profile_data.get("items", ())),
                    aspects=tuple(profile_data.get("aspects", ())),
                )
            return cls(
                business_id=data["business_id"],
                name=data["name"],
                address=data["address"],
                city=data["city"],
                state=data["state"],
                latitude=float(data["latitude"]),
                longitude=float(data["longitude"]),
                stars=float(data["stars"]),
                is_open=int(data["is_open"]),
                categories=tuple(data["categories"]),
                hours=dict(data["hours"]),
                tips=tuple(data["tips"]),
                county=data.get("county", ""),
                suburb=data.get("suburb", ""),
                neighborhood=data.get("neighborhood", ""),
                tip_summary=data.get("tip_summary", ""),
                profile=profile,
            )
        except KeyError as exc:
            raise SchemaError(f"record missing required key: {exc}") from exc
