"""Dataset exporters: GeoJSON and CSV.

The demo map and external GIS tools consume GeoJSON; CSV supports quick
inspection in spreadsheets. Both are plain stdlib, no dependencies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.data.dataset import Dataset
from repro.data.model import POIRecord


def record_to_feature(record: POIRecord) -> dict[str, Any]:
    """One POI as a GeoJSON Feature (point geometry, attribute properties)."""
    properties = record.attributes(include_tips=False)
    properties.pop("hours", None)  # nested dicts render poorly in GIS tools
    return {
        "type": "Feature",
        "geometry": {
            "type": "Point",
            # GeoJSON ordering is (lon, lat).
            "coordinates": [record.longitude, record.latitude],
        },
        "properties": properties,
    }


def to_geojson(dataset: Dataset) -> dict[str, Any]:
    """The whole dataset as a GeoJSON FeatureCollection dict."""
    return {
        "type": "FeatureCollection",
        "features": [record_to_feature(r) for r in dataset],
    }


def save_geojson(dataset: Dataset, path: str | Path) -> None:
    """Write the dataset as a ``.geojson`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_geojson(dataset), fh, ensure_ascii=False)


_CSV_COLUMNS: tuple[str, ...] = (
    "business_id", "name", "address", "city", "state", "latitude",
    "longitude", "stars", "tip_count", "is_open", "categories",
    "neighborhood", "tip_summary",
)


def save_csv(dataset: Dataset, path: str | Path) -> None:
    """Write the dataset as CSV (one row per POI, tips omitted)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_COLUMNS)
        for record in dataset:
            writer.writerow([
                record.business_id, record.name, record.address,
                record.city, record.state, record.latitude,
                record.longitude, record.stars, record.tip_count,
                record.is_open, "; ".join(record.categories),
                record.neighborhood, record.tip_summary,
            ])


def load_geojson_ids(path: str | Path) -> list[str]:
    """Business ids from a previously exported GeoJSON file."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("type") != "FeatureCollection":
        raise ValueError(f"{path} is not a GeoJSON FeatureCollection")
    return [
        f["properties"]["business_id"]
        for f in data.get("features", [])
        if "business_id" in f.get("properties", {})
    ]
