"""Synthetic Yelp-style geo-textual dataset substrate."""

from repro.data.dataset import Dataset
from repro.data.export import save_csv, save_geojson, to_geojson
from repro.data.model import POIRecord, TABLE1_KEYS
from repro.data.yelp import YelpStyleGenerator

__all__ = [
    "Dataset",
    "POIRecord",
    "TABLE1_KEYS",
    "YelpStyleGenerator",
    "save_csv",
    "save_geojson",
    "to_geojson",
]
