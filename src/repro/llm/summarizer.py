"""Tip summarization behaviour (the paper's GPT-3.5-Turbo data-prep step).

The simulated summarizer does what a real LLM summary does to retrieval:
it *canonicalizes*. Concepts the model recognizes in the tips are restated
with their canonical labels ("flat white" becomes part of "praise for the
coffee"), while unrecognized phrasing is dropped or quoted as-is. Sentiment
is aggregated ("a mix of experiences") when negative tips are present.

Output length targets the paper's reported ~55 tokens per summary.
"""

from __future__ import annotations

from repro.semantics.concepts import ConceptGraph
from repro.semantics.lexicon import ConceptExtractor

#: Markers of negative sentiment in the synthetic tip templates.
_NEGATIVE_MARKERS: tuple[str, ...] = (
    "disappointed", "downhill", "overpriced", "long wait", "meh",
    "not great", "left a lot to be desired", "didn't make up",
    "mixed up", "hit or miss",
)


def _is_negative(tip: str) -> bool:
    lowered = tip.lower()
    return any(marker in lowered for marker in _NEGATIVE_MARKERS)


def _join_labels(labels: list[str]) -> str:
    if len(labels) == 1:
        return labels[0]
    if len(labels) == 2:
        return f"{labels[0]} and {labels[1]}"
    return ", ".join(labels[:-1]) + f", and {labels[-1]}"


class TipSummarizer:
    """Concept-grounded extractive-abstractive summarizer."""

    #: Cap on concepts mentioned, keeping summaries near 55 tokens.
    MAX_CONCEPTS = 6

    def __init__(self, extractor: ConceptExtractor, graph: ConceptGraph) -> None:
        self._extractor = extractor
        self._graph = graph

    def summarize(self, tips: list[str]) -> str:
        """Summarize a POI's tips into one fluent paragraph."""
        if not tips:
            return "No customer feedback is available yet."

        positive_concepts: dict[str, int] = {}
        negative_concepts: dict[str, int] = {}
        n_negative = 0
        for tip in tips:
            negative = _is_negative(tip)
            n_negative += negative
            for mention in self._extractor.extract(tip):
                bucket = negative_concepts if negative else positive_concepts
                bucket[mention.concept_id] = bucket.get(mention.concept_id, 0) + 1

        # Most-mentioned concepts first; ties broken alphabetically for
        # determinism.
        ranked_positive = sorted(
            positive_concepts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        pos_labels = [
            self._label(cid) for cid, _ in ranked_positive[: self.MAX_CONCEPTS]
        ]
        neg_labels = [
            self._label(cid)
            for cid, _ in sorted(
                negative_concepts.items(), key=lambda kv: (-kv[1], kv[0])
            )[:2]
            if cid not in positive_concepts
        ]

        sentences: list[str] = []
        if n_negative and pos_labels:
            sentences.append(
                "The feedback highlights a mix of experiences."
            )
        if pos_labels:
            sentences.append(
                f"Customers consistently praise the {_join_labels(pos_labels)}."
            )
        else:
            sentences.append(
                "Customers describe generally positive visits without "
                "singling out specifics."
            )
        if neg_labels:
            sentences.append(
                f"Some reviews voice frustration about the "
                f"{_join_labels(neg_labels)}."
            )
        elif n_negative:
            sentences.append(
                "A few reviewers report occasional letdowns, though most "
                "would return."
            )
        else:
            sentences.append(
                "Reviewers frequently mention planning to return."
            )
        return " ".join(sentences)

    def _label(self, concept_id: str) -> str:
        if concept_id in self._graph:
            return self._graph.get(concept_id).label.lower()
        return concept_id.replace("_", " ")
