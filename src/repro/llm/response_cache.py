"""Chat-completion response caching.

The evaluation harness re-issues identical prompts constantly (the same 30
queries against the same candidate sets across k-sweeps and ablations).
:class:`CachingLLMClient` wraps any :class:`~repro.llm.base.LLMClient` with
an exact-prompt LRU cache. Cache hits are free and instantaneous, mirroring
how a production deployment would cache LLM calls; the wrapper still
*records* each logical call in its own ledger so cost accounting can report
both "calls issued" and "calls actually paid for".
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro.llm.base import ChatCompletion, ChatMessage, LLMClient


def _cache_key(model: str, messages: list[ChatMessage]) -> str:
    digest = hashlib.sha256()
    digest.update(model.encode())
    for message in messages:
        digest.update(b"\x00")
        digest.update(message.role.encode())
        digest.update(b"\x01")
        digest.update(message.content.encode())
    return digest.hexdigest()


# reprolint: disable=RL06 -- wraps a live client; cache + lock are process-local
class CachingLLMClient(LLMClient):
    """Exact-prompt LRU cache over another LLM client."""

    def __init__(self, inner: LLMClient, max_entries: int = 10_000) -> None:
        super().__init__()
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._inner = inner
        self._max_entries = max_entries
        self._cache: OrderedDict[str, ChatCompletion] = OrderedDict()
        # LRU reordering and hit/miss counters are read-modify-write;
        # batched refinement shares one client across a thread pool. The
        # inner chat call itself stays outside the lock. ``_pending`` maps
        # keys with an in-flight inner call to an event, so concurrent
        # misses on the same prompt pay the provider once and all receive
        # the identical completion (sequential-equivalence for duplicate
        # queries in one batch).
        self._cache_lock = threading.Lock()
        self._pending: dict[str, threading.Event] = {}
        self.hits = 0
        self.misses = 0

    @property
    def inner(self) -> LLMClient:
        """The wrapped client (its ledger counts only paid calls)."""
        return self._inner

    def _complete(self, model: str, messages: list[ChatMessage]) -> str:
        raise NotImplementedError(
            "CachingLLMClient overrides chat() directly"
        )

    def chat(self, model: str, messages: list[ChatMessage]) -> ChatCompletion:
        """Serve from cache when possible; otherwise delegate and store."""
        if not messages:
            raise ValueError("messages must be non-empty")
        key = _cache_key(model, messages)
        while True:
            pending = None
            with self._cache_lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.hits += 1
                else:
                    pending = self._pending.get(key)
                    if pending is None:
                        self._pending[key] = threading.Event()
                        self.misses += 1
            if cached is not None:
                self.ledger.record(cached)
                return cached
            if pending is None:
                break  # this thread owns the miss and pays the inner call
            pending.wait()  # another thread is fetching; re-check after

        try:
            completion = self._inner.chat(model, messages)
        except BaseException:
            # Release waiters; they re-check, find nothing, and retry
            # as owners themselves.
            with self._cache_lock:
                event = self._pending.pop(key, None)
            if event is not None:
                event.set()
            raise
        with self._cache_lock:
            self._cache[key] = completion
            if len(self._cache) > self._max_entries:
                self._cache.popitem(last=False)
            event = self._pending.pop(key)
        event.set()
        self.ledger.record(completion)
        return completion

    def savings_usd(self) -> float:
        """Cost avoided by cache hits (logical minus paid)."""
        return self.ledger.total_cost_usd() - self._inner.ledger.total_cost_usd()

    def clear(self) -> None:
        """Drop cached completions and reset hit/miss counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
