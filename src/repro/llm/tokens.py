"""Approximate token counting (BPE-like, without a BPE vocabulary).

OpenAI-style tokenizers average ~0.75 words per token on English prose.
We approximate: words and punctuation runs count via a regex, long words
count extra. Used for usage accounting, cost estimates, and the latency
model; nothing downstream needs exact BPE equivalence.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+|[^\sA-Za-z0-9]")
#: Characters per extra token inside a long word.
_LONG_WORD_CHARS = 6


def estimate_tokens(text: str) -> int:
    """Approximate LLM token count of ``text``.

    >>> estimate_tokens("")
    0
    >>> estimate_tokens("hello world") >= 2
    True
    """
    if not text:
        return 0
    total = 0
    for piece in _WORD_RE.findall(text):
        total += 1 + max(0, (len(piece) - 1) // _LONG_WORD_CHARS)
    return total
