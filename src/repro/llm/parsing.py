"""Parsing of simulated-LLM outputs (the dict the refinement prompt demands)."""

from __future__ import annotations

import ast
import json

from repro.errors import ParseError


def parse_ranked_dict(content: str) -> list[tuple[str, str]]:
    """Parse a ``{"name": "reason", ...}`` response, preserving order.

    Accepts strict JSON and Python-literal dicts (the prompt says "Python
    dictionary", and real LLMs emit either). Raises :class:`ParseError` on
    anything else.
    """
    text = content.strip()
    if text.startswith("```"):
        # Strip a fenced code block, tolerating a language tag.
        lines = text.splitlines()
        if lines[-1].strip().startswith("```"):
            lines = lines[1:-1]
        else:
            lines = lines[1:]
        text = "\n".join(lines).strip()
    if not text:
        raise ParseError("empty LLM response where a dict was expected")

    data: object
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        try:
            data = ast.literal_eval(text)
        except (ValueError, SyntaxError) as exc:
            raise ParseError(
                f"response is neither JSON nor a Python literal: {text[:120]!r}"
            ) from exc

    if not isinstance(data, dict):
        raise ParseError(
            f"expected a dict response, got {type(data).__name__}"
        )
    result: list[tuple[str, str]] = []
    for key, value in data.items():
        if not isinstance(key, str):
            raise ParseError(f"dict key is not a string: {key!r}")
        result.append((key, str(value)))
    return result


def parse_summary(content: str) -> str:
    """Parse a summarization response (strip an echoed 'Summary:' prefix)."""
    text = content.strip()
    if text.lower().startswith("summary:"):
        text = text[len("summary:"):].strip()
    if not text:
        raise ParseError("empty summary response")
    return text
