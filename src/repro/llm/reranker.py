"""Refinement behaviour: the simulated LLM's re-ranking judgment.

Given the candidate POIs (as the JSON the refinement prompt embeds) and
the query, the simulated model:

1. reads the query's concepts through its knowledge profile (a weaker
   model misses oblique phrasings — this is where o1-mini and gpt-4o
   genuinely differ);
2. reads each candidate's concepts from its *textual attributes only*
   (name, categories, tips/summary, neighborhood) — never from generator
   ground truth;
3. reasons over structured attributes the way the paper's prompt invites:
   closing hours answer "open late", opening hours answer "early",
   star ratings support "reliable/best" style asks;
4. judges each candidate: full matches are relevant, near-misses may be
   included as partial matches "specifying advantages and disadvantages"
   (per the prompt), everything else is filtered out;
5. applies its judgment-noise channel — a deterministic per-(model,
   query, candidate) coin that occasionally drops a relevant result or
   keeps a plausible irrelevant one, reproducing imperfect LLM behaviour
   without nondeterminism.

The output is the Python-dict-formatted string the paper's prompt demands:
``{"name": "reason", ...}`` in priority order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.data.gen.hours import is_open_late, opens_early
from repro.llm.models import ModelSpec
from repro.semantics.concepts import ConceptGraph
from repro.semantics.lexicon import ConceptExtractor

#: Query concepts that structured attributes can satisfy.
_HOURS_LATE = "late_night"
_HOURS_EARLY = "open_early"
_QUALITY_CONCEPTS = frozenset({"reliable_service", "local_favorite"})
#: Minimum satisfied-fraction for a partial match to be mentioned at all.
_PARTIAL_FLOOR = 0.5


def _stable_unit(model_id: str, query: str, name: str, salt: str) -> float:
    digest = hashlib.sha256(
        f"{model_id}|{salt}|{query}|{name}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class _Judgment:
    name: str
    satisfied: list[str]
    missing: list[str]
    evidence: dict[str, str]  # concept id -> phrase/attribute that matched
    stars: float
    full: bool
    score: float


class Reranker:
    """Concept-level relevance judgment with a model-specific noise channel."""

    def __init__(
        self,
        spec: ModelSpec,
        extractor: ConceptExtractor,
        graph: ConceptGraph,
    ) -> None:
        self._spec = spec
        self._extractor = extractor
        self._graph = graph

    # ------------------------------------------------------------------
    # concept reading
    # ------------------------------------------------------------------

    def query_concepts(self, query: str) -> list[str]:
        """Concepts this model recognizes in the query text (sorted)."""
        return sorted(self._extractor.extract_concepts(query))

    def _candidate_text(self, info: dict[str, Any]) -> str:
        parts = [
            str(info.get("name", "")),
            str(info.get("categories", "")),
            str(info.get("neighborhood", "")),
        ]
        summary = info.get("tip_summary")
        if summary:
            parts.append(str(summary))
        tips = info.get("tips")
        if isinstance(tips, list):
            parts.extend(str(t) for t in tips)
        return ". ".join(p for p in parts if p)

    def _judge(self, info: dict[str, Any], required: list[str]) -> _Judgment:
        text = self._candidate_text(info)
        mentions = self._extractor.extract(text)
        candidate_concepts = {m.concept_id for m in mentions}
        evidence_phrases = {m.concept_id: m.phrase for m in mentions}
        hours = info.get("hours") if isinstance(info.get("hours"), dict) else {}
        stars = float(info.get("stars", 3.0) or 3.0)

        satisfied: list[str] = []
        missing: list[str] = []
        evidence: dict[str, str] = {}
        for concept in required:
            matched_by = next(
                (
                    c
                    for c in sorted(candidate_concepts)
                    if self._graph.satisfies(c, concept)
                ),
                None,
            )
            if matched_by is not None:
                satisfied.append(concept)
                evidence[concept] = evidence_phrases.get(matched_by, matched_by)
                continue
            # Structured-attribute reasoning beyond the text.
            if concept == _HOURS_LATE and hours and is_open_late(hours):
                satisfied.append(concept)
                evidence[concept] = "closing hours past midnight"
                continue
            if concept == _HOURS_EARLY and hours and opens_early(hours):
                satisfied.append(concept)
                evidence[concept] = "early opening hours"
                continue
            if concept in _QUALITY_CONCEPTS and stars >= 4.5:
                satisfied.append(concept)
                evidence[concept] = f"a {stars} star rating"
                continue
            missing.append(concept)

        score = len(satisfied) / len(required) if required else 0.0
        return _Judgment(
            name=str(info.get("name", "unknown")),
            satisfied=satisfied,
            missing=missing,
            evidence=evidence,
            stars=stars,
            full=not missing,
            score=score,
        )

    # ------------------------------------------------------------------
    # reasons (the dict values the prompt demands)
    # ------------------------------------------------------------------

    def _label(self, concept_id: str) -> str:
        if concept_id in self._graph:
            return self._graph.get(concept_id).label.lower()
        return concept_id.replace("_", " ")

    def _full_reason(self, judgment: _Judgment) -> str:
        matched = ", ".join(
            f"{self._label(c)} (mentions {judgment.evidence[c]!r})"
            for c in judgment.satisfied
        )
        return (
            f"Strong match: the record shows {matched}. "
            f"Rated {judgment.stars} stars."
        )

    def _partial_reason(self, judgment: _Judgment) -> str:
        pros = ", ".join(self._label(c) for c in judgment.satisfied) or "little"
        cons = ", ".join(self._label(c) for c in judgment.missing)
        return (
            f"Partial match: offers {pros}, but there is no evidence of "
            f"{cons} in the available information."
        )

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------

    def rerank(self, information: list[dict[str, Any]], query: str) -> str:
        """Produce the prompt's required output: a dict string, best first."""
        required = self.query_concepts(query)
        if not required:
            return "{}"

        kept: list[tuple[float, _Judgment, str]] = []
        for info in information:
            judgment = self._judge(info, required)
            coin = _stable_unit(
                self._spec.model_id, query, judgment.name, "judgment"
            )
            if judgment.full:
                if coin < self._spec.drop_rate:
                    continue  # noise channel: misses a true match
                priority = 2.0 + judgment.score + judgment.stars / 100.0
                kept.append((priority, judgment, self._full_reason(judgment)))
            elif judgment.score >= _PARTIAL_FLOOR:
                if coin < self._spec.hallucination_rate:
                    # Noise channel: overstates a partial match as a hit.
                    priority = 1.9 + judgment.score + judgment.stars / 100.0
                    kept.append(
                        (priority, judgment, self._full_reason(judgment))
                    )
                elif coin > 1.0 - self._spec.hallucination_rate * 2:
                    priority = judgment.score + judgment.stars / 100.0
                    kept.append(
                        (priority, judgment, self._partial_reason(judgment))
                    )

        kept.sort(key=lambda item: (-item[0], item[1].name))
        ordered = {judgment.name: reason for _, judgment, reason in kept}
        return json.dumps(ordered, ensure_ascii=False)
