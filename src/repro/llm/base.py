"""Chat-completions client interface and usage accounting."""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.llm.models import get_model
from repro.llm.tokens import estimate_tokens


@dataclass(frozen=True)
class ChatMessage:
    """One message in a chat-completions conversation."""

    role: str  # "system" | "user" | "assistant"
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"invalid role {self.role!r}")


@dataclass(frozen=True)
class Usage:
    """Token usage of one completion."""

    input_tokens: int
    output_tokens: int

    @property
    def total_tokens(self) -> int:
        """Input plus output tokens."""
        return self.input_tokens + self.output_tokens


@dataclass(frozen=True)
class ChatCompletion:
    """The result of one simulated chat call."""

    model: str
    content: str
    usage: Usage
    latency_s: float   # modelled latency — reported, never slept
    cost_usd: float


@dataclass
# reprolint: disable=RL06 -- in-process accounting object, never crosses a pickle boundary
class UsageLedger:
    """Accumulates usage and cost across calls (per model).

    Recording is internally locked: batched query execution may refine on
    a thread pool against one shared client, and every client subclass
    (including ones that override ``chat``) records through this method.
    """

    calls: dict[str, int] = field(default_factory=dict)
    input_tokens: dict[str, int] = field(default_factory=dict)
    output_tokens: dict[str, int] = field(default_factory=dict)
    cost_usd: dict[str, float] = field(default_factory=dict)
    latency_s: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, completion: ChatCompletion) -> None:
        """Add one completion to the ledger (thread-safe)."""
        with self._lock:
            self._record_locked(completion)

    def _record_locked(self, completion: ChatCompletion) -> None:
        m = completion.model
        self.calls[m] = self.calls.get(m, 0) + 1
        self.input_tokens[m] = (
            self.input_tokens.get(m, 0) + completion.usage.input_tokens
        )
        self.output_tokens[m] = (
            self.output_tokens.get(m, 0) + completion.usage.output_tokens
        )
        self.cost_usd[m] = self.cost_usd.get(m, 0.0) + completion.cost_usd
        self.latency_s[m] = self.latency_s.get(m, 0.0) + completion.latency_s

    def total_cost_usd(self) -> float:
        """Cost summed over all models."""
        return sum(self.cost_usd.values())

    def total_calls(self) -> int:
        """Number of calls over all models."""
        return sum(self.calls.values())

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-model usage summary (for reports)."""
        return {
            model: {
                "calls": self.calls[model],
                "input_tokens": self.input_tokens.get(model, 0),
                "output_tokens": self.output_tokens.get(model, 0),
                "cost_usd": round(self.cost_usd.get(model, 0.0), 6),
                "latency_s": round(self.latency_s.get(model, 0.0), 3),
            }
            for model in sorted(self.calls)
        }


class LLMClient(ABC):
    """Interface of a chat-completions provider."""

    def __init__(self) -> None:
        self.ledger = UsageLedger()

    @abstractmethod
    def _complete(self, model: str, messages: list[ChatMessage]) -> str:
        """Produce the assistant's reply text."""

    def chat(self, model: str, messages: list[ChatMessage]) -> ChatCompletion:
        """Run one chat completion, recording usage, cost, and latency."""
        if not messages:
            raise ValueError("messages must be non-empty")
        spec = get_model(model)
        content = self._complete(model, messages)
        input_tokens = sum(estimate_tokens(m.content) for m in messages)
        output_tokens = estimate_tokens(content)
        usage = Usage(input_tokens=input_tokens, output_tokens=output_tokens)
        completion = ChatCompletion(
            model=model,
            content=content,
            usage=usage,
            latency_s=spec.latency_for(output_tokens),
            cost_usd=spec.cost_usd(input_tokens, output_tokens),
        )
        self.ledger.record(completion)
        return completion
