"""Test-query generation behaviour (the paper's o1-mini usage in §4).

Given a POI description (prose, as embedded in the query-generation
prompt), the simulated model:

1. reads the POI's concepts from the prose through its own lexicon;
2. picks a small concept combination (ideally the category plus one or two
   offerings/traits);
3. phrases a question using only *oblique* surface forms — paraphrases at
   or above a difficulty threshold that share no content token with the
   POI's own description — honouring the prompt's twin constraints
   ("difficult to answer with simple keyword matching" and "don't mention
   any location information").

Generation is deterministic per prompt text (seeded from its hash), so
test sets are reproducible.
"""

from __future__ import annotations

import hashlib
import random

from repro.semantics.concepts import ConceptGraph, ConceptKind
from repro.semantics.lexicon import ConceptExtractor, Lexicon, SurfaceForm
from repro.text.stopwords import remove_stopwords
from repro.text.tokenize import tokenize

#: Minimum difficulty of surface forms used in generated queries.
QUERY_FORM_MIN_DIFFICULTY = 0.45

_TEMPLATES_TWO: tuple[str, ...] = (
    "I'm looking for {a} where I can enjoy {b}. Any recommendations?",
    "Where can I find {a} known for {b}?",
    "Can you suggest {a} that offers {b}?",
    "Is there {a} around with {b}?",
    "I want {a} famous for {b}. What do you suggest?",
)

_TEMPLATES_THREE: tuple[str, ...] = (
    "I'm after {a} with {b} that also has {c}. Ideas?",
    "Where should I go for {a} offering {b} and {c}?",
    "Can you recommend {a} that combines {b} with {c}?",
)

_TEMPLATES_SINGLE: tuple[str, ...] = (
    "Where can I find a place known for {a}?",
    "I really need {a} right now. Who does it best?",
    "Any spot around that excels at {a}?",
)


#: Leading words after which an indefinite article would read wrong.
_NO_ARTICLE_STARTS = frozenset(
    {"a", "an", "the", "somewhere", "some", "grab", "catch", "watch",
     "get", "buy", "play", "learn", "fill", "fix", "sing", "knock"}
)


def _article(phrase: str) -> str:
    """Prefix an indefinite article when the phrase reads like a noun."""
    if phrase.split()[0] in _NO_ARTICLE_STARTS:
        return phrase
    return ("an " if phrase[0] in "aeiou" else "a ") + phrase


class QueryGenerator:
    """Paraphrase-based query writer with keyword-overlap avoidance."""

    def __init__(
        self,
        extractor: ConceptExtractor,
        graph: ConceptGraph,
        lexicon: Lexicon,
        min_difficulty: float = QUERY_FORM_MIN_DIFFICULTY,
    ) -> None:
        self._extractor = extractor
        self._graph = graph
        self._lexicon = lexicon
        self._min_difficulty = min_difficulty

    def _oblique_form(
        self,
        concept_id: str,
        banned_tokens: frozenset[str],
        rng: random.Random,
    ) -> SurfaceForm | None:
        """A hard-to-keyword-match form sharing no content token with the POI."""
        forms = self._lexicon.oblique_forms_of(concept_id, self._min_difficulty)
        usable = [
            f
            for f in forms
            if not (
                set(remove_stopwords(list(f.tokens))) & banned_tokens
            )
        ]
        if not usable:
            return None
        return rng.choice(usable)

    def generate(self, information: str) -> str:
        """Write one test question for the POI described by ``information``."""
        seed = int.from_bytes(
            hashlib.sha256(information.encode()).digest()[:8], "big"
        )
        rng = random.Random(seed)

        mentions = self._extractor.extract(information)
        by_kind: dict[ConceptKind, list[str]] = {
            ConceptKind.CATEGORY: [],
            ConceptKind.ITEM: [],
            ConceptKind.ASPECT: [],
        }
        seen: set[str] = set()
        for mention in mentions:
            cid = mention.concept_id
            if cid in seen or cid not in self._graph:
                continue
            seen.add(cid)
            concept = self._graph.get(cid)
            # Skip near-universal aspects that make queries unselective.
            if concept.parents == () and concept.kind == ConceptKind.CATEGORY:
                continue
            by_kind[concept.kind].append(cid)

        banned = frozenset(remove_stopwords(tokenize(information)))

        # Choose: a category anchor plus 1-2 item/aspect constraints.
        chosen: list[tuple[str, SurfaceForm]] = []
        categories = by_kind[ConceptKind.CATEGORY]
        rng.shuffle(categories)
        for cid in categories:
            form = self._oblique_form(cid, banned, rng)
            if form is not None:
                chosen.append((cid, form))
                break
        extras = by_kind[ConceptKind.ITEM] + by_kind[ConceptKind.ASPECT]
        rng.shuffle(extras)
        want_extras = 2 if rng.random() < 0.45 else 1
        for cid in extras:
            if len(chosen) >= 1 + want_extras:
                break
            form = self._oblique_form(cid, banned, rng)
            if form is not None and all(cid != c for c, _ in chosen):
                chosen.append((cid, form))

        if not chosen:
            # The model knows no oblique phrasing for this POI; fall back to
            # a generic question (the paper's authors filtered such queries
            # manually — the harness does the same via validation).
            return "Where should I go for something special nearby?"

        phrases = [form.phrase for _, form in chosen]
        if len(phrases) == 1:
            template = rng.choice(_TEMPLATES_SINGLE)
            return template.format(a=phrases[0])
        if len(phrases) == 2:
            template = rng.choice(_TEMPLATES_TWO)
            return template.format(a=_article(phrases[0]), b=phrases[1])
        template = rng.choice(_TEMPLATES_THREE)
        return template.format(
            a=_article(phrases[0]), b=phrases[1], c=phrases[2]
        )
