"""The simulated chat-completions provider.

:class:`SimulatedLLM` receives the paper's *actual prompt texts* (see
:mod:`repro.llm.prompts`), recognizes which task is being asked by the
instruction header, re-extracts the embedded inputs, and produces the
response a capable-but-imperfect model would: canonicalizing summaries,
concept-level re-ranking with noise, paraphrase query generation.

Keeping the prompt round-trip (build prompt -> "send" -> parse response)
means the pipeline code is structured exactly like the paper's system; a
real OpenAI client could be dropped in behind the same interface.
"""

from __future__ import annotations

import json
import re

from repro.errors import PromptError
from repro.llm.base import ChatMessage, LLMClient
from repro.llm.models import get_model
from repro.llm.prompts import (
    QUERYGEN_HEADER,
    RERANK_HEADER,
    SUMMARIZE_HEADER,
)
from repro.llm.querygen import QueryGenerator
from repro.llm.reranker import Reranker
from repro.llm.summarizer import TipSummarizer
from repro.semantics.concepts import ConceptGraph
from repro.semantics.lexicon import ConceptExtractor, Lexicon
from repro.semantics.ontology.build import default_ontology

_RERANK_RE = re.compile(
    r"Information:\s*(?P<info>\[.*\])\s*\nQuery:\s*(?P<query>.+)\s*$",
    re.DOTALL,
)
_SUMMARIZE_RE = re.compile(
    r"Now it is your turn:\s*list:(?P<tips>\[.*\])\s*\nSummary:\s*$",
    re.DOTALL,
)
_QUERYGEN_RE = re.compile(
    r"Now it is your turn\.\s*\nInformation:\s*(?P<info>.+)\nQuestion:\s*$",
    re.DOTALL,
)


class SimulatedLLM(LLMClient):
    """Deterministic, offline stand-in for the OpenAI chat API."""

    def __init__(
        self,
        graph: ConceptGraph | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        super().__init__()
        if graph is None or lexicon is None:
            graph, lexicon = default_ontology()
        self._graph = graph
        self._lexicon = lexicon
        self._extractors: dict[str, ConceptExtractor] = {}

    def _extractor_for(self, model: str) -> ConceptExtractor:
        extractor = self._extractors.get(model)
        if extractor is None:
            spec = get_model(model)
            extractor = ConceptExtractor(self._lexicon, spec.knowledge)
            self._extractors[model] = extractor
        return extractor

    def _complete(self, model: str, messages: list[ChatMessage]) -> str:
        prompt = messages[-1].content
        if prompt.startswith(SUMMARIZE_HEADER):
            return self._summarize(model, prompt)
        if prompt.startswith(RERANK_HEADER):
            return self._rerank(model, prompt)
        if prompt.startswith(QUERYGEN_HEADER):
            return self._querygen(model, prompt)
        raise PromptError(
            "the simulated LLM does not recognize this task; prompts must "
            "be built with repro.llm.prompts (got: "
            f"{prompt[:80]!r}...)"
        )

    # ------------------------------------------------------------------
    # task handlers
    # ------------------------------------------------------------------

    def _summarize(self, model: str, prompt: str) -> str:
        match = _SUMMARIZE_RE.search(prompt)
        if match is None:
            raise PromptError("malformed summarization prompt")
        try:
            tips = json.loads(match.group("tips"))
        except json.JSONDecodeError as exc:
            raise PromptError(f"unparseable tips list in prompt: {exc}") from exc
        if not isinstance(tips, list):
            raise PromptError("tips payload is not a list")
        summarizer = TipSummarizer(self._extractor_for(model), self._graph)
        return summarizer.summarize([str(t) for t in tips])

    def _rerank(self, model: str, prompt: str) -> str:
        match = _RERANK_RE.search(prompt)
        if match is None:
            raise PromptError("malformed refinement prompt")
        try:
            information = json.loads(match.group("info"))
        except json.JSONDecodeError as exc:
            raise PromptError(
                f"unparseable information JSON in prompt: {exc}"
            ) from exc
        if not isinstance(information, list):
            raise PromptError("information payload is not a list")
        query = match.group("query").strip()
        reranker = Reranker(
            get_model(model), self._extractor_for(model), self._graph
        )
        return reranker.rerank(information, query)

    def _querygen(self, model: str, prompt: str) -> str:
        match = _QUERYGEN_RE.search(prompt)
        if match is None:
            raise PromptError("malformed query-generation prompt")
        generator = QueryGenerator(
            self._extractor_for(model), self._graph, self._lexicon
        )
        return generator.generate(match.group("info").strip())
