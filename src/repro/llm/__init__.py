"""Simulated LLM substrate: chat client, prompts, task behaviours."""

from repro.llm.base import (
    ChatCompletion,
    ChatMessage,
    LLMClient,
    Usage,
    UsageLedger,
)
from repro.llm.models import (
    GPT_35_TURBO,
    GPT_4O,
    O1_MINI,
    ModelSpec,
    available_models,
    get_model,
    register_model,
)
from repro.llm.parsing import parse_ranked_dict, parse_summary
from repro.llm.prompts import (
    build_querygen_prompt,
    build_rerank_prompt,
    build_summarize_prompt,
    describe_poi_for_querygen,
)
from repro.llm.querygen import QueryGenerator
from repro.llm.response_cache import CachingLLMClient
from repro.llm.reranker import Reranker
from repro.llm.simulated import SimulatedLLM
from repro.llm.summarizer import TipSummarizer
from repro.llm.tokens import estimate_tokens

__all__ = [
    "CachingLLMClient",
    "ChatCompletion",
    "ChatMessage",
    "GPT_35_TURBO",
    "GPT_4O",
    "LLMClient",
    "ModelSpec",
    "O1_MINI",
    "QueryGenerator",
    "Reranker",
    "SimulatedLLM",
    "TipSummarizer",
    "Usage",
    "UsageLedger",
    "available_models",
    "build_querygen_prompt",
    "build_rerank_prompt",
    "build_summarize_prompt",
    "describe_poi_for_querygen",
    "estimate_tokens",
    "get_model",
    "parse_ranked_dict",
    "parse_summary",
    "register_model",
]
