"""Registry of simulated LLM and their quality/cost/latency profiles.

Each simulated model has:

* a *knowledge profile* — which fraction of the surface-form lexicon it
  understands, graded by difficulty (see :mod:`repro.semantics.lexicon`);
* *judgment noise* — per-decision probabilities of dropping a relevant POI
  or including an irrelevant-but-plausible one, decided deterministically
  per (model, query, POI) by hashing, so runs are reproducible;
* *cost* per million input/output tokens (mirroring the public price
  sheet at the time of the paper, for the cost accounting the paper
  mentions when choosing GPT-3.5 and preferring GPT-4o over o1-mini);
* a *latency model* ``base + per_output_token * n`` used to report the
  "2-3 seconds per query" refinement timing without actually sleeping.

The relative ordering encodes the paper's findings: gpt-4o has the best
judgment; o1-mini is close (better on some cities by chance of its own
noise channel) but pricier; gpt-3.5-turbo is cheap and only used for
summarization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownModelError
from repro.semantics.lexicon import KnowledgeProfile, linear_knowledge


@dataclass(frozen=True)
class ModelSpec:
    """Static profile of one simulated model."""

    model_id: str
    knowledge: KnowledgeProfile
    drop_rate: float          # P(drop a truly relevant candidate)
    hallucination_rate: float  # P(keep a partially-matching irrelevant one)
    usd_per_1m_input: float
    usd_per_1m_output: float
    latency_base_s: float
    latency_per_output_token_s: float

    def latency_for(self, output_tokens: int) -> float:
        """Modelled wall-clock seconds for a completion of given length."""
        return self.latency_base_s + self.latency_per_output_token_s * output_tokens

    def cost_usd(self, input_tokens: int, output_tokens: int) -> float:
        """API cost in USD for one call."""
        return (
            input_tokens * self.usd_per_1m_input
            + output_tokens * self.usd_per_1m_output
        ) / 1_000_000.0


GPT_4O = ModelSpec(
    model_id="gpt-4o",
    knowledge=linear_knowledge("gpt-4o", 1.02, 0.08),
    drop_rate=0.055,
    hallucination_rate=0.045,
    usd_per_1m_input=2.50,
    usd_per_1m_output=10.00,
    latency_base_s=0.9,
    latency_per_output_token_s=0.011,
)

O1_MINI = ModelSpec(
    model_id="o1-mini",
    knowledge=linear_knowledge("o1-mini", 1.0, 0.12),
    drop_rate=0.08,
    hallucination_rate=0.075,
    usd_per_1m_input=3.00,
    usd_per_1m_output=12.00,
    latency_base_s=2.2,
    latency_per_output_token_s=0.016,
)

GPT_35_TURBO = ModelSpec(
    model_id="gpt-3.5-turbo",
    knowledge=linear_knowledge("gpt-3.5-turbo", 1.0, 0.3),
    drop_rate=0.15,
    hallucination_rate=0.12,
    usd_per_1m_input=0.50,
    usd_per_1m_output=1.50,
    latency_base_s=0.4,
    latency_per_output_token_s=0.006,
)

_REGISTRY: dict[str, ModelSpec] = {
    spec.model_id: spec for spec in (GPT_4O, O1_MINI, GPT_35_TURBO)
}


def get_model(model_id: str) -> ModelSpec:
    """Look up a model spec by id."""
    spec = _REGISTRY.get(model_id)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownModelError(
            f"unknown model {model_id!r}; registered models: {known}"
        )
    return spec


def register_model(spec: ModelSpec) -> None:
    """Register a custom model spec (ablations define degraded models)."""
    _REGISTRY[spec.model_id] = spec


def available_models() -> list[str]:
    """Ids of all registered models, sorted."""
    return sorted(_REGISTRY)
