"""The paper's LLM prompts, verbatim, and their builders.

The three prompts below are quoted from the SemaSK paper (§3.1, §3.2, §4).
The pipeline sends these *actual texts* to the simulated LLM, which routes
on the instruction header — so the architecture exercised here is exactly
the paper's: prompt in, free-text/dict out, parse, use.
"""

from __future__ import annotations

import json
from typing import Any

SUMMARIZE_HEADER = "You are a master of summarizing reviews."

SUMMARIZE_PROMPT = """You are a master of summarizing reviews. Now I have some reviews, they are in the form of lists in Python and split with commas. I would like you to help me make a summary. Here are some examples:
list:['Love Sonic but orders are constantly wrong', 'Foods always been good. Shakes r delicious!']
Summary: The feedback highlights a mix of experiences at Sonic. While there is love for the brand and appreciation for the quality of food and delicious shakes, there is also frustration over frequent inaccuracies in order fulfillment.
list:['Great patio for people watching', 'The staff remembered my order', 'Closed too early on Sundays']
Summary: Reviewers enjoy the patio and praise the attentive staff, though the early Sunday closing time draws some complaints.
Now it is your turn: {tips}
Summary:"""

RERANK_HEADER = "You are an assistant for location information sorting tasks."

RERANK_PROMPT = """You are an assistant for location information sorting tasks. Below is the location information retrieved from the database, which will be given to you in JSON format. You are asked to filter and sort this information based on the question asked. You first need to determine whether the information is relevant to the question, and then sort all the relevant information. The ones that best match the question and help answer it have the highest priority. The format of your output must be a Python dictionary, where the key is the name of the location and the value is the reason why you chose this location and ranked it there. The location with the highest priority is placed higher, i.e., index is 0. Please note that there could be more than one result in the dictionary. If the information about a location could only partially match the question asked, you could also put it in the dictionary, but specify the advantages and disadvantages of this place in the value of the dictionary. If you could not complete the task or do not know the answer, just return the empty dictionary and don't refer to any additional knowledge.
Information: {information}
Query: {query}"""

QUERYGEN_HEADER = "You are an expert in spatial keyword searching"

QUERYGEN_PROMPT = """You are an expert in spatial keyword searching and I am now trying to perform spatial keyword searching using a large language model. In order to get a test set, I need you to help me write query questions based on the information I provide. In particular, I am asking to think of some questions that are difficult to answer with simple keyword matching, but are easier with the semantic capabilities of large language models, such as "Find Japanese restaurants in Center City that offer a variety of sushi options", where "Japanese restaurants" and "sushi" can be easily handled by keyword matching, while "a variety of options" may require semantic understanding. Also, please don't mention any location information in the query!
Information: Pep Boys is located at Lafayette Road and primarily serves the category of Automotive, Tires, Oil Change Stations, Auto Parts & Supplies, Auto Repair. It is open for business at these hours: ['Monday': '8:0-19:0', 'Tuesday': '8:0-19:0', 'Wednesday': '8:0-19:0', 'Thursday': '8:0-19:0', 'Friday': '8:0-19:0', 'Saturday': '8:0-19:0', 'Sunday': '9:0-17:0']. Customers often highlight: 'The reviews consistently praise the staff for being friendly, knowledgeable, and helpful, creating a positive and welcoming atmosphere for customers.'
Question: My car needs repair. Which service center is the most reliable?
Information: Mike's Ice Cream is located at 129 2nd Ave N and primarily serves the category of Ice Cream & Frozen Yogurt, Fast Food. Customers often highlight: 'Amazing ice cream! So creamy.'
Question: Where can my kids and I get a creamy frozen treat on a hot afternoon?
Now it is your turn.
Information: {information}
Question:"""


def build_summarize_prompt(tips: list[str]) -> str:
    """Fill the summarization prompt with a POI's tips."""
    rendered = "list:" + json.dumps(list(tips), ensure_ascii=False)
    return SUMMARIZE_PROMPT.format(tips=rendered)


def build_rerank_prompt(information: list[dict[str, Any]], query: str) -> str:
    """Fill the refinement prompt with candidate POI attributes and the query."""
    return RERANK_PROMPT.format(
        information=json.dumps(information, ensure_ascii=False), query=query
    )


def build_querygen_prompt(information: str) -> str:
    """Fill the query-generation prompt with one POI's description."""
    return QUERYGEN_PROMPT.format(information=information)


def describe_poi_for_querygen(attributes: dict[str, Any]) -> str:
    """Render a POI's attributes into the prose form the prompt expects."""
    name = attributes.get("name", "This business")
    address = attributes.get("address", "an undisclosed address")
    categories = attributes.get("categories", "")
    hours = attributes.get("hours", {})
    summary = attributes.get("tip_summary") or " ".join(
        attributes.get("tips", [])[:3]
    )
    parts = [
        f"{name} is located at {address} and primarily serves the category "
        f"of {categories}."
    ]
    if hours:
        rendered = ", ".join(f"'{d}': '{h}'" for d, h in hours.items())
        parts.append(f"It is open for business at these hours: [{rendered}].")
    if summary:
        parts.append(f"Customers often highlight: '{summary}'")
    return " ".join(parts)
