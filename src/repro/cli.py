"""Command-line interface: ``python -m repro <command>``.

Commands::

    build-data   generate + prepare the synthetic five-city dataset
    stats        corpus statistics for one city (paper §3.1)
    query        answer one semantics-aware query on a city
    table2       reproduce the paper's Table 2
    queries      show the harvested evaluation query set for a city
    reshard      re-route a collection snapshot to a new shard count
    snapshot     inspect or migrate saved collection snapshots
    serve        run the concurrent HTTP query server
    demo         write (or serve) the Figure-3 demo page
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.core.query import SpatialKeywordQuery
from repro.core.variants import semask, semask_em, semask_o1
from repro.eval.corpus import get_corpus
from repro.eval.experiments import build_test_queries, run_table2
from repro.eval.report import format_table, format_table2
from repro.geo.geocoder import ReverseGeocoder
from repro.geo.regions import EVALUATION_CITIES, city_by_code


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--pois", type=int, default=0,
        help="POIs per city (0 = the paper's counts)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="vector-store shards per city collection (1 = unsharded)",
    )


def _corpus(args: argparse.Namespace, city: str):
    return get_corpus(city, seed=args.seed, count=args.pois or None,
                      shards=args.shards)


def cmd_build_data(args: argparse.Namespace) -> int:
    from pathlib import Path

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    rows = []
    for city in EVALUATION_CITIES:
        corpus = _corpus(args, city.code)
        path = out / f"{city.code.lower()}.jsonl.gz"
        corpus.dataset.save(path)
        stats = corpus.dataset.statistics()
        rows.append([city.code, len(corpus.dataset),
                     f"{stats['avg_tips']:.1f}",
                     f"{stats['avg_tip_tokens']:.0f}", str(path)])
    print(format_table(["City", "POIs", "tips/POI", "tokens/POI", "file"], rows))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    corpus = _corpus(args, args.city)
    stats = corpus.dataset.statistics()
    print(json.dumps(stats, indent=2))
    ledger = corpus.llm.ledger.summary()
    if ledger:
        print("LLM usage during preparation:")
        print(json.dumps(ledger, indent=2))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    corpus = _corpus(args, args.city)
    factory = {"semask": semask, "o1": semask_o1, "em": semask_em}[args.variant]
    if args.variant == "em":
        system = factory(corpus.prepared, candidate_k=args.k)
    else:
        system = factory(corpus.prepared, llm=corpus.llm, candidate_k=args.k)

    if args.neighborhood:
        center = ReverseGeocoder().neighborhood_center(
            args.city.upper(), args.neighborhood
        )
    else:
        center = city_by_code(args.city).center

    if args.batch:
        return _run_query_batch(args, corpus, system, center)

    query = SpatialKeywordQuery.around(center, args.text, args.range_km,
                                       args.range_km)
    result = system.query(query)
    print(f"{system.name}: {len(result.entries)} recommended, "
          f"{len(result.filtered_out)} filtered out "
          f"(filtering {result.timings.filter_s * 1000:.1f} ms, "
          f"modelled LLM {result.timings.refine_modeled_s:.1f} s)")
    _print_entries(corpus, result.entries)
    return 0


def _print_entries(corpus, entries) -> None:
    for entry in entries:
        record = corpus.dataset.get(entry.business_id)
        print(f"  * {entry.name} [{', '.join(record.categories[:2])}]")
        if entry.reason:
            print(f"      {entry.reason}")


def _run_query_batch(args: argparse.Namespace, corpus, system, center) -> int:
    """``--batch``: answer ';'-separated queries via the batched engine.

    With ``--compare``, the batched pass runs first and then the same
    queries are re-answered sequentially so the speedup is visible from
    the command line — an explicit opt-in, since against a hosted LLM the
    baseline pass doubles cost and latency.
    """
    import time

    texts = [t.strip() for t in args.text.split(";") if t.strip()]
    if not texts:
        print("no query texts given (separate queries with ';')")
        return 1
    if args.parallel_refine <= 0:
        print(f"--parallel-refine must be positive, got {args.parallel_refine}")
        return 1
    queries = [
        SpatialKeywordQuery.around(center, text, args.range_km, args.range_km)
        for text in texts
    ]

    t0 = time.perf_counter()
    results = system.query_many(queries, parallel_refine=args.parallel_refine)
    batch_s = time.perf_counter() - t0

    for result in results:
        print(f"\n[{result.query_text}]")
        print(f"{system.name}: {len(result.entries)} recommended, "
              f"{len(result.filtered_out)} filtered out")
        _print_entries(corpus, result.entries)
    print(f"\nbatch of {len(queries)}: {batch_s * 1000:.1f} ms")
    if args.compare:
        t0 = time.perf_counter()
        sequential = [system.query(q) for q in queries]
        sequential_s = time.perf_counter() - t0
        assert len(sequential) == len(results)
        print(f"sequential loop: {sequential_s * 1000:.1f} ms "
              f"({sequential_s / max(batch_s, 1e-9):.1f}x speedup from batching)")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    result = run_table2(
        cities=tuple(args.cities),
        queries_per_city=args.queries,
        seed=args.seed,
        poi_count=args.pois or None,
    )
    print(format_table2(result))
    print(f"\nelapsed: {result.elapsed_s:.1f}s")
    return 0


def cmd_reshard(args: argparse.Namespace) -> int:
    """``reshard``: rewrite a saved snapshot for a new shard count.

    Re-routes every point via ``shard_for(id, new_shards)`` without
    re-embedding anything; scroll order, counts, payload indexes, and
    the HNSW config are preserved (see ``reshard_snapshot``).
    """
    from repro.vectordb.persistence import load_collection, reshard_snapshot

    if args.to_shards <= 0:
        print(f"--to must be positive, got {args.to_shards}")
        return 1
    written = reshard_snapshot(
        args.snapshot, args.to_shards, out_dir=args.out or None
    )
    collection = load_collection(written)
    print(
        f"resharded {args.snapshot} -> {written}: "
        f"{len(collection)} points across {args.to_shards} shard(s)"
    )
    collection.close()
    return 0


def cmd_snapshot_inspect(args: argparse.Namespace) -> int:
    """``snapshot inspect``: summarize a snapshot without loading it.

    Prints schema version, point count, shard layout, vector storage
    format (``npy`` = mmap-capable v3, ``npz`` = legacy compressed), and
    whether persisted HNSW graphs are present.
    """
    from repro.vectordb.persistence import inspect_snapshot

    info = inspect_snapshot(args.snapshot)
    print(json.dumps(info, indent=2))
    if not info["mmap_capable"] or not info["graphs_persisted"]:
        print(
            f"\nhint: `python -m repro snapshot migrate {args.snapshot}` "
            "rewrites this snapshot as schema v4 (memory-mappable vectors "
            "+ persisted HNSW graphs) for near-instant cold starts",
            file=sys.stderr,
        )
    return 0


def cmd_snapshot_migrate(args: argparse.Namespace) -> int:
    """``snapshot migrate``: rewrite any snapshot as schema v3.

    Upgrades v1/v2 snapshots (and v3 snapshots missing graph files) to
    the current layout: raw ``vectors.npy`` matrices that loads can
    memory-map, plus persisted HNSW graphs (built now unless
    ``--no-graphs``) so the next load skips reconstruction entirely.
    The rewrite is atomic — an interrupted migration leaves the original
    snapshot intact.
    """
    from repro.vectordb.persistence import inspect_snapshot, migrate_snapshot

    written = migrate_snapshot(
        args.snapshot,
        out_dir=args.out or None,
        build_graphs=not args.no_graphs,
        quantize=args.quantize or None,
    )
    info = inspect_snapshot(written)
    shards = info["shards"] or 1
    print(
        f"migrated {args.snapshot} -> {written}: schema {info['schema']}, "
        f"{info['count']} points across {shards} shard(s), "
        f"graphs {'persisted' if info['graphs_persisted'] else 'omitted'}, "
        f"quantize {info.get('quantize') or 'off'}"
    )
    return 0


def cmd_queries(args: argparse.Namespace) -> int:
    corpus = _corpus(args, args.city)
    queries = build_test_queries(corpus, count=args.count)
    rows = []
    for query in queries:
        rows.append([
            query.text[:70],
            len(query.answer_ids),
            ",".join(sorted(query.intent.required)),
        ])
    print(format_table(["query", "|answers|", "intent"], rows))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: the concurrent HTTP query server (see docs/serving.md).

    Boots from a prepared-city snapshot when ``--snapshot`` points at one
    (building and caching it on the first run), wires the collection and
    the SemaSK pipeline behind request coalescers, and serves until
    SIGINT/SIGTERM — shutting down gracefully (in-flight requests finish,
    coalescers flush).
    """
    import signal

    from repro.serving.bootstrap import load_or_prepare
    from repro.serving.http import ServingContext, ServingServer

    if args.shards <= 0:
        print(f"--shards must be positive, got {args.shards}")
        return 1
    if args.wal and not args.snapshot:
        print("--wal requires --snapshot (the write-ahead log lives "
              "beside the collection snapshot)")
        return 1
    prepared = load_or_prepare(
        args.snapshot or None,
        city=args.city,
        count=args.pois or None,
        seed=args.seed,
        shards=args.shards,
        mmap=not args.no_mmap,
        refresh=args.refresh,
        wal=args.wal or None,
    )
    collection = prepared.client.get_collection(prepared.collection_name)
    if args.quantize:
        # Attach an int8 tier to whatever was loaded/built; codes are
        # fitted lazily on the first quantized search, and a snapshot
        # that already carries a tier is left as-is.
        from repro.vectordb.quantization import SQ8Store

        for shard in getattr(
            collection, "shard_collections", (collection,)
        ):
            if shard.quantize is None:
                shard.attach_sq8(SQ8Store(shard.dim))
        print(f"quantized tier: {collection.quantize} "
              "(int8 codes, exact float32 rescoring)")
    if args.wal:
        stats = collection.wal_stats()
        depth = stats["records"] if stats else 0
        print(f"durable writes: wal fsync={args.wal}, "
              f"{depth} logged record(s) pending the next save")
    if args.shard_workers == "process":
        if getattr(collection, "n_shards", 1) > 1:
            try:
                collection.set_parallel("process")
                print(f"process workers: {collection.n_shards} shards")
            except OSError as exc:
                print(f"process workers unavailable ({exc}); using threads")
        else:
            print("--shard-workers process needs a sharded collection "
                  "(--shards > 1); using threads")

    factory = {"semask": semask, "o1": semask_o1, "em": semask_em}
    system = factory[args.variant](prepared, candidate_k=args.k)
    context = ServingContext(
        prepared.client,
        system=system,
        default_center=city_by_code(args.city).center,
        coalesce=not args.no_coalesce,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
        parallel_refine=args.parallel_refine,
        max_pending=args.max_pending or None,
    )
    server = ServingServer(
        context, host=args.host, port=args.port,
        max_inflight=args.max_inflight or None,
    )

    def _terminate(signum, frame):  # SIGTERM parity with ^C
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    host, port = server.address
    print(f"serving {prepared.collection_name!r} "
          f"({len(collection)} points, {system.name}) "
          f"at http://{host}:{port} — try GET /healthz")
    server.serve_forever()
    print("server stopped")
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    """``route``: the replica router (see docs/resilience.md).

    Fronts N ``repro serve`` replicas with health-checked round-robin:
    reads retry across replicas with exponential backoff + jitter
    (honoring any ``X-Repro-Deadline-Ms`` budget), writes pin to the
    first backend and are never retried, dead backends are ejected and
    probed back in through a half-open trial.
    """
    import signal

    from repro.serving.router import ReplicaRouter, RetryPolicy, RouterServer

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if not backends:
        print("--backends needs at least one host:port")
        return 1
    try:
        router = ReplicaRouter(
            backends,
            health_interval_s=args.health_interval_ms / 1000.0,
            eject_after=args.eject_after,
            retry=RetryPolicy(attempts=args.retries),
            request_timeout_s=args.request_timeout_s,
        )
    except ValueError as exc:
        print(str(exc))
        return 1
    server = RouterServer(
        router, host=args.host, port=args.port,
        max_inflight=args.max_inflight or None,
    )

    def _terminate(signum, frame):  # SIGTERM parity with ^C
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    host, port = server.address
    print(f"routing {len(backends)} backend(s) at http://{host}:{port} "
          f"— try GET /router/healthz")
    server.serve_forever()
    print("router stopped")
    return 0


def _demo_context(args: argparse.Namespace):
    """Demo state, cold-started from a snapshot when ``--snapshot`` is set.

    With a snapshot directory the demo boots through the PR 4 restore
    path (``load_collection``/``from_matrix`` — persisted graphs, no
    per-point upserts) instead of re-running data preparation on every
    start; the first run builds and caches the snapshot.
    """
    from repro.data.dataset import Dataset
    from repro.demo.app import DemoContext
    from repro.serving.bootstrap import load_or_prepare

    if args.snapshot:
        prepared = load_or_prepare(
            args.snapshot, city=args.city, count=args.pois or None,
            seed=args.seed, shards=args.shards,
        )
        dataset: Dataset = prepared.dataset
        system = semask(prepared)
    else:
        corpus = _corpus(args, args.city)
        prepared, dataset = corpus.prepared, corpus.dataset
        system = semask(prepared, llm=corpus.llm)
    geocoder = ReverseGeocoder()
    neighborhoods = geocoder.neighborhoods_of(args.city)
    return DemoContext(
        system=system,
        dataset=dataset,
        geocoder=geocoder,
        city_code=args.city.upper(),
        default_neighborhood=neighborhoods[0],
        default_query=args.text,
    )


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.demo.app import DemoServer, build_demo_page

    context = _demo_context(args)
    if args.serve:
        DemoServer(context, port=args.port).serve_forever()
        return 0
    page = build_demo_page(context)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(page)
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SemaSK reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build-data", help="generate + prepare the dataset")
    _add_common(p)
    p.add_argument("--out", default="data")
    p.set_defaults(func=cmd_build_data)

    p = sub.add_parser("stats", help="corpus statistics for one city")
    _add_common(p)
    p.add_argument("city", choices=[c.code for c in EVALUATION_CITIES] + ["MEL"])
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("query", help="answer one query")
    _add_common(p)
    p.add_argument("city")
    p.add_argument("text", help="the natural-language query")
    p.add_argument("--variant", choices=["semask", "o1", "em"],
                   default="semask")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--range-km", type=float, default=5.0)
    p.add_argument("--neighborhood", default="",
                   help="centre the range on a named neighbourhood")
    p.add_argument("--batch", action="store_true",
                   help="treat TEXT as ';'-separated queries and answer "
                        "them through the batched engine (query_many)")
    p.add_argument("--parallel-refine", type=int, default=4,
                   help="refinement thread-pool size in --batch mode")
    p.add_argument("--compare", action="store_true",
                   help="in --batch mode, also time a sequential loop over "
                        "the same queries (doubles the LLM calls)")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("table2", help="reproduce Table 2")
    _add_common(p)
    p.add_argument("--cities", nargs="+",
                   default=[c.code for c in EVALUATION_CITIES])
    p.add_argument("--queries", type=int, default=30)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("queries", help="show the evaluation query set")
    _add_common(p)
    p.add_argument("city")
    p.add_argument("--count", type=int, default=10)
    p.set_defaults(func=cmd_queries)

    p = sub.add_parser("reshard",
                       help="re-route a snapshot to a new shard count")
    p.add_argument("snapshot", help="snapshot directory (save_collection)")
    p.add_argument("--to", dest="to_shards", type=int, required=True,
                   help="target shard count (1 = single logical shard)")
    p.add_argument("--out", default="",
                   help="output directory (default: rewrite in place)")
    p.set_defaults(func=cmd_reshard)

    p = sub.add_parser("snapshot",
                       help="inspect or migrate collection snapshots")
    snap_sub = p.add_subparsers(dest="snapshot_command", required=True)
    sp = snap_sub.add_parser(
        "inspect", help="summarize a snapshot without loading it"
    )
    sp.add_argument("snapshot", help="snapshot directory (save_collection)")
    sp.set_defaults(func=cmd_snapshot_inspect)
    sp = snap_sub.add_parser(
        "migrate",
        help="rewrite a snapshot as schema v4 (mmap vectors + graphs)",
    )
    sp.add_argument("snapshot", help="snapshot directory (save_collection)")
    sp.add_argument("--out", default="",
                    help="output directory (default: rewrite in place)")
    sp.add_argument("--no-graphs", action="store_true",
                    help="do not build/persist HNSW graphs during migration")
    sp.add_argument("--quantize", choices=["sq8"], default="",
                    help="add an int8 scalar-quantized storage tier "
                         "(codes.npy + codebook.npz) to the rewritten "
                         "snapshot")
    sp.set_defaults(func=cmd_snapshot_migrate)

    p = sub.add_parser("serve", help="run the concurrent HTTP query server")
    _add_common(p)
    p.add_argument("--city", default="SL")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 = pick an ephemeral port)")
    p.add_argument("--snapshot", default="",
                   help="prepared-city snapshot directory: loaded when "
                        "present, built + cached on the first run")
    p.add_argument("--refresh", action="store_true",
                   help="rebuild the corpus even if --snapshot exists")
    p.add_argument("--no-mmap", action="store_true",
                   help="load snapshot vectors into RAM instead of "
                        "memory-mapping them")
    p.add_argument("--quantize", choices=["sq8"], default="",
                   help="serve approximate searches from an int8 "
                        "scalar-quantized tier with exact float32 "
                        "rescoring (clients tune via rescore_factor)")
    p.add_argument("--wal", choices=["always", "batch", "off"], default="",
                   help="durable writes: log accepted writes to a "
                        "per-shard write-ahead log beside the snapshot "
                        "(replayed on restart); the value picks the "
                        "fsync policy. Requires --snapshot")
    p.add_argument("--variant", choices=["semask", "o1", "em"],
                   default="semask")
    p.add_argument("--k", type=int, default=10,
                   help="candidates fetched per query by the filtering stage")
    p.add_argument("--no-coalesce", action="store_true",
                   help="disable request coalescing (each request executes "
                        "its own engine call)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="largest coalesced batch per engine call")
    p.add_argument("--max-wait-ms", type=float, default=5.0,
                   help="longest a lone request waits to be coalesced")
    p.add_argument("--parallel-refine", type=int, default=4,
                   help="LLM-refinement thread-pool size for coalesced "
                        "/query batches")
    p.add_argument("--shard-workers", choices=["thread", "process"],
                   default="thread",
                   help="fan-out executor for sharded collections; "
                        "'process' keeps one worker process per shard")
    p.add_argument("--max-pending", type=int, default=0,
                   help="bound each coalescer queue; a full queue sheds "
                        "with 429 (0 = unbounded)")
    p.add_argument("--max-inflight", type=int, default=0,
                   help="bound concurrently executing requests; excess "
                        "sheds with 429 (0 = unbounded)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "route",
        help="front N serve replicas with a health-checked router",
    )
    p.add_argument("--backends", required=True,
                   help="comma-separated host:port list of serve replicas; "
                        "the first is the write primary")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 = pick an ephemeral port)")
    p.add_argument("--health-interval-ms", type=float, default=250.0,
                   help="delay between /healthz probe rounds")
    p.add_argument("--eject-after", type=int, default=2,
                   help="consecutive failures before a backend leaves "
                        "rotation")
    p.add_argument("--retries", type=int, default=3,
                   help="read attempts across replicas before giving up "
                        "(writes are never retried)")
    p.add_argument("--request-timeout-s", type=float, default=30.0,
                   help="per-backend request timeout")
    p.add_argument("--max-inflight", type=int, default=0,
                   help="bound concurrently forwarded requests; excess "
                        "sheds with 429 (0 = unbounded)")
    p.set_defaults(func=cmd_route)

    p = sub.add_parser("demo", help="write or serve the demo page")
    _add_common(p)
    p.add_argument("--city", default="SL")
    p.add_argument("--text", default=(
        "I am looking for a bar to watch football that also serves "
        "delicious chicken. Do you have any recommendations?"
    ))
    p.add_argument("--out", default="semask_demo.html")
    p.add_argument("--serve", action="store_true")
    p.add_argument("--port", type=int, default=8808)
    p.add_argument("--snapshot", default="",
                   help="prepared-city snapshot directory: demo cold-starts "
                        "from it when present (built + cached on first run)")
    p.set_defaults(func=cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
