"""Geographic points and great-circle distance."""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0088  # IUGG mean Earth radius


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS84 coordinate pair (latitude, longitude in decimal degrees)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range [-90, 90]: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range [-180, 180]: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle (haversine) distance to ``other`` in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def offset_km(self, north_km: float, east_km: float) -> "GeoPoint":
        """Return the point displaced ``north_km``/``east_km`` kilometres.

        Uses the local equirectangular approximation, which is accurate to
        well under 1% at city scale (the only scale this library uses it at).
        """
        dlat = north_km / KM_PER_DEGREE_LAT
        dlon = east_km / km_per_degree_lon(self.lat)
        return GeoPoint(self.lat + dlat, self.lon + dlon)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)


KM_PER_DEGREE_LAT = math.pi * EARTH_RADIUS_KM / 180.0  # ~111.195 km


def km_per_degree_lon(lat: float) -> float:
    """Kilometres per degree of longitude at latitude ``lat``."""
    return KM_PER_DEGREE_LAT * math.cos(math.radians(lat))


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two coordinates, in kilometres.

    >>> round(haversine_km(36.1627, -86.7816, 36.1627, -86.7816), 6)
    0.0
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def equirectangular_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Fast city-scale distance approximation (used inside index hot loops)."""
    mean_lat = math.radians((lat1 + lat2) / 2.0)
    dx = math.radians(lon2 - lon1) * math.cos(mean_lat)
    dy = math.radians(lat2 - lat1)
    return EARTH_RADIUS_KM * math.sqrt(dx * dx + dy * dy)
