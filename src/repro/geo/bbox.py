"""Axis-aligned geographic bounding boxes (the paper's query range ``q.r``).

Boundary semantics
------------------

Latitude is a bounded axis: ``min_lat <= max_lat`` always holds, and
:meth:`BoundingBox.around` clamps query boxes at the poles (a 5 km box
centred at 89.999° N simply ends at 90°; it does not raise).

Longitude is a circle. A box may *cross the antimeridian*, encoded as
``min_lon > max_lon`` (the GeoJSON bbox convention): such a box covers
``lon >= min_lon`` **or** ``lon <= max_lon``. :meth:`BoundingBox.around`
wraps overflowing edges into [-180, 180] and produces a crossing box when
the requested region spans the dateline, so points on the far side are no
longer silently excluded; a box at least 360° wide degenerates to the
full longitude range. :meth:`contains`, :meth:`intersects`,
:meth:`center`, :meth:`area_deg2`, and :meth:`width_km` all honour the
crossing encoding; consumers that need plain (non-crossing) rectangles —
e.g. the uniform grid's cell-range arithmetic — can expand a box with
:meth:`split_antimeridian`. :meth:`union` is exact for plain boxes and
conservative (full longitude range) when a crossing box is involved;
R-tree node MBRs are unions of point boxes and therefore never cross.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.point import GeoPoint, KM_PER_DEGREE_LAT, km_per_degree_lon


def _wrap_lon(lon: float) -> float:
    """Map ``lon`` into [-180, 180] (180 stays 180, not -180)."""
    if -180.0 <= lon <= 180.0:
        return lon
    wrapped = math.fmod(lon + 180.0, 360.0)
    if wrapped < 0.0:
        wrapped += 360.0
    return wrapped - 180.0 if wrapped else 180.0


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A latitude/longitude rectangle with inclusive bounds.

    ``min_lon > max_lon`` encodes an antimeridian-crossing box (see the
    module docstring); latitude bounds must be ordered.
    """

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat:
            raise ValueError(
                f"min_lat {self.min_lat} exceeds max_lat {self.max_lat}"
            )
        if self.min_lon > self.max_lon and not (
            -180.0 <= self.min_lon <= 180.0
            and -180.0 <= self.max_lon <= 180.0
        ):
            raise ValueError(
                "an antimeridian-crossing box (min_lon > max_lon) needs "
                f"both edges in [-180, 180], got "
                f"({self.min_lon}, {self.max_lon})"
            )

    @property
    def crosses_antimeridian(self) -> bool:
        """Whether this box wraps across the ±180° meridian."""
        return self.min_lon > self.max_lon

    @classmethod
    def around(cls, center: GeoPoint, width_km: float, height_km: float) -> "BoundingBox":
        """Build the ``width_km`` x ``height_km`` box centred on ``center``.

        This is how the paper forms query ranges: "a 5 km x 5 km region
        centered at the point". Latitude edges clamp to ±90; longitude
        edges wrap at ±180, yielding an antimeridian-crossing box when
        the region spans the dateline (and the full longitude range when
        it is 360° wide or the centre is close enough to a pole that
        every meridian is within reach).
        """
        if width_km <= 0 or height_km <= 0:
            raise ValueError("box dimensions must be positive")
        half_h = (height_km / 2.0) / KM_PER_DEGREE_LAT
        min_lat = max(center.lat - half_h, -90.0)
        max_lat = min(center.lat + half_h, 90.0)
        km_per_lon = km_per_degree_lon(center.lat)
        half_w = (
            (width_km / 2.0) / km_per_lon if km_per_lon > 0.0
            else float("inf")
        )
        if not half_w < 180.0:
            return cls(min_lat, -180.0, max_lat, 180.0)
        return cls(
            min_lat=min_lat,
            min_lon=_wrap_lon(center.lon - half_w),
            max_lat=max_lat,
            max_lon=_wrap_lon(center.lon + half_w),
        )

    @classmethod
    def of_points(cls, points: list[GeoPoint]) -> "BoundingBox":
        """Minimal plain box covering ``points`` (which must be non-empty)."""
        if not points:
            raise ValueError("cannot build a bounding box of zero points")
        lats = [p.lat for p in points]
        lons = [p.lon for p in points]
        return cls(min(lats), min(lons), max(lats), max(lons))

    def split_antimeridian(self) -> list["BoundingBox"]:
        """This box as one or two plain (non-crossing) boxes.

        Crossing boxes split into their eastern ``[min_lon, 180]`` and
        western ``[-180, max_lon]`` halves; plain boxes return
        ``[self]``. The parts cover the same points (±180 appears in one
        part each).
        """
        if not self.crosses_antimeridian:
            return [self]
        return [
            BoundingBox(self.min_lat, self.min_lon, self.max_lat, 180.0),
            BoundingBox(self.min_lat, -180.0, self.max_lat, self.max_lon),
        ]

    def _lon_span_deg(self) -> float:
        """Longitudinal extent in degrees (wrap-aware)."""
        span = self.max_lon - self.min_lon
        return span + 360.0 if span < 0.0 else span

    @property
    def center(self) -> GeoPoint:
        """The box's midpoint (on the covered side of the antimeridian)."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            _wrap_lon(self.min_lon + self._lon_span_deg() / 2.0),
        )

    def contains(self, point: GeoPoint) -> bool:
        """Whether ``point`` lies inside the box (bounds inclusive)."""
        return self.contains_coords(point.lat, point.lon)

    def contains_coords(self, lat: float, lon: float) -> bool:
        """Like :meth:`contains` without constructing a :class:`GeoPoint`."""
        if not self.min_lat <= lat <= self.max_lat:
            return False
        if self.crosses_antimeridian:
            return lon >= self.min_lon or lon <= self.max_lon
        return self.min_lon <= lon <= self.max_lon

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes overlap (shared edges count)."""
        if other.min_lat > self.max_lat or other.max_lat < self.min_lat:
            return False
        return any(
            mine.min_lon <= theirs.max_lon
            and theirs.min_lon <= mine.max_lon
            for mine in self.split_antimeridian()
            for theirs in other.split_antimeridian()
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The minimal plain box covering both boxes.

        Exact for plain boxes (the R-tree only unions those); if either
        side crosses the antimeridian the result conservatively covers
        the full longitude range.
        """
        min_lat = min(self.min_lat, other.min_lat)
        max_lat = max(self.max_lat, other.max_lat)
        if self.crosses_antimeridian or other.crosses_antimeridian:
            return BoundingBox(min_lat, -180.0, max_lat, 180.0)
        return BoundingBox(
            min_lat,
            min(self.min_lon, other.min_lon),
            max_lat,
            max(self.max_lon, other.max_lon),
        )

    def area_deg2(self) -> float:
        """Area in squared degrees (used by R-tree split heuristics)."""
        return (self.max_lat - self.min_lat) * self._lon_span_deg()

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase needed for this box to also cover ``other``."""
        return self.union(other).area_deg2() - self.area_deg2()

    def width_km(self) -> float:
        """East-west extent in kilometres (measured at the centre latitude)."""
        return self._lon_span_deg() * km_per_degree_lon(self.center.lat)

    def height_km(self) -> float:
        """North-south extent in kilometres."""
        return (self.max_lat - self.min_lat) * KM_PER_DEGREE_LAT
