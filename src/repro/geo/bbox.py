"""Axis-aligned geographic bounding boxes (the paper's query range ``q.r``)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.point import GeoPoint, KM_PER_DEGREE_LAT, km_per_degree_lon


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A latitude/longitude rectangle with inclusive bounds."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat:
            raise ValueError(
                f"min_lat {self.min_lat} exceeds max_lat {self.max_lat}"
            )
        if self.min_lon > self.max_lon:
            raise ValueError(
                f"min_lon {self.min_lon} exceeds max_lon {self.max_lon}"
            )

    @classmethod
    def around(cls, center: GeoPoint, width_km: float, height_km: float) -> "BoundingBox":
        """Build the ``width_km`` x ``height_km`` box centred on ``center``.

        This is how the paper forms query ranges: "a 5 km x 5 km region
        centered at the point".
        """
        if width_km <= 0 or height_km <= 0:
            raise ValueError("box dimensions must be positive")
        half_h = (height_km / 2.0) / KM_PER_DEGREE_LAT
        half_w = (width_km / 2.0) / km_per_degree_lon(center.lat)
        return cls(
            min_lat=center.lat - half_h,
            min_lon=center.lon - half_w,
            max_lat=center.lat + half_h,
            max_lon=center.lon + half_w,
        )

    @classmethod
    def of_points(cls, points: list[GeoPoint]) -> "BoundingBox":
        """Minimal box covering ``points`` (which must be non-empty)."""
        if not points:
            raise ValueError("cannot build a bounding box of zero points")
        lats = [p.lat for p in points]
        lons = [p.lon for p in points]
        return cls(min(lats), min(lons), max(lats), max(lons))

    @property
    def center(self) -> GeoPoint:
        """The box's midpoint."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    def contains(self, point: GeoPoint) -> bool:
        """Whether ``point`` lies inside the box (bounds inclusive)."""
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lon <= point.lon <= self.max_lon
        )

    def contains_coords(self, lat: float, lon: float) -> bool:
        """Like :meth:`contains` without constructing a :class:`GeoPoint`."""
        return (
            self.min_lat <= lat <= self.max_lat
            and self.min_lon <= lon <= self.max_lon
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes overlap (shared edges count)."""
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The minimal box covering both boxes."""
        return BoundingBox(
            min(self.min_lat, other.min_lat),
            min(self.min_lon, other.min_lon),
            max(self.max_lat, other.max_lat),
            max(self.max_lon, other.max_lon),
        )

    def area_deg2(self) -> float:
        """Area in squared degrees (used by R-tree split heuristics)."""
        return (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase needed for this box to also cover ``other``."""
        return self.union(other).area_deg2() - self.area_deg2()

    def width_km(self) -> float:
        """East-west extent in kilometres (measured at the centre latitude)."""
        return (self.max_lon - self.min_lon) * km_per_degree_lon(self.center.lat)

    def height_km(self) -> float:
        """North-south extent in kilometres."""
        return (self.max_lat - self.min_lat) * KM_PER_DEGREE_LAT
