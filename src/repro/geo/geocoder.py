"""A deterministic synthetic reverse geocoder.

The paper completes incomplete Yelp addresses via the geocode.maps.co
reverse-geocoding API, obtaining city, county, suburb, and neighborhood for
each coordinate pair. That service is unavailable offline, so this module
provides a stand-in with the same interface: coordinates in, administrative
names out.

Each city is partitioned into neighbourhoods by a seeded Voronoi diagram —
neighbourhood *seed sites* are placed deterministically inside the city
bounds, and a coordinate belongs to the nearest site. Suburbs are a coarser
partition built the same way (fewer sites). The partition is stable across
runs for a given seed, which is all the data-preparation pipeline needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geo.point import GeoPoint, equirectangular_km
from repro.geo.regions import ALL_CITIES, CityRegion


@dataclass(frozen=True, slots=True)
class Address:
    """A completed administrative address for a coordinate pair."""

    city: str
    state: str
    county: str
    suburb: str
    neighborhood: str

    def formatted(self, street: str | None = None) -> str:
        """Human-readable single-line address."""
        parts = [street] if street else []
        parts += [self.neighborhood, self.city, self.state]
        return ", ".join(parts)


class _VoronoiPartition:
    """Nearest-site partition of a city's bounding box."""

    def __init__(self, city: CityRegion, names: tuple[str, ...], seed: int) -> None:
        if not names:
            raise ValueError(f"city {city.name} has no region names to assign")
        rng = np.random.default_rng(seed)
        bounds = city.bounds
        n = len(names)
        # Downtown (index 0 by convention in regions.py) is pinned to the
        # city centre; remaining sites are drawn uniformly in the bounds.
        lats = rng.uniform(bounds.min_lat, bounds.max_lat, size=n)
        lons = rng.uniform(bounds.min_lon, bounds.max_lon, size=n)
        lats[0] = city.center.lat
        lons[0] = city.center.lon
        self._lats = lats
        self._lons = lons
        self._names = names

    def assign(self, lat: float, lon: float) -> str:
        """Name of the partition cell containing ``(lat, lon)``."""
        best_name = self._names[0]
        best_dist = math.inf
        for i, name in enumerate(self._names):
            d = equirectangular_km(lat, lon, self._lats[i], self._lons[i])
            if d < best_dist:
                best_dist = d
                best_name = name
        return best_name

    def site_of(self, name: str) -> GeoPoint:
        """Seed site of the named cell (used to centre demo queries)."""
        idx = self._names.index(name)
        return GeoPoint(float(self._lats[idx]), float(self._lons[idx]))


class ReverseGeocoder:
    """Coordinates -> (city, county, suburb, neighborhood), deterministically.

    Mirrors the role of the reverse-geocoding step in the paper's address
    completion. A coordinate outside every known city's bounds geocodes to
    the *nearest* city (by centre distance), which keeps the API total —
    address completion never fails, as with the real service.
    """

    #: Ratio of neighbourhood sites grouped under one suburb site.
    _SUBURB_FRACTION = 3

    def __init__(self, cities: tuple[CityRegion, ...] = ALL_CITIES, seed: int = 7) -> None:
        self._cities = cities
        self._neighborhoods: dict[str, _VoronoiPartition] = {}
        self._suburbs: dict[str, _VoronoiPartition] = {}
        for i, city in enumerate(cities):
            n_names = city.neighborhoods
            s_count = max(1, len(n_names) // self._SUBURB_FRACTION)
            s_names = tuple(f"{n} District" for n in n_names[:s_count])
            self._neighborhoods[city.code] = _VoronoiPartition(
                city, n_names, seed=seed * 1000 + i * 2
            )
            self._suburbs[city.code] = _VoronoiPartition(
                city, s_names, seed=seed * 1000 + i * 2 + 1
            )

    def _nearest_city(self, lat: float, lon: float) -> CityRegion:
        for city in self._cities:
            if city.bounds.contains_coords(lat, lon):
                return city
        return min(
            self._cities,
            key=lambda c: equirectangular_km(lat, lon, c.center.lat, c.center.lon),
        )

    def reverse(self, lat: float, lon: float) -> Address:
        """Complete the address for ``(lat, lon)``."""
        city = self._nearest_city(lat, lon)
        return Address(
            city=city.name,
            state=city.state,
            county=city.county,
            suburb=self._suburbs[city.code].assign(lat, lon),
            neighborhood=self._neighborhoods[city.code].assign(lat, lon),
        )

    def neighborhoods_of(self, city_code: str) -> tuple[str, ...]:
        """All neighbourhood names of a city (demo UI region picker)."""
        for city in self._cities:
            if city.code == city_code.upper():
                return city.neighborhoods
        raise KeyError(f"unknown city code {city_code!r}")

    def neighborhood_center(self, city_code: str, neighborhood: str) -> GeoPoint:
        """Representative point of a neighbourhood (demo query centring)."""
        partition = self._neighborhoods.get(city_code.upper())
        if partition is None:
            raise KeyError(f"unknown city code {city_code!r}")
        return partition.site_of(neighborhood)
