"""City region definitions used by the synthetic dataset and geocoder.

The five evaluation cities match the paper's test sets (city, state, POI
count): Indianapolis/IN 4,235; Nashville/TN 3,716; Philadelphia/PA 7,592;
Santa Barbara/CA 1,790; Saint Louis/MO 2,462. Melbourne is included for the
Figure-1 motivating scenario ("café" in Melbourne CBD).

Real city-centre coordinates anchor each region; neighbourhood names are
synthetic-but-plausible and deterministic, generated from curated name
pools, since the geocoding service the paper used is unavailable offline
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint


@dataclass(frozen=True)
class CityRegion:
    """A named city with its extent and administrative naming material."""

    code: str                 # paper's two-letter test-set code, e.g. "IN"
    name: str                 # e.g. "Indianapolis"
    state: str                # e.g. "IN" (postal state, may differ from code)
    county: str
    center: GeoPoint
    extent_km: float          # side length of the square city extent
    poi_count: int            # paper-reported number of POIs
    neighborhoods: tuple[str, ...] = field(default=())

    @property
    def bounds(self) -> BoundingBox:
        """The square bounding box the city's POIs are generated within."""
        return BoundingBox.around(self.center, self.extent_km, self.extent_km)


def _downtown_first(city: str, names: tuple[str, ...]) -> tuple[str, ...]:
    """Prefix the pool with the canonical downtown neighbourhood name."""
    return (f"Downtown {city}",) + names


_COMMON_SUFFIXES = (
    "Heights", "Park", "Grove", "Village", "Square", "Hill", "Gardens",
    "Crossing", "Commons", "Point", "Ridge", "Meadows", "Landing", "Court",
)

_DIRECTIONALS = ("North", "South", "East", "West", "Old", "New", "Upper", "Lower")

_CITY_STEMS: dict[str, tuple[str, ...]] = {
    "IN": ("Monument", "Fountain", "Broad Ripple", "Irvington", "Mass Ave",
           "Speedway", "Garfield", "Riverside", "Haughville", "Woodruff"),
    "NS": ("Music Row", "Germantown", "The Gulch", "Berry", "Sylvan",
           "Inglewood", "Donelson", "Melrose", "Wedgewood", "Salemtown"),
    "PH": ("Center City", "Fishtown", "Manayunk", "Passyunk", "Fairmount",
           "Kensington", "Queen", "Society", "Spruce", "Brewerytown",
           "Chestnut", "Callowhill"),
    "SB": ("Mesa", "Mission", "Funk Zone", "Riviera", "Milpas",
           "Oak", "Laguna", "Haley"),
    "SL": ("Soulard", "Lafayette", "Tower Grove", "Central West",
           "The Hill", "Benton", "Carondelet", "Cherokee", "Delmar",
           "Forest"),
    "MEL": ("Collins", "Flinders", "Carlton", "Fitzroy", "Southbank",
            "Docklands", "Richmond", "Brunswick"),
}


def _neighborhood_pool(code: str, city: str, count: int) -> tuple[str, ...]:
    """Deterministically compose ``count`` neighbourhood names for a city."""
    stems = _CITY_STEMS[code]
    names: list[str] = []
    for i, stem in enumerate(stems):
        names.append(f"{stem} {_COMMON_SUFFIXES[i % len(_COMMON_SUFFIXES)]}")
    i = 0
    while len(names) < count:
        stem = stems[i % len(stems)]
        direction = _DIRECTIONALS[(i // len(stems)) % len(_DIRECTIONALS)]
        suffix = _COMMON_SUFFIXES[(i + 3) % len(_COMMON_SUFFIXES)]
        names.append(f"{direction} {stem} {suffix}")
        i += 1
    return _downtown_first(city, tuple(names[: count - 1]))


INDIANAPOLIS = CityRegion(
    code="IN", name="Indianapolis", state="IN", county="Marion County",
    center=GeoPoint(39.7684, -86.1581), extent_km=18.0, poi_count=4235,
    neighborhoods=_neighborhood_pool("IN", "Indianapolis", 24),
)

NASHVILLE = CityRegion(
    code="NS", name="Nashville", state="TN", county="Davidson County",
    center=GeoPoint(36.1627, -86.7816), extent_km=18.0, poi_count=3716,
    neighborhoods=_neighborhood_pool("NS", "Nashville", 22),
)

PHILADELPHIA = CityRegion(
    code="PH", name="Philadelphia", state="PA", county="Philadelphia County",
    center=GeoPoint(39.9526, -75.1652), extent_km=20.0, poi_count=7592,
    neighborhoods=_neighborhood_pool("PH", "Philadelphia", 30),
)

SANTA_BARBARA = CityRegion(
    code="SB", name="Santa Barbara", state="CA", county="Santa Barbara County",
    center=GeoPoint(34.4208, -119.6982), extent_km=12.0, poi_count=1790,
    neighborhoods=_neighborhood_pool("SB", "Santa Barbara", 14),
)

SAINT_LOUIS = CityRegion(
    code="SL", name="Saint Louis", state="MO", county="St. Louis City",
    center=GeoPoint(38.6270, -90.1994), extent_km=16.0, poi_count=2462,
    neighborhoods=_neighborhood_pool("SL", "Saint Louis", 18),
)

MELBOURNE = CityRegion(
    code="MEL", name="Melbourne", state="VIC", county="City of Melbourne",
    center=GeoPoint(-37.8136, 144.9631), extent_km=8.0, poi_count=600,
    neighborhoods=_neighborhood_pool("MEL", "Melbourne", 10),
)

EVALUATION_CITIES: tuple[CityRegion, ...] = (
    INDIANAPOLIS, NASHVILLE, PHILADELPHIA, SANTA_BARBARA, SAINT_LOUIS,
)

ALL_CITIES: tuple[CityRegion, ...] = EVALUATION_CITIES + (MELBOURNE,)

_BY_CODE = {c.code: c for c in ALL_CITIES}
_BY_NAME = {c.name.lower(): c for c in ALL_CITIES}


def city_by_code(code: str) -> CityRegion:
    """Look up a city by its paper test-set code (``"IN"``, ``"NS"``, ...)."""
    try:
        return _BY_CODE[code.upper()]
    except KeyError:
        known = ", ".join(sorted(_BY_CODE))
        raise KeyError(f"unknown city code {code!r}; known codes: {known}") from None


def city_by_name(name: str) -> CityRegion:
    """Look up a city by full name (case-insensitive)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(c.name for c in ALL_CITIES))
        raise KeyError(f"unknown city {name!r}; known cities: {known}") from None
