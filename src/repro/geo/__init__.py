"""Geographic primitives: points, boxes, city regions, reverse geocoding."""

from repro.geo.bbox import BoundingBox
from repro.geo.geocoder import Address, ReverseGeocoder
from repro.geo.point import (
    EARTH_RADIUS_KM,
    GeoPoint,
    equirectangular_km,
    haversine_km,
    km_per_degree_lon,
)
from repro.geo.regions import (
    ALL_CITIES,
    EVALUATION_CITIES,
    INDIANAPOLIS,
    MELBOURNE,
    NASHVILLE,
    PHILADELPHIA,
    SAINT_LOUIS,
    SANTA_BARBARA,
    CityRegion,
    city_by_code,
    city_by_name,
)

__all__ = [
    "ALL_CITIES",
    "Address",
    "BoundingBox",
    "CityRegion",
    "EARTH_RADIUS_KM",
    "EVALUATION_CITIES",
    "GeoPoint",
    "INDIANAPOLIS",
    "MELBOURNE",
    "NASHVILLE",
    "PHILADELPHIA",
    "ReverseGeocoder",
    "SAINT_LOUIS",
    "SANTA_BARBARA",
    "city_by_code",
    "city_by_name",
    "equirectangular_km",
    "haversine_km",
    "km_per_degree_lon",
]
