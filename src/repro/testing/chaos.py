"""Chaos-injection harness: fault hooks and a fault-injecting TCP proxy.

Robustness claims are only as good as the faults they were tested under.
This module provides the two fault-injection mechanisms
``tests/test_resilience.py`` uses to *prove* the serving stack's
overload and failure behaviour, in the same spirit as the SIGKILL
crash-recovery harness proves durability:

* **Fault hooks** — named injection points compiled into the serving
  code (:func:`fire` calls in the coalescer's batch execution and the
  HTTP server's dispatch). Production cost is one dict lookup on an
  empty module-level dict; a test installs a callable under a point
  name (:func:`install_fault` or the :func:`fault` context manager) to
  add latency, raise mid-batch, or count invocations. Hooks see keyword
  context (the batch key and items, the request path) and may raise —
  the exception propagates exactly like a real failure at that point.

* :class:`ChaosProxy` — a TCP proxy that sits between a client and a
  real server socket and misbehaves on command: refuse connections,
  delay the response, throttle it to a byte rate (slow read), serve a
  canned HTTP 500 without contacting the backend, or kill the
  connection after forwarding N response bytes (mid-stream reset).
  Faults are mutable at runtime, so one proxy can take a backend
  through dead → flapping → healthy within a single test.

Both live under :mod:`repro.testing` — importable from production code
(the hook registry must be), but never *configured* outside tests.

Fault point names currently fired by the serving stack:

* ``batcher.run_batch`` — before every coalescer batch execution
  (including single-item isolation retries); context: ``name``, ``key``,
  ``items``.
* ``http.request`` — before every HTTP request dispatch; context:
  ``method``, ``path``.
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

__all__ = [
    "ChaosProxy",
    "clear_faults",
    "fault",
    "fire",
    "install_fault",
    "remove_fault",
]


# ----------------------------------------------------------------------
# fault hooks
# ----------------------------------------------------------------------

_hooks: dict[str, Callable[..., None]] = {}
_hooks_lock = threading.Lock()


def install_fault(point: str, hook: Callable[..., None]) -> None:
    """Install ``hook`` at the named injection point (replacing any)."""
    with _hooks_lock:
        _hooks[point] = hook


def remove_fault(point: str) -> None:
    """Remove the hook at ``point`` (no-op when absent)."""
    with _hooks_lock:
        _hooks.pop(point, None)


def clear_faults() -> None:
    """Remove every installed hook."""
    with _hooks_lock:
        _hooks.clear()


@contextmanager
def fault(point: str, hook: Callable[..., None]) -> Iterator[None]:
    """Scope a hook to a ``with`` block (always removed on exit)."""
    install_fault(point, hook)
    try:
        yield
    finally:
        remove_fault(point)


def fire(point: str, **context: Any) -> None:
    """Invoke the hook at ``point``, if any.

    Called from production code at its injection points. The fast path —
    no hooks installed anywhere — is a single truthiness check on the
    module dict. Hook exceptions propagate to the caller on purpose:
    that *is* the injected fault.
    """
    if not _hooks:
        return
    hook = _hooks.get(point)
    if hook is not None:
        hook(**context)


# ----------------------------------------------------------------------
# fault-injecting TCP proxy
# ----------------------------------------------------------------------

_CANNED_500 = (
    b"HTTP/1.1 500 Internal Server Error\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: 28\r\n"
    b"Connection: close\r\n"
    b"\r\n"
    b'{"error": "chaos injected"}\n'
)


# reprolint: disable=RL06 -- test harness: holds sockets/threads, never pickled
class ChaosProxy:
    """A TCP proxy whose failure modes are dialed in at runtime.

    Forwards every accepted connection to ``(target_host, target_port)``
    byte-for-byte until told to misbehave via :meth:`set_faults`:

    * ``refuse`` — accept and immediately close (connection reset).
    * ``respond_500`` — return a canned HTTP 500 without contacting the
      backend.
    * ``delay_s`` — sleep before forwarding the first response bytes.
    * ``byte_rate`` — throttle the response to roughly N bytes/second
      (slow read).
    * ``reset_after_bytes`` — forward N response bytes, then kill the
      connection mid-stream.

    Listens on an ephemeral port by default (:attr:`address` /
    :attr:`url`); :meth:`close` stops the accept loop and joins every
    handler thread, so tests stay clean under the session leak guard.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._target = (target_host, target_port)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self._listener.settimeout(0.2)
        self._lock = threading.Lock()
        self._faults: dict[str, Any] = {}
        self._threads: list[threading.Thread] = []
        self._closed = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self.connections_seen = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` the proxy listens on."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def url(self) -> str:
        """``http://host:port`` of the proxy's listening socket."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ChaosProxy":
        """Start the accept loop (idempotent); returns self for chaining."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="chaos-proxy-accept",
                daemon=True,
            )
            self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, close the listener, join handler threads."""
        if self._closed.is_set():
            return
        self._closed.set()
        thread = self._accept_thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._listener.close()
        with self._lock:
            handlers = list(self._threads)
        for handler in handlers:
            handler.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- fault control -------------------------------------------------

    def set_faults(
        self,
        *,
        refuse: bool = False,
        respond_500: bool = False,
        delay_s: float = 0.0,
        byte_rate: int | None = None,
        reset_after_bytes: int | None = None,
    ) -> None:
        """Replace the active fault set (pass nothing to heal the proxy)."""
        with self._lock:
            self._faults = {
                "refuse": refuse,
                "respond_500": respond_500,
                "delay_s": delay_s,
                "byte_rate": byte_rate,
                "reset_after_bytes": reset_after_bytes,
            }

    def _fault_snapshot(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._faults)

    # -- data path -----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us
            self.connections_seen += 1
            handler = threading.Thread(
                target=self._handle, args=(conn,),
                name="chaos-proxy-conn", daemon=True,
            )
            with self._lock:
                # Prune finished handlers so a long-lived proxy does not
                # accumulate thread objects.
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(handler)
            handler.start()

    def _handle(self, conn: socket.socket) -> None:
        faults = self._fault_snapshot()
        try:
            if faults.get("refuse"):
                # Hard reset rather than FIN: SO_LINGER with zero timeout
                # makes close() send RST, which is what a crashed or
                # firewalled backend looks like to the client.
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                return
            if faults.get("respond_500"):
                self._drain_request(conn)
                conn.sendall(_CANNED_500)
                return
            self._pump(conn, faults)
        except OSError:
            pass  # either side went away; nothing to clean beyond close
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _drain_request(self, conn: socket.socket) -> None:
        """Read one request's bytes so the client's send never blocks."""
        conn.settimeout(0.2)
        try:
            while conn.recv(65536):
                pass
        except (TimeoutError, OSError):
            pass

    def _pump(self, conn: socket.socket, faults: dict[str, Any]) -> None:
        """Bidirectional byte pump with faults on the response stream."""
        upstream = socket.create_connection(self._target, timeout=5.0)
        try:
            forward = threading.Thread(
                target=self._pump_oneway, args=(conn, upstream),
                name="chaos-proxy-fwd", daemon=True,
            )
            forward.start()
            self._pump_response(upstream, conn, faults)
            forward.join(timeout=5.0)
        finally:
            try:
                upstream.close()
            except OSError:
                pass

    @staticmethod
    def _pump_oneway(src: socket.socket, dst: socket.socket) -> None:
        """client → backend: forwarded verbatim (faults hit responses)."""
        try:
            while True:
                chunk = src.recv(65536)
                if not chunk:
                    break
                dst.sendall(chunk)
            dst.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _pump_response(
        self,
        src: socket.socket,
        dst: socket.socket,
        faults: dict[str, Any],
    ) -> None:
        """backend → client, applying delay/throttle/mid-stream reset."""
        delay_s = faults.get("delay_s") or 0.0
        byte_rate = faults.get("byte_rate")
        reset_after = faults.get("reset_after_bytes")
        sent = 0
        first = True
        while True:
            chunk = src.recv(4096 if byte_rate else 65536)
            if not chunk:
                try:
                    dst.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                return
            if first and delay_s:
                time.sleep(delay_s)
            first = False
            if reset_after is not None and sent + len(chunk) >= reset_after:
                dst.sendall(chunk[: max(0, reset_after - sent)])
                dst.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                dst.close()
                return
            dst.sendall(chunk)
            sent += len(chunk)
            if byte_rate:
                time.sleep(len(chunk) / byte_rate)
