"""Runtime lock-order auditor: the dynamic half of reprolint.

The static rules (``tools/reprolint``) check what is lexically visible
in one file; this module checks what actually happens at runtime. A
:class:`LockWatcher` monkeypatches the ``threading.Lock`` and
``threading.RLock`` factories so every lock created while it is
installed is wrapped in a recording proxy. The watcher then

* records the **acquisition-order graph**: an edge ``A -> B`` whenever a
  thread acquires ``B`` while holding ``A``. A cycle in that graph means
  two code paths take the same locks in opposite orders — the classic
  recipe for a deadlock that only fires under the right interleaving —
  even if this particular run never actually deadlocked.
* records **lock hold times** and flags spans above a threshold
  (default ``2.0`` s, configurable via the ``REPRO_LOCK_HOLD_S``
  environment variable or the ``hold_threshold`` argument). Long holds
  are how "no blocking I/O under a lock" (RL03) violations that static
  analysis cannot see — e.g. through a helper call — show up at runtime.

The proxies implement the private ``_release_save`` /
``_acquire_restore`` / ``_is_owned`` hooks that ``threading.Condition``
binds at construction, with explicit bookkeeping: ``Condition.wait``
*releases* the lock while waiting, so silently forwarding those calls
would corrupt the per-thread held-lock stack and report bogus hold
times spanning the entire wait.

Scope and caveats:

* Only locks **created while installed** are watched. Locks created at
  import time (module singletons, session-scoped fixtures) predate the
  patch and stay invisible. The pytest fixture in ``tests/conftest.py``
  installs per-test, which covers every collection/WAL/server the test
  constructs itself.
* ``lock.acquire(timeout=...)`` without a ``with`` block is recorded
  too; an acquisition that *fails* (timeout) records nothing.
* The graph is acquisition-order, not wait-for: it overapproximates.
  A reported cycle is a lock-ordering hazard, not proof of a hang this
  run — which is exactly what a regression test wants to fail on.

Usage outside pytest::

    watcher = LockWatcher()
    with watcher.watching():
        ... exercise concurrent code ...
    watcher.assert_clean()   # raises LockWatchError on cycles/long holds
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass

__all__ = ["HoldViolation", "LockWatchError", "LockWatcher"]

#: Default lock-hold threshold (seconds) before a span is flagged.
DEFAULT_HOLD_THRESHOLD_S = 2.0

# The real factories, captured at import time so the watcher's own
# bookkeeping lock (and uninstall) never depend on the patched names.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class LockWatchError(AssertionError):
    """Raised by :meth:`LockWatcher.assert_clean` on recorded hazards."""


@dataclass(frozen=True)
class HoldViolation:
    """One lock-hold span that exceeded the threshold."""

    lock: str
    seconds: float
    thread: str
    site: str

    def render(self) -> str:
        return (
            f"{self.lock} held {self.seconds:.3f}s by {self.thread} "
            f"(acquired at {self.site})"
        )


def _call_site() -> str:
    """``file:line`` of the first frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    filename = frame.f_code.co_filename
    for marker in ("/site-packages/", "/src/", "/tests/"):
        idx = filename.rfind(marker)
        if idx != -1:
            filename = filename[idx + len(marker):]
            break
    return f"{filename}:{frame.f_lineno}"


class _HeldEntry:
    """Per-thread record of one currently held lock."""

    __slots__ = ("lock_id", "count", "since", "site")

    def __init__(self, lock_id: int, since: float, site: str) -> None:
        self.lock_id = lock_id
        self.count = 1
        self.since = since
        self.site = site


class _WatchedLockBase:
    """Recording proxy around a real lock primitive."""

    _reentrant = False

    def __init__(self, inner, watcher: "LockWatcher", name: str) -> None:
        self._inner = inner
        self._watcher = watcher
        self._name = name

    # -- the lock protocol ---------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watcher._note_acquire(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._watcher._note_release(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __getattr__(self, name: str):
        # Forward internals we do not track (``_at_fork_reinit``,
        # ``_recursion_count``, ...) to the real lock. Only attributes
        # not defined on the wrapper reach here, so the bookkeeping
        # methods above always win; an attribute the inner lock lacks
        # raises AttributeError exactly as an unwrapped lock would
        # (which is how Condition feature-detects ``_release_save``).
        inner = object.__getattribute__(self, "_inner")
        return getattr(inner, name)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<watched {self._name} wrapping {self._inner!r}>"


class _WatchedLock(_WatchedLockBase):
    """Watched non-reentrant lock (``threading.Lock`` replacement)."""


class _WatchedRLock(_WatchedLockBase):
    """Watched re-entrant lock (``threading.RLock`` replacement).

    Implements the ``Condition`` integration hooks explicitly:
    ``Condition.wait`` fully releases the lock via ``_release_save`` and
    re-acquires it via ``_acquire_restore``, so both must keep the
    watcher's held-stack in sync or every wait would look like one long
    hold (and the re-acquire after wait would go unrecorded).
    """

    _reentrant = True

    def _release_save(self):
        held_count = self._watcher._note_release_all(self)
        return (self._inner._release_save(), held_count)

    def _acquire_restore(self, token) -> None:
        inner_token, held_count = token
        self._inner._acquire_restore(inner_token)
        self._watcher._note_acquire(self, count=held_count)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


class LockWatcher:
    """Records lock acquisition order and hold times process-wide."""

    def __init__(self, hold_threshold: float | None = None) -> None:
        if hold_threshold is None:
            hold_threshold = float(
                os.environ.get("REPRO_LOCK_HOLD_S", DEFAULT_HOLD_THRESHOLD_S)
            )
        self.hold_threshold = hold_threshold
        self._mutex = _REAL_LOCK()
        self._installed = False
        self._active = False
        self._held = threading.local()
        self._names: dict[int, str] = {}
        self._seq = 0
        #: (holder_lock_id, acquired_lock_id) -> human-readable sample
        self._edges: dict[tuple[int, int], str] = {}
        self._hold_violations: list[HoldViolation] = []

    # -- installation --------------------------------------------------

    def install(self) -> None:
        """Patch the ``threading`` lock factories to produce proxies."""
        if self._installed:
            raise RuntimeError("LockWatcher already installed")
        self._installed = True
        self._active = True

        def make_lock() -> _WatchedLock:
            return _WatchedLock(_REAL_LOCK(), self, self._new_name("Lock"))

        def make_rlock() -> _WatchedRLock:
            return _WatchedRLock(_REAL_RLOCK(), self, self._new_name("RLock"))

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]

    def uninstall(self) -> None:
        """Restore the real factories; existing proxies keep working
        (they forward to their real inner lock) but stop recording."""
        threading.Lock = _REAL_LOCK  # type: ignore[assignment]
        threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
        self._installed = False
        self._active = False

    def watching(self):
        """``with watcher.watching():`` — install for the block only."""
        return _WatchingContext(self)

    def _new_name(self, kind: str) -> str:
        site = _call_site()
        with self._mutex:
            self._seq += 1
            return f"{kind}#{self._seq}({site})"

    # -- recording (called from the proxies) ---------------------------

    def _stack(self) -> list[_HeldEntry]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _note_acquire(self, lock: _WatchedLockBase, count: int = 1) -> None:
        if not self._active:
            return
        stack = self._stack()
        lock_id = id(lock)
        if lock._reentrant:
            for entry in stack:
                if entry.lock_id == lock_id:
                    entry.count += count
                    return
        site = _call_site()
        new_edges = [
            (entry.lock_id, lock_id)
            for entry in stack
            if entry.lock_id != lock_id
        ]
        entry = _HeldEntry(lock_id, time.monotonic(), site)
        entry.count = count
        stack.append(entry)
        if new_edges or lock_id not in self._names:
            thread = threading.current_thread().name
            with self._mutex:
                self._names.setdefault(lock_id, lock._name)
                for edge in new_edges:
                    self._edges.setdefault(
                        edge, f"{thread} at {site}"
                    )

    def _note_release(self, lock: _WatchedLockBase) -> None:
        if not self._active:
            return
        stack = self._stack()
        lock_id = id(lock)
        for index in range(len(stack) - 1, -1, -1):
            entry = stack[index]
            if entry.lock_id == lock_id:
                entry.count -= 1
                if entry.count == 0:
                    del stack[index]
                    self._end_span(lock, entry)
                return

    def _note_release_all(self, lock: _WatchedLockBase) -> int:
        """Drop every recursion level (``Condition.wait``); returns the
        count so ``_acquire_restore`` can put it back."""
        if not self._active:
            return 1
        stack = self._stack()
        lock_id = id(lock)
        for index in range(len(stack) - 1, -1, -1):
            entry = stack[index]
            if entry.lock_id == lock_id:
                del stack[index]
                self._end_span(lock, entry)
                return entry.count
        return 1

    def _end_span(self, lock: _WatchedLockBase, entry: _HeldEntry) -> None:
        seconds = time.monotonic() - entry.since
        if seconds >= self.hold_threshold:
            violation = HoldViolation(
                lock=lock._name,
                seconds=seconds,
                thread=threading.current_thread().name,
                site=entry.site,
            )
            with self._mutex:
                self._hold_violations.append(violation)

    # -- reporting -----------------------------------------------------

    def edges(self) -> dict[tuple[str, str], str]:
        """Acquisition-order edges as ``(holder, acquired) -> sample``."""
        with self._mutex:
            return {
                (self._names[a], self._names[b]): sample
                for (a, b), sample in self._edges.items()
            }

    def cycles(self) -> list[list[str]]:
        """Cycles in the acquisition-order graph, as lock-name lists."""
        with self._mutex:
            adjacency: dict[int, list[int]] = {}
            for a, b in self._edges:
                adjacency.setdefault(a, []).append(b)
            names = dict(self._names)
        cycles: list[list[str]] = []
        visited: set[int] = set()
        path: list[int] = []
        on_path: set[int] = set()

        def visit(node: int) -> None:
            if node in on_path:
                start = path.index(node)
                cycles.append([names[n] for n in path[start:]] + [names[node]])
                return
            if node in visited:
                return
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for nxt in adjacency.get(node, ()):
                visit(nxt)
            path.pop()
            on_path.discard(node)

        for node in list(adjacency):
            visit(node)
        return cycles

    def hold_violations(self) -> list[HoldViolation]:
        with self._mutex:
            return list(self._hold_violations)

    def report(self) -> str:
        """Human-readable summary of every recorded hazard ('' if clean)."""
        lines: list[str] = []
        cycles = self.cycles()
        if cycles:
            lines.append("lock-order cycles (deadlock hazards):")
            edge_samples = self.edges()
            for cycle in cycles:
                lines.append("  " + " -> ".join(cycle))
                for a, b in zip(cycle, cycle[1:]):
                    sample = edge_samples.get((a, b))
                    if sample:
                        lines.append(f"    {a} -> {b}: {sample}")
        holds = self.hold_violations()
        if holds:
            lines.append(
                f"lock holds over {self.hold_threshold:.1f}s:"
            )
            lines.extend(f"  {violation.render()}" for violation in holds)
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`LockWatchError` if any hazard was recorded."""
        report = self.report()
        if report:
            raise LockWatchError(f"lockwatch recorded hazards:\n{report}")


class _WatchingContext:
    def __init__(self, watcher: LockWatcher) -> None:
        self._watcher = watcher

    def __enter__(self) -> LockWatcher:
        self._watcher.install()
        return self._watcher

    def __exit__(self, *exc_info) -> None:
        self._watcher.uninstall()
