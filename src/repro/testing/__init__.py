"""Test-only instrumentation: lock auditing, memory auditing, chaos."""

from repro.testing.chaos import (
    ChaosProxy,
    clear_faults,
    fault,
    fire,
    install_fault,
    remove_fault,
)
from repro.testing.lockwatch import (
    HoldViolation,
    LockWatchError,
    LockWatcher,
)

__all__ = [
    "ChaosProxy",
    "HoldViolation",
    "LockWatchError",
    "LockWatcher",
    "clear_faults",
    "fault",
    "fire",
    "install_fault",
    "remove_fault",
]
