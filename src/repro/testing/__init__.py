"""Test-only instrumentation (runtime lock-order auditing)."""

from repro.testing.lockwatch import (
    HoldViolation,
    LockWatchError,
    LockWatcher,
)

__all__ = ["HoldViolation", "LockWatchError", "LockWatcher"]
