"""Runtime numeric-memory auditor (the dynamic half of arraylint).

:mod:`tools.arraylint` checks what is lexically visible in one file;
this module checks what actually happens at run time, mirroring how
:mod:`repro.testing.lockwatch` backs up reprolint:

* **contract enforcement** — inside :meth:`MemWatcher.watching`, every
  ``@array_contract`` declaration (:mod:`repro.vectordb.contracts`) is
  validated, so a float64 array or mis-shaped batch reaching a public
  entrypoint fails the test at the entrypoint.
* **allocation accounting** — :mod:`tracemalloc` peaks, measured
  relative to the watcher's entry baseline. The mmap cold-start test
  asserts that loading a collection with ``mmap=True`` allocates far
  less than the vector matrix it maps; if a load-path ``.astype``
  copy regresses, the peak jumps by the matrix size and the test
  fails.
* **sharing probes** — :func:`numpy.shares_memory` assertions that a
  "zero-copy" path really returned a view of the buffer it claims to
  wrap.
* **bench fields** — :meth:`MemWatcher.stats` / :func:`rss_bytes`
  feed ``peak_alloc_bytes``/``rss_bytes`` into the ``BENCH_*.json``
  artifacts so the memory trajectory is recorded next to latency.

Tests opt in via the ``memwatch`` fixture in ``tests/conftest.py``::

    def test_mmap_stays_cold(memwatch, tmp_path):
        ...
        loaded = load_collection(tmp_path, mmap=True)
        memwatch.assert_peak_below(matrix_nbytes // 2, "mmap load")
"""

from __future__ import annotations

import contextlib
import tracemalloc
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.vectordb import contracts

__all__ = ["MemWatchError", "MemWatcher", "memory_stats", "rss_bytes"]


class MemWatchError(AssertionError):
    """A numeric-memory invariant was violated at run time."""


def rss_bytes() -> int | None:
    """Current resident set size, or ``None`` where unavailable.

    Reads ``/proc/self/status`` (Linux); falls back to the peak RSS
    from :func:`resource.getrusage` elsewhere. Benches record whichever
    is available — the field is a trajectory, not a hard gate.
    """
    try:
        status = Path("/proc/self/status").read_text(encoding="ascii")
    except OSError:
        status = ""
    for line in status.splitlines():
        if line.startswith("VmRSS:"):
            return int(line.split()[1]) * 1024
    try:
        import resource
    except ImportError:
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class MemWatcher:
    """Tracks peak temporary allocation and enforces array contracts.

    One watcher covers one :meth:`watching` span; peaks are relative to
    the allocation level at entry, so a watcher dropped around a single
    operation measures *that operation's* temporary footprint even when
    gigabytes are already live.
    """

    def __init__(self, enforce_contracts: bool = True) -> None:
        self._enforce_contracts = enforce_contracts
        self._baseline: int | None = None
        self._final_peak: int | None = None
        self._active = False

    @contextlib.contextmanager
    def watching(self) -> Iterator["MemWatcher"]:
        """Measure allocations (and enforce contracts) inside the block."""
        started = not tracemalloc.is_tracing()
        if started:
            tracemalloc.start()
        self._baseline = tracemalloc.get_traced_memory()[0]
        tracemalloc.reset_peak()
        previous = (
            contracts.set_enforcement(True)
            if self._enforce_contracts else None
        )
        self._active = True
        self._final_peak = None
        try:
            yield self
        finally:
            _, peak = tracemalloc.get_traced_memory()
            self._final_peak = max(0, peak - self._baseline)
            self._active = False
            if previous is not None:
                contracts.set_enforcement(previous)
            if started:
                tracemalloc.stop()

    def peak_alloc_bytes(self) -> int:
        """Peak allocation above the entry baseline (live or final)."""
        if self._active:
            _, peak = tracemalloc.get_traced_memory()
            return max(0, peak - (self._baseline or 0))
        if self._final_peak is None:
            raise MemWatchError(
                "peak_alloc_bytes() before watching() ran"
            )
        return self._final_peak

    def assert_peak_below(self, limit_bytes: int, what: str = "") -> None:
        """Fail if the watched span allocated ``limit_bytes`` or more."""
        peak = self.peak_alloc_bytes()
        if peak >= limit_bytes:
            label = what or "watched span"
            raise MemWatchError(
                f"{label}: peak temporary allocation {peak} B >= "
                f"budget {limit_bytes} B — a hot path materialized "
                "memory it should have mapped or reused"
            )

    @staticmethod
    def assert_shares_memory(
        a: np.ndarray, b: np.ndarray, what: str = ""
    ) -> None:
        """Fail unless ``a`` and ``b`` overlap in memory (zero-copy)."""
        if not np.shares_memory(a, b):
            label = what or "arrays"
            raise MemWatchError(
                f"{label}: expected a zero-copy view but the buffers "
                "are distinct — something materialized a copy"
            )

    @staticmethod
    def assert_distinct_memory(
        a: np.ndarray, b: np.ndarray, what: str = ""
    ) -> None:
        """Fail if ``a`` and ``b`` share memory (an aliasing hazard)."""
        if np.shares_memory(a, b):
            label = what or "arrays"
            raise MemWatchError(
                f"{label}: buffers alias — mutating one corrupts the "
                "other"
            )

    def stats(self) -> dict:
        """Memory fields for ``BENCH_*.json`` artifacts."""
        return {
            "peak_alloc_bytes": (
                self._final_peak if self._final_peak is not None
                else (self.peak_alloc_bytes() if self._active else None)
            ),
            "rss_bytes": rss_bytes(),
        }


def memory_stats() -> dict:
    """Process-level memory fields for benches without a watcher."""
    return {"rss_bytes": rss_bytes()}
