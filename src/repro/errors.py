"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without
accidentally swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SchemaError(ReproError):
    """A record does not conform to the geo-textual object schema."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or saved."""


class CollectionError(ReproError):
    """A vector-database collection operation failed."""


class CollectionNotFound(CollectionError):
    """The named collection does not exist."""


class CollectionExists(CollectionError):
    """A collection with the given name already exists."""


class PointNotFound(CollectionError):
    """The requested point id is not present in the collection."""


class DimensionMismatch(CollectionError):
    """A vector's dimensionality does not match the collection's."""


class FilterError(ReproError):
    """A payload filter expression is malformed."""


class IndexError_(ReproError):
    """A spatial or vector index operation failed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class LLMError(ReproError):
    """A simulated LLM call failed."""


class UnknownModelError(LLMError):
    """The requested LLM or embedding model id is not registered."""


class PromptError(LLMError):
    """A prompt could not be understood by the simulated LLM."""


class ParseError(LLMError):
    """An LLM response could not be parsed into the expected structure."""


class QueryError(ReproError):
    """A spatial keyword query is malformed or cannot be executed."""


class DeadlineExceeded(ReproError):
    """A request's deadline budget expired before the work finished.

    Raised at the serving layer's choke points (HTTP dispatch, coalescer
    enqueue/dispatch, shard fan-out) so over-budget work is abandoned
    early instead of occupying a worker. Maps to HTTP 504.
    """


class ServerOverloaded(ReproError):
    """The serving layer shed this request to protect the queue.

    Raised when a bounded coalescer queue (``max_pending``) or the HTTP
    server's in-flight cap (``max_inflight``) is saturated. The request
    was never enqueued; callers should back off and retry. Maps to HTTP
    429 with a ``Retry-After`` header.
    """


class EvaluationError(ReproError):
    """An evaluation/benchmark harness step failed."""
