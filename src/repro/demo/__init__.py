"""Demo UI (paper Figure 3): SVG map rendering and HTML demo app."""

from repro.demo.app import DemoContext, DemoServer, build_demo_page
from repro.demo.render import Marker, build_markers, render_map_svg

__all__ = [
    "DemoContext",
    "DemoServer",
    "Marker",
    "build_demo_page",
    "build_markers",
    "render_map_svg",
]
