"""SVG map rendering for the demo UI (paper Figure 3, offline).

The paper's demo shows query answers on a map: green markers for POIs the
LLM recommends, blue for POIs fetched by embedding similarity but filtered
out by the LLM. With no tile server available offline, the map is a clean
SVG scatter over the query range with the same marker semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import QueryResult
from repro.data.dataset import Dataset
from repro.geo.bbox import BoundingBox

_GREEN = "#2e8b57"
_BLUE = "#4169e1"
_GRAY = "#c9c9c9"


@dataclass(frozen=True)
class Marker:
    """One map marker."""

    x: float
    y: float
    color: str
    label: str
    radius: float


def _project(
    lat: float, lon: float, box: BoundingBox, width: int, height: int
) -> tuple[float, float]:
    span_lat = box.max_lat - box.min_lat or 1e-9
    span_lon = box.max_lon - box.min_lon or 1e-9
    x = (lon - box.min_lon) / span_lon * width
    y = (1.0 - (lat - box.min_lat) / span_lat) * height
    return x, y


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def build_markers(
    result: QueryResult,
    dataset: Dataset,
    box: BoundingBox,
    width: int = 640,
    height: int = 640,
    include_background: bool = True,
) -> list[Marker]:
    """Markers for a query result: green/blue/background-gray."""
    markers: list[Marker] = []
    shown = {e.business_id for e in result.entries} | {
        e.business_id for e in result.filtered_out
    }
    if include_background:
        for record in dataset.in_range(box):
            if record.business_id in shown:
                continue
            x, y = _project(record.latitude, record.longitude, box, width, height)
            markers.append(Marker(x, y, _GRAY, record.name, 2.5))
    for entry in result.filtered_out:
        record = dataset.get(entry.business_id)
        x, y = _project(record.latitude, record.longitude, box, width, height)
        markers.append(Marker(x, y, _BLUE, record.name, 5.5))
    for entry in result.entries:
        record = dataset.get(entry.business_id)
        x, y = _project(record.latitude, record.longitude, box, width, height)
        markers.append(Marker(x, y, _GREEN, record.name, 7.0))
    return markers


def render_map_svg(
    result: QueryResult,
    dataset: Dataset,
    box: BoundingBox,
    width: int = 640,
    height: int = 640,
) -> str:
    """Render the query-result map as a standalone SVG document."""
    markers = build_markers(result, dataset, box, width, height)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#f4f1ea" '
        'stroke="#999"/>',
    ]
    # Light grid for map texture.
    for i in range(1, 8):
        gx = width * i / 8
        gy = height * i / 8
        parts.append(
            f'<line x1="{gx:.0f}" y1="0" x2="{gx:.0f}" y2="{height}" '
            'stroke="#e3ded2" stroke-width="1"/>'
        )
        parts.append(
            f'<line x1="0" y1="{gy:.0f}" x2="{width}" y2="{gy:.0f}" '
            'stroke="#e3ded2" stroke-width="1"/>'
        )
    for marker in markers:
        parts.append(
            f'<circle cx="{marker.x:.1f}" cy="{marker.y:.1f}" '
            f'r="{marker.radius}" fill="{marker.color}" stroke="white" '
            f'stroke-width="1"><title>{_escape(marker.label)}</title></circle>'
        )
    # Legend.
    parts.append(
        f'<g font-family="sans-serif" font-size="12">'
        f'<rect x="10" y="{height - 64}" width="200" height="54" '
        'fill="white" opacity="0.85" stroke="#999"/>'
        f'<circle cx="24" cy="{height - 48}" r="6" fill="{_GREEN}"/>'
        f'<text x="36" y="{height - 44}">Recommended by the LLM</text>'
        f'<circle cx="24" cy="{height - 28}" r="5" fill="{_BLUE}"/>'
        f'<text x="36" y="{height - 24}">Fetched, filtered out by LLM</text>'
        "</g>"
    )
    parts.append("</svg>")
    return "\n".join(parts)
