"""The SemaSK demo (paper §5) as a static HTML page and a tiny HTTP app.

Mirrors the Figure-3 UI: a user panel showing the selected neighbourhood
and query sentence, a map view with green (recommended) and blue (fetched
but filtered) markers, the top recommendation's detail card with the LLM's
reason, and the full result list. :func:`build_demo_page` renders it all
into one self-contained HTML file; :class:`DemoServer` serves it with a
live query box using only the standard library.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, HTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.pipeline import SemaSK
from repro.core.query import SpatialKeywordQuery
from repro.core.results import QueryResult
from repro.data.dataset import Dataset
from repro.demo.render import render_map_svg
from repro.geo.bbox import BoundingBox
from repro.geo.geocoder import ReverseGeocoder

_PAGE_STYLE = """
body { font-family: 'Segoe UI', sans-serif; margin: 0; background: #fafafa;
       color: #222; }
header { background: #214d3c; color: white; padding: 14px 24px; }
header h1 { margin: 0; font-size: 20px; }
.panel { background: white; border: 1px solid #ddd; border-radius: 8px;
         padding: 16px; margin: 12px; }
.layout { display: flex; flex-wrap: wrap; align-items: flex-start; }
.detail { flex: 1 1 260px; }
.map { flex: 0 0 auto; }
.query { font-style: italic; color: #333; }
.poi { border-bottom: 1px solid #eee; padding: 8px 0; }
.poi:last-child { border-bottom: none; }
.name { font-weight: 600; }
.reason { color: #555; font-size: 14px; }
.badge { display: inline-block; border-radius: 10px; padding: 1px 8px;
         font-size: 12px; color: white; margin-left: 6px; }
.badge.green { background: #2e8b57; } .badge.blue { background: #4169e1; }
.timing { color: #777; font-size: 13px; }
"""


@dataclass
class DemoContext:
    """Everything the demo needs to answer queries for one city."""

    system: SemaSK
    dataset: Dataset
    geocoder: ReverseGeocoder
    city_code: str
    default_neighborhood: str
    default_query: str
    range_km: float = 5.0

    def run(self, neighborhood: str, query_text: str) -> tuple[QueryResult, BoundingBox]:
        """Answer a query centred on the named neighbourhood."""
        center = self.geocoder.neighborhood_center(self.city_code, neighborhood)
        query = SpatialKeywordQuery.around(
            center, query_text, self.range_km, self.range_km
        )
        return self.system.query(query), query.range


def build_demo_page(
    context: DemoContext,
    neighborhood: str | None = None,
    query_text: str | None = None,
    interactive: bool = False,
) -> str:
    """Render the full demo page for one query."""
    neighborhood = neighborhood or context.default_neighborhood
    query_text = query_text or context.default_query
    result, box = context.run(neighborhood, query_text)
    svg = render_map_svg(result, context.dataset, box)

    top_detail = "<p>No POI was recommended for this query.</p>"
    if result.entries:
        top = result.entries[0]
        record = context.dataset.get(top.business_id)
        top_detail = (
            f"<p class='name'>{html.escape(top.name)}</p>"
            f"<p>{html.escape(record.address)}, "
            f"{html.escape(record.neighborhood)}</p>"
            f"<p>{html.escape(', '.join(record.categories))} &middot; "
            f"{record.stars} stars</p>"
            f"<p class='reason'>{html.escape(top.reason)}</p>"
        )

    rows = []
    for entry in result.entries:
        record = context.dataset.get(entry.business_id)
        rows.append(
            "<div class='poi'><span class='name'>"
            f"{html.escape(entry.name)}</span>"
            "<span class='badge green'>recommended</span>"
            f"<div>{html.escape(', '.join(record.categories))} &middot; "
            f"{record.stars} stars &middot; "
            f"{html.escape(record.neighborhood)}</div>"
            f"<div class='reason'>{html.escape(entry.reason)}</div></div>"
        )
    for entry in result.filtered_out:
        rows.append(
            "<div class='poi'><span class='name'>"
            f"{html.escape(entry.name)}</span>"
            "<span class='badge blue'>filtered out</span>"
            f"<div class='reason'>{html.escape(entry.reason)}</div></div>"
        )

    form = ""
    if interactive:
        options = "".join(
            f"<option{' selected' if n == neighborhood else ''}>"
            f"{html.escape(n)}</option>"
            for n in context.geocoder.neighborhoods_of(context.city_code)
        )
        form = (
            "<form class='panel' method='get' action='/'>"
            f"<label>Region: <select name='neighborhood'>{options}"
            "</select></label> "
            f"<label>Query: <input name='q' size='70' "
            f"value='{html.escape(query_text, quote=True)}'></label> "
            "<button type='submit'>Search</button></form>"
        )

    timings = result.timings
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>SemaSK Demo</title>
<style>{_PAGE_STYLE}</style></head>
<body>
<header><h1>SemaSK &mdash; semantics-aware spatial keyword search</h1></header>
{form}
<div class="panel">
  <div><strong>Region:</strong> {html.escape(neighborhood)}</div>
  <div class="query"><strong>Query:</strong> &ldquo;{html.escape(query_text)}&rdquo;</div>
  <div class="timing">filtering {timings.filter_s * 1000:.0f} ms &middot;
  LLM refinement (modelled) {timings.refine_modeled_s:.1f} s &middot;
  {result.candidates_considered} candidates considered</div>
</div>
<div class="layout">
  <div class="panel detail"><h3>Top recommendation</h3>{top_detail}</div>
  <div class="panel map">{svg}</div>
</div>
<div class="panel"><h3>All results</h3>{''.join(rows) or '<p>none</p>'}</div>
</body></html>"""


class DemoServer:
    """A minimal stdlib HTTP server around :func:`build_demo_page`."""

    def __init__(self, context: DemoContext, port: int = 8808) -> None:
        self._context = context
        self._port = port

    def make_server(self) -> HTTPServer:
        """Build the HTTP server (caller controls serve_forever)."""
        context = self._context

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                params = parse_qs(urlparse(self.path).query)
                neighborhood = params.get(
                    "neighborhood", [context.default_neighborhood]
                )[0]
                query_text = params.get("q", [context.default_query])[0]
                try:
                    page = build_demo_page(
                        context, neighborhood, query_text, interactive=True
                    )
                    status = 200
                except Exception as exc:  # reprolint: last-resort -- rendered as the 500 error page
                    page = f"<h1>Error</h1><pre>{html.escape(str(exc))}</pre>"
                    status = 500
                body = page.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "text/html; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                """Silence request logging."""

        return HTTPServer(("127.0.0.1", self._port), Handler)

    def serve_forever(self) -> None:
        """Run until interrupted (used by examples/demo script)."""
        server = self.make_server()
        print(f"SemaSK demo at http://127.0.0.1:{self._port}/")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
