"""Vocabulary: a bidirectional token <-> integer-id mapping.

Shared by the TF-IDF vectorizer, the LDA sampler, and the inverted index so
that term ids are consistent wherever sparse representations are exchanged.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator


class Vocabulary:
    """A growable mapping between tokens and dense integer ids.

    Ids are assigned in first-seen order, so building a vocabulary from the
    same corpus in the same order is deterministic.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._frequencies: Counter[str] = Counter()
        for token in tokens:
            self.add(token)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def add(self, token: str) -> int:
        """Add ``token`` (idempotent) and return its id."""
        self._frequencies[token] += 1
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def add_document(self, tokens: Iterable[str]) -> list[int]:
        """Add every token of a document; return the id sequence."""
        return [self.add(t) for t in tokens]

    def id_of(self, token: str) -> int | None:
        """Return the id of ``token`` or ``None`` when unknown."""
        return self._token_to_id.get(token)

    def token_of(self, token_id: int) -> str:
        """Return the token with id ``token_id``.

        Raises :class:`IndexError` for out-of-range ids.
        """
        return self._id_to_token[token_id]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map ``tokens`` to ids, silently dropping unknown tokens."""
        ids = []
        for token in tokens:
            token_id = self._token_to_id.get(token)
            if token_id is not None:
                ids.append(token_id)
        return ids

    def frequency(self, token: str) -> int:
        """Number of times ``token`` was added (corpus frequency)."""
        return self._frequencies[token]

    def prune(self, min_frequency: int = 1, max_size: int | None = None) -> "Vocabulary":
        """Return a new vocabulary keeping frequent tokens only.

        Tokens are kept when seen at least ``min_frequency`` times; when
        ``max_size`` is given, only the most frequent ``max_size`` tokens
        survive (ties broken by first-seen order, keeping determinism).
        """
        candidates = [
            t for t in self._id_to_token if self._frequencies[t] >= min_frequency
        ]
        if max_size is not None and len(candidates) > max_size:
            candidates.sort(
                key=lambda t: (-self._frequencies[t], self._token_to_id[t])
            )
            candidates = candidates[:max_size]
            candidates.sort(key=lambda t: self._token_to_id[t])
        pruned = Vocabulary()
        for token in candidates:
            pruned._token_to_id[token] = len(pruned._id_to_token)
            pruned._id_to_token.append(token)
            pruned._frequencies[token] = self._frequencies[token]
        return pruned
