"""Tokenization and text normalization.

Every component in the library (baselines, embeddings, the simulated LLM)
goes through this one tokenizer so that lexical comparisons are consistent.
The tokenizer is deliberately simple — lowercasing, punctuation splitting,
apostrophe folding — because the paper's baselines (TF-IDF, LDA) operate on
plain bag-of-words input.
"""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Iterable, Iterator

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_WS_RE = re.compile(r"\s+")


def normalize(text: str) -> str:
    """Lowercase ``text``, strip accents, and collapse whitespace.

    >>> normalize("  Café   du  Monde ")
    'cafe du monde'
    """
    decomposed = unicodedata.normalize("NFKD", text)
    ascii_text = decomposed.encode("ascii", "ignore").decode("ascii")
    return _WS_RE.sub(" ", ascii_text.lower()).strip()


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase word tokens.

    Apostrophe suffixes are folded into the preceding token and the
    possessive marker is dropped (``"mike's" -> "mikes"``), matching how a
    user query such as "Mike's Ice Cream" should match the stored name.

    >>> tokenize("Mike's Ice-Cream, est. 1998!")
    ['mikes', 'ice', 'cream', 'est', '1998']
    """
    tokens = []
    for match in _TOKEN_RE.finditer(normalize(text)):
        token = match.group(0).replace("'", "")
        if token:
            tokens.append(token)
    return tokens


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation.

    Used by the tip summarizer to score candidate sentences. The splitter
    is heuristic (no abbreviation handling) which is adequate for the short,
    informal review tips it is applied to.
    """
    parts = re.split(r"(?<=[.!?])\s+", text.strip())
    return [p.strip() for p in parts if p.strip()]


def ngrams(tokens: list[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield the ``n``-grams of ``tokens`` in order.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])


def char_ngrams(token: str, n: int = 3) -> list[str]:
    """Return padded character ``n``-grams of ``token``.

    The token is padded with ``#`` so that prefixes/suffixes are
    distinguishable; used by the hashed-ngram embedder for robustness to
    morphological variation.

    >>> char_ngrams("cafe", 3)
    ['#ca', 'caf', 'afe', 'fe#']
    """
    padded = f"#{token}#"
    if len(padded) <= n:
        return [padded]
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]


def count_tokens(texts: Iterable[str]) -> int:
    """Total token count over ``texts`` (used for dataset statistics)."""
    return sum(len(tokenize(t)) for t in texts)
