"""Similarity measures over sparse and dense text representations."""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np


def cosine_sparse(a: Mapping[int, float], b: Mapping[int, float]) -> float:
    """Cosine similarity between two sparse ``{term_id: weight}`` vectors.

    Returns 0.0 when either vector is empty or all-zero.
    """
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(w * b[t] for t, w in a.items() if t in b)
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(sum(w * w for w in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def cosine_dense(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two dense vectors (0.0 on zero norm)."""
    norm = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if norm == 0.0:
        return 0.0
    return float(np.dot(a, b)) / norm


def jaccard(a: set[str] | frozenset[str], b: set[str] | frozenset[str]) -> float:
    """Jaccard similarity of two token sets (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def overlap_coefficient(a: set[str], b: set[str]) -> float:
    """Szymkiewicz–Simpson overlap: |a ∩ b| / min(|a|, |b|)."""
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def dice(a: set[str], b: set[str]) -> float:
    """Sørensen–Dice coefficient of two token sets."""
    if not a and not b:
        return 1.0
    total = len(a) + len(b)
    if total == 0:
        return 1.0
    return 2.0 * len(a & b) / total


def jensen_shannon(p: Sequence[float], q: Sequence[float]) -> float:
    """Jensen–Shannon divergence between two discrete distributions.

    Used to compare LDA topic distributions; symmetric and bounded by
    ``log(2)`` (natural log base). Inputs need not be normalized.
    """
    p_arr = np.asarray(p, dtype=np.float64)
    q_arr = np.asarray(q, dtype=np.float64)
    if p_arr.shape != q_arr.shape:
        raise ValueError(
            f"distribution shapes differ: {p_arr.shape} vs {q_arr.shape}"
        )
    p_sum, q_sum = p_arr.sum(), q_arr.sum()
    if p_sum <= 0 or q_sum <= 0:
        return math.log(2.0)
    p_arr = p_arr / p_sum
    q_arr = q_arr / q_sum
    m = 0.5 * (p_arr + q_arr)

    def _kl(x: np.ndarray, y: np.ndarray) -> float:
        mask = x > 0
        return float(np.sum(x[mask] * np.log(x[mask] / y[mask])))

    return 0.5 * _kl(p_arr, m) + 0.5 * _kl(q_arr, m)


def jensen_shannon_similarity(p: Sequence[float], q: Sequence[float]) -> float:
    """Similarity in [0, 1] derived from the JS divergence (1 = identical)."""
    return 1.0 - jensen_shannon(p, q) / math.log(2.0)
