"""Text processing utilities shared by every retrieval component."""

from repro.text.similarity import (
    cosine_dense,
    cosine_sparse,
    dice,
    jaccard,
    jensen_shannon,
    jensen_shannon_similarity,
    overlap_coefficient,
)
from repro.text.stemming import stem, stem_tokens
from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.text.tokenize import (
    char_ngrams,
    count_tokens,
    ngrams,
    normalize,
    sentences,
    tokenize,
)
from repro.text.vocabulary import Vocabulary

__all__ = [
    "STOPWORDS",
    "Vocabulary",
    "char_ngrams",
    "cosine_dense",
    "cosine_sparse",
    "count_tokens",
    "dice",
    "is_stopword",
    "jaccard",
    "jensen_shannon",
    "jensen_shannon_similarity",
    "ngrams",
    "normalize",
    "overlap_coefficient",
    "remove_stopwords",
    "sentences",
    "stem",
    "stem_tokens",
    "tokenize",
]
