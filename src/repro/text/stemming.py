"""A from-scratch implementation of the Porter stemming algorithm.

Porter, M.F. 1980. "An algorithm for suffix stripping." *Program* 14(3).

The stemmer is used by the TF-IDF and LDA baselines so that trivially
inflected forms ("restaurants" vs "restaurant") match lexically; the
semantic gap the paper studies is then due to genuine vocabulary mismatch
rather than morphology.
"""

from __future__ import annotations

from functools import lru_cache

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's *m*: the number of vowel-consonant sequences in ``stem``."""
    m = 0
    prev_vowel = False
    for i in range(len(stem)):
        if _is_consonant(stem, i):
            if prev_vowel:
                m += 1
            prev_vowel = False
        else:
            prev_vowel = True
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word, flag = word[:-2], True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word, flag = word[:-3], True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_SUFFIXES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_SUFFIXES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _step2(word: str) -> str:
    for suffix, replacement in _STEP2_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 0:
                return stem + replacement
            return word
    return word


def _step3(word: str) -> str:
    for suffix, replacement in _STEP3_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 0:
                return stem + replacement
            return word
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if suffix == "ion" and not stem.endswith(("s", "t")):
                return word
            if _measure(stem) > 1:
                return stem
            return word
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step5b(word: str) -> str:
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        return word[:-1]
    return word


@lru_cache(maxsize=65536)
def stem(word: str) -> str:
    """Return the Porter stem of ``word`` (expects a lowercase token).

    >>> stem("restaurants")
    'restaur'
    >>> stem("caresses")
    'caress'
    """
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _step2(word)
    word = _step3(word)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word


def stem_tokens(tokens: list[str]) -> list[str]:
    """Stem every token in ``tokens``, preserving order."""
    return [stem(t) for t in tokens]
