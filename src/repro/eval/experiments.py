"""Experiment runners for every table/figure/claim in the paper's §4.

The central artifact is Table 2: F1@10 per city for LDA, TF-IDF,
SemaSK-EM, SemaSK-O1, and SemaSK, plus averages and gains over the best
baseline. :func:`run_table2` reproduces it end to end; the k-sensitivity
and timing claims reuse the same machinery.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.lda import LdaRanker
from repro.baselines.ranker import TextRanker
from repro.baselines.tfidf import TfIdfRanker
from repro.core.pipeline import SemaSK
from repro.core.query import SpatialKeywordQuery
from repro.core.variants import semask, semask_em, semask_o1
from repro.eval.corpus import EvalCorpus, get_corpus
from repro.eval.metrics import f1_at_k, mean, precision_at_k, recall_at_k
from repro.eval.queries import QUERIES_PER_CITY, EvalQuery, EvalQueryBuilder

#: The paper's five test cities, in Table 2 row order.
TABLE2_CITIES: tuple[str, ...] = ("IN", "NS", "PH", "SB", "SL")
#: Table 2 reports k = 10.
TABLE2_K = 10
#: Paper numbers for Table 2 (used in reports for side-by-side comparison).
PAPER_TABLE2: dict[str, dict[str, float]] = {
    "IN": {"LDA": 0.11, "TF-IDF": 0.22, "SemaSK-EM": 0.28, "SemaSK-O1": 0.62, "SemaSK": 0.72},
    "NS": {"LDA": 0.03, "TF-IDF": 0.22, "SemaSK-EM": 0.31, "SemaSK-O1": 0.57, "SemaSK": 0.56},
    "PH": {"LDA": 0.03, "TF-IDF": 0.17, "SemaSK-EM": 0.29, "SemaSK-O1": 0.54, "SemaSK": 0.50},
    "SB": {"LDA": 0.01, "TF-IDF": 0.15, "SemaSK-EM": 0.23, "SemaSK-O1": 0.44, "SemaSK": 0.49},
    "SL": {"LDA": 0.09, "TF-IDF": 0.20, "SemaSK-EM": 0.30, "SemaSK-O1": 0.63, "SemaSK": 0.69},
    "Avg.": {"LDA": 0.05, "TF-IDF": 0.19, "SemaSK-EM": 0.28, "SemaSK-O1": 0.56, "SemaSK": 0.59},
}
#: Column order of Table 2.
TABLE2_SYSTEMS: tuple[str, ...] = (
    "LDA", "TF-IDF", "SemaSK-EM", "SemaSK-O1", "SemaSK",
)


@dataclass
class CityEvaluation:
    """Per-city scores of every system."""

    city_code: str
    n_queries: int
    f1: dict[str, float] = field(default_factory=dict)
    precision: dict[str, float] = field(default_factory=dict)
    recall: dict[str, float] = field(default_factory=dict)


@dataclass
class Table2Result:
    """The reproduced Table 2."""

    k: int
    cities: list[CityEvaluation]
    averages: dict[str, float]
    gains_vs_best_baseline: dict[str, float]
    elapsed_s: float

    def row(self, city_code: str) -> dict[str, float]:
        """F1 row of one city."""
        for city in self.cities:
            if city.city_code == city_code:
                return dict(city.f1)
        raise KeyError(f"no evaluation for city {city_code!r}")

    def to_dict(self) -> dict:
        """JSON-serializable summary (for result files and notebooks)."""
        return {
            "k": self.k,
            "cities": {
                c.city_code: {
                    "n_queries": c.n_queries,
                    "f1": dict(c.f1),
                    "precision": dict(c.precision),
                    "recall": dict(c.recall),
                }
                for c in self.cities
            },
            "averages": dict(self.averages),
            "gains_vs_best_baseline": dict(self.gains_vs_best_baseline),
            "elapsed_s": self.elapsed_s,
        }


def build_test_queries(corpus: EvalCorpus, count: int = QUERIES_PER_CITY) -> list[EvalQuery]:
    """Harvest the vetted query set for a corpus."""
    builder = EvalQueryBuilder(corpus.llm, corpus.ground_truth)
    queries, _ = builder.build_for_city(
        corpus.city, corpus.dataset, count=count, seed=corpus.seed
    )
    return queries


def _evaluate_ranker(
    ranker: TextRanker,
    corpus: EvalCorpus,
    queries: Sequence[EvalQuery],
    k: int,
) -> tuple[list[float], list[float], list[float]]:
    f1s, ps, rs = [], [], []
    for query in queries:
        candidates = corpus.dataset.in_range(query.box)
        ranked = ranker.rank(query.text, candidates, k)
        ids = [r.business_id for r in ranked]
        f1s.append(f1_at_k(ids, query.answer_ids, k))
        ps.append(precision_at_k(ids, query.answer_ids, k))
        rs.append(recall_at_k(ids, query.answer_ids, k))
    return f1s, ps, rs


def _evaluate_semask(
    system: SemaSK,
    queries: Sequence[EvalQuery],
    k: int,
) -> tuple[list[float], list[float], list[float]]:
    f1s, ps, rs = [], [], []
    for query in queries:
        result = system.query(SpatialKeywordQuery(range=query.box, text=query.text))
        ids = result.ids(k)
        f1s.append(f1_at_k(ids, query.answer_ids, k))
        ps.append(precision_at_k(ids, query.answer_ids, k))
        rs.append(recall_at_k(ids, query.answer_ids, k))
    return f1s, ps, rs


def evaluate_city(
    corpus: EvalCorpus,
    queries: Sequence[EvalQuery],
    k: int = TABLE2_K,
    systems: Sequence[str] = TABLE2_SYSTEMS,
    candidate_k: int = TABLE2_K,
    lda_topics: int = 20,
    lda_iterations: int = 20,
) -> CityEvaluation:
    """Score the requested systems on one city's query set."""
    records = list(corpus.dataset)
    evaluation = CityEvaluation(city_code=corpus.city.code, n_queries=len(queries))

    for system_name in systems:
        if system_name == "LDA":
            ranker: TextRanker = LdaRanker(
                n_topics=lda_topics, max_iterations=lda_iterations,
                seed=corpus.seed,
            ).fit(records)
            f1s, ps, rs = _evaluate_ranker(ranker, corpus, queries, k)
        elif system_name == "TF-IDF":
            ranker = TfIdfRanker().fit(records)
            f1s, ps, rs = _evaluate_ranker(ranker, corpus, queries, k)
        elif system_name == "SemaSK-EM":
            f1s, ps, rs = _evaluate_semask(
                semask_em(corpus.prepared, candidate_k=candidate_k), queries, k
            )
        elif system_name == "SemaSK-O1":
            f1s, ps, rs = _evaluate_semask(
                semask_o1(corpus.prepared, llm=corpus.llm, candidate_k=candidate_k),
                queries, k,
            )
        elif system_name == "SemaSK":
            f1s, ps, rs = _evaluate_semask(
                semask(corpus.prepared, llm=corpus.llm, candidate_k=candidate_k),
                queries, k,
            )
        else:
            raise ValueError(f"unknown system {system_name!r}")
        evaluation.f1[system_name] = mean(f1s)
        evaluation.precision[system_name] = mean(ps)
        evaluation.recall[system_name] = mean(rs)
    return evaluation


def run_table2(
    cities: Sequence[str] = TABLE2_CITIES,
    k: int = TABLE2_K,
    queries_per_city: int = QUERIES_PER_CITY,
    seed: int = 7,
    poi_count: int | None = None,
    systems: Sequence[str] = TABLE2_SYSTEMS,
    candidate_k: int = TABLE2_K,
) -> Table2Result:
    """Reproduce Table 2 (optionally downsized for quick runs).

    ``poi_count=None`` uses each city's paper-reported POI count.
    """
    start = time.perf_counter()
    evaluations = []
    for code in cities:
        corpus = get_corpus(code, seed=seed, count=poi_count)
        queries = build_test_queries(corpus, count=queries_per_city)
        evaluations.append(
            evaluate_city(corpus, queries, k=k, systems=systems,
                          candidate_k=candidate_k)
        )

    averages = {
        system: mean([e.f1[system] for e in evaluations])
        for system in systems
    }
    baselines = [s for s in ("LDA", "TF-IDF") if s in averages]
    best_baseline = max(
        (averages[b] for b in baselines), default=0.0
    )
    gains = {}
    if best_baseline > 0:
        for system in systems:
            if system not in ("LDA", "TF-IDF"):
                gains[system] = (
                    (averages[system] - best_baseline) / best_baseline
                )
    return Table2Result(
        k=k,
        cities=evaluations,
        averages=averages,
        gains_vs_best_baseline=gains,
        elapsed_s=time.perf_counter() - start,
    )
