"""Ablation experiments over the design choices DESIGN.md calls out.

* :func:`llm_quality_sweep` — how good does the refinement LLM need to be?
  Sweeps the judgment-noise and lexicon-coverage knobs of the simulated
  model and measures F1@10, interpolating between SemaSK-EM (no LLM) and
  the full system.
* :func:`summary_ablation` — does the tip-summarization step matter?
  Compares embedding retrieval built on summaries vs raw tips.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.pipeline import SemaSK, SemaSKConfig
from repro.core.query import SpatialKeywordQuery
from repro.eval.corpus import EvalCorpus
from repro.eval.metrics import f1_at_k, mean, recall_at_k
from repro.eval.queries import EvalQuery
from repro.llm.models import ModelSpec, register_model
from repro.semantics.lexicon import linear_knowledge


@dataclass(frozen=True)
class LLMQualityPoint:
    """One point of the LLM-quality sweep."""

    label: str
    drop_rate: float
    knowledge_slope: float
    f1: float
    recall: float


def _degraded_model(label: str, drop_rate: float, knowledge_slope: float) -> str:
    """Register (idempotently) a degraded refinement model; returns its id."""
    model_id = f"ablate-{label}"
    register_model(
        ModelSpec(
            model_id=model_id,
            knowledge=linear_knowledge(model_id, 1.0, knowledge_slope),
            drop_rate=drop_rate,
            hallucination_rate=drop_rate,
            usd_per_1m_input=2.5,
            usd_per_1m_output=10.0,
            latency_base_s=1.0,
            latency_per_output_token_s=0.01,
        )
    )
    return model_id


def _score_system(
    system: SemaSK, queries: Sequence[EvalQuery], k: int = 10
) -> tuple[float, float]:
    f1s, recalls = [], []
    for query in queries:
        result = system.query(
            SpatialKeywordQuery(range=query.box, text=query.text)
        )
        ids = result.ids(k)
        f1s.append(f1_at_k(ids, query.answer_ids, k))
        recalls.append(recall_at_k(ids, query.answer_ids, k))
    return mean(f1s), mean(recalls)


def llm_quality_sweep(
    corpus: EvalCorpus,
    queries: Sequence[EvalQuery],
    noise_levels: Sequence[tuple[float, float]] = (
        (0.0, 0.0), (0.05, 0.1), (0.15, 0.3), (0.3, 0.6), (0.5, 0.9),
    ),
) -> list[LLMQualityPoint]:
    """F1@10 as the refinement model degrades.

    ``noise_levels`` pairs are ``(drop_rate, knowledge_slope)``; the first
    entry (0, 0) is an ideal judge, the last a badly degraded one.
    """
    points = []
    for drop_rate, slope in noise_levels:
        label = f"d{drop_rate:g}-s{slope:g}"
        model_id = _degraded_model(label, drop_rate, slope)
        system = SemaSK(
            corpus.prepared,
            SemaSKConfig(refine_model=model_id),
            llm=corpus.llm,
        )
        f1, recall = _score_system(system, queries)
        points.append(
            LLMQualityPoint(
                label=label, drop_rate=drop_rate, knowledge_slope=slope,
                f1=f1, recall=recall,
            )
        )
    return points


def summary_ablation(
    corpus: EvalCorpus, queries: Sequence[EvalQuery]
) -> dict[str, float]:
    """Embedding-retrieval recall with vs without tip summaries.

    Rebuilds document vectors from raw tips (``use_summary=False``) and
    compares in-range recall@10 against the summary-based pipeline,
    isolating the effect of the paper's summarization step.
    """
    import numpy as np

    from repro.vectordb.distance import similarity

    embedder = corpus.prepared.embedder
    results = {}
    for label, use_summary in (("summary", True), ("raw_tips", False)):
        recalls = []
        for query in queries:
            in_range = corpus.dataset.in_range(query.box)
            if not in_range:
                continue
            doc_vectors = np.stack(
                [
                    embedder.embed(r.document_text(use_summary=use_summary))
                    for r in in_range
                ]
            )
            sims = similarity(embedder.embed(query.text), doc_vectors)
            order = np.argsort(-sims)[:10]
            ids = [in_range[i].business_id for i in order]
            recalls.append(recall_at_k(ids, query.answer_ids, 10))
        results[label] = mean(recalls)
    return results
