"""Test-query construction, following the paper's §4 recipe.

Per query: (1) pick a random point in the city; (2) form a 5 km x 5 km
range around it; (3) pick a random POI inside; (4) ask the (simulated)
o1-mini to write a question targeting that POI via the paper's
query-generation prompt; (5) vet the query the way the authors did
manually — reject queries that are trivially keyword-matchable, carry no
recognizable intent, miss their own target, or have degenerate answer
sets; (6) determine the answer set over the range. The paper harvests 30
vetted queries per city; that is the default here too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.keyword import KeywordMatcher
from repro.data.dataset import Dataset
from repro.errors import EvaluationError
from repro.eval.groundtruth import GroundTruthBuilder
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint
from repro.geo.regions import CityRegion
from repro.llm.base import ChatMessage, LLMClient
from repro.llm.prompts import build_querygen_prompt, describe_poi_for_querygen
from repro.semantics.intent import QueryIntent

#: Model the paper uses to write test queries ("for better query quality").
QUERYGEN_MODEL = "o1-mini"
#: Paper: 30 queries harvested per city.
QUERIES_PER_CITY = 30
#: Vetting: answer sets larger than this mean the query is unselective.
MAX_ANSWER_SET = 12
#: Vetting: reject when boolean keyword matching already recalls this
#: fraction of the answer set (the "easily answered by keyword matching"
#: filter the authors applied by hand).
KEYWORD_RECALL_CEILING = 0.34


@dataclass(frozen=True)
class EvalQuery:
    """One vetted evaluation query with its ground truth."""

    city_code: str
    text: str
    box: BoundingBox
    target_id: str
    intent: QueryIntent
    answer_ids: frozenset[str]


@dataclass
class QuerySetStats:
    """Bookkeeping of the construction process (mirrors the paper's yield)."""

    attempts: int = 0
    rejected_no_intent: int = 0
    rejected_misses_target: int = 0
    rejected_answer_set: int = 0
    rejected_keyword_easy: int = 0
    accepted: int = 0


class EvalQueryBuilder:
    """LLM-generated, automatically-vetted test queries."""

    def __init__(
        self,
        llm: LLMClient,
        ground_truth: GroundTruthBuilder,
        range_km: float = 5.0,
        max_attempts_per_query: int = 40,
    ) -> None:
        self._llm = llm
        self._gt = ground_truth
        self._range_km = range_km
        self._max_attempts = max_attempts_per_query

    def _generate_text(self, dataset: Dataset, target_id: str) -> str:
        record = dataset.get(target_id)
        information = describe_poi_for_querygen(record.attributes())
        prompt = build_querygen_prompt(information)
        completion = self._llm.chat(QUERYGEN_MODEL, [ChatMessage("user", prompt)])
        return completion.content.strip()

    def _keyword_easy(
        self, dataset: Dataset, box: BoundingBox, text: str,
        answers: frozenset[str],
    ) -> bool:
        matcher = KeywordMatcher(match_all=True)
        in_range = dataset.in_range(box)
        hits = matcher.rank(text, in_range, k=len(in_range) or 1)
        found = {h.business_id for h in hits} & answers
        return len(found) > KEYWORD_RECALL_CEILING * len(answers)

    def build_for_city(
        self,
        city: CityRegion,
        dataset: Dataset,
        count: int = QUERIES_PER_CITY,
        seed: int = 7,
    ) -> tuple[list[EvalQuery], QuerySetStats]:
        """Harvest ``count`` vetted queries for one city."""
        if len(dataset) == 0:
            raise EvaluationError(f"dataset for {city.code} is empty")
        rng = random.Random(f"queries:{seed}:{city.code}")
        bounds = city.bounds
        queries: list[EvalQuery] = []
        stats = QuerySetStats()
        budget = count * self._max_attempts
        while len(queries) < count and stats.attempts < budget:
            stats.attempts += 1
            lat = rng.uniform(bounds.min_lat, bounds.max_lat)
            lon = rng.uniform(bounds.min_lon, bounds.max_lon)
            box = BoundingBox.around(
                GeoPoint(lat, lon), self._range_km, self._range_km
            )
            in_range = dataset.in_range(box)
            if not in_range:
                continue
            target = rng.choice(in_range)
            text = self._generate_text(dataset, target.business_id)

            intent = self._gt.intent_of(text)
            if intent is None:
                stats.rejected_no_intent += 1
                continue
            answers = self._gt.answer_set(dataset, box, intent)
            if target.business_id not in answers:
                stats.rejected_misses_target += 1
                continue
            if not 1 <= len(answers) <= MAX_ANSWER_SET:
                stats.rejected_answer_set += 1
                continue
            if self._keyword_easy(dataset, box, text, answers):
                stats.rejected_keyword_easy += 1
                continue
            queries.append(
                EvalQuery(
                    city_code=city.code,
                    text=text,
                    box=box,
                    target_id=target.business_id,
                    intent=intent,
                    answer_ids=answers,
                )
            )
            stats.accepted += 1
        if len(queries) < count:
            raise EvaluationError(
                f"could only harvest {len(queries)}/{count} queries for "
                f"{city.code} after {stats.attempts} attempts "
                f"(rejections: {stats})"
            )
        return queries, stats
