"""Query-time measurement (the paper's timing claims in §4).

The paper reports ~0.04 s for the filtering step and 2–3 s per query for
the LLM refinement. Here, filtering time is *measured* on our substrate
while refinement is split into measured simulated-LLM compute and the
*modelled* hosted-LLM latency (what a user of the real system would wait).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.pipeline import SemaSK
from repro.core.query import SpatialKeywordQuery
from repro.eval.metrics import mean
from repro.eval.queries import EvalQuery


@dataclass(frozen=True)
class TimingReport:
    """Average per-query timings of one system over a query set."""

    system: str
    n_queries: int
    avg_filter_s: float
    avg_refine_compute_s: float
    avg_refine_modeled_s: float

    @property
    def avg_total_modeled_s(self) -> float:
        """Filtering plus modelled LLM latency."""
        return self.avg_filter_s + self.avg_refine_modeled_s


def measure_query_times(
    system: SemaSK, queries: Sequence[EvalQuery]
) -> TimingReport:
    """Run every query once and average the stage timings."""
    filter_times, compute_times, modeled_times = [], [], []
    for query in queries:
        result = system.query(
            SpatialKeywordQuery(range=query.box, text=query.text)
        )
        filter_times.append(result.timings.filter_s)
        compute_times.append(result.timings.refine_compute_s)
        modeled_times.append(result.timings.refine_modeled_s)
    return TimingReport(
        system=system.name,
        n_queries=len(filter_times),
        avg_filter_s=mean(filter_times),
        avg_refine_compute_s=mean(compute_times),
        avg_refine_modeled_s=mean(modeled_times),
    )
