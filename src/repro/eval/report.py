"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.eval.experiments import (
    PAPER_TABLE2,
    TABLE2_SYSTEMS,
    Table2Result,
)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_table2(
    result: Table2Result,
    paper: Mapping[str, Mapping[str, float]] | None = PAPER_TABLE2,
) -> str:
    """Render the reproduced Table 2, optionally beside the paper's numbers."""
    systems = [s for s in TABLE2_SYSTEMS if s in result.averages]
    headers = ["City"] + list(systems)
    rows: list[list[object]] = []
    for city in result.cities:
        rows.append(
            [city.city_code]
            + [f"{city.f1.get(s, float('nan')):.2f}" for s in systems]
        )
    avg_row: list[object] = ["Avg."]
    for system in systems:
        value = f"{result.averages[system]:.2f}"
        gain = result.gains_vs_best_baseline.get(system)
        if gain is not None:
            value += f" ({gain:+.0%})"
        avg_row.append(value)
    rows.append(avg_row)

    out = [f"F1@{result.k} (measured, this reproduction)",
           format_table(headers, rows)]
    if paper is not None:
        paper_rows = []
        for city in result.cities:
            row = paper.get(city.city_code)
            if row is None:
                continue
            paper_rows.append(
                [city.city_code] + [f"{row[s]:.2f}" for s in systems if s in row]
            )
        if "Avg." in paper:
            paper_rows.append(
                ["Avg."]
                + [f"{paper['Avg.'][s]:.2f}" for s in systems if s in paper["Avg."]]
            )
        out += ["", "F1@10 (paper, Table 2)", format_table(headers, paper_rows)]
    return "\n".join(out)
