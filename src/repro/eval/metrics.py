"""Retrieval metrics: precision/recall/F1@k (the paper's measure) and nDCG."""

from __future__ import annotations

import math
from collections.abc import Sequence, Set


def precision_at_k(retrieved: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the first ``k`` retrieved items that are relevant.

    Matches the paper's usage: systems may return fewer than ``k`` items
    (SemaSK's LLM filters), in which case precision is over what was
    returned — an empty return with non-empty ground truth scores 0.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    top = list(retrieved[:k])
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in relevant)
    return hits / len(top)


def recall_at_k(retrieved: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of relevant items found in the first ``k`` retrieved."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not relevant:
        return 1.0 if not retrieved else 0.0
    top = set(retrieved[:k])
    return len(top & relevant) / len(relevant)


def f1_at_k(retrieved: Sequence[str], relevant: Set[str], k: int) -> float:
    """The paper's F1@k: harmonic mean of precision@k and recall@k."""
    p = precision_at_k(retrieved, relevant, k)
    r = recall_at_k(retrieved, relevant, k)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def average_precision(retrieved: Sequence[str], relevant: Set[str]) -> float:
    """AP over the full retrieved list (extension metric)."""
    if not relevant:
        return 1.0 if not retrieved else 0.0
    hits = 0
    total = 0.0
    for i, item in enumerate(retrieved):
        if item in relevant:
            hits += 1
            total += hits / (i + 1)
    return total / len(relevant)


def ndcg_at_k(retrieved: Sequence[str], relevant: Set[str], k: int) -> float:
    """Binary-relevance nDCG@k (extension metric)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    dcg = sum(
        1.0 / math.log2(i + 2)
        for i, item in enumerate(retrieved[:k])
        if item in relevant
    )
    ideal_hits = min(len(relevant), k)
    if ideal_hits == 0:
        return 1.0 if not retrieved else 0.0
    idcg = sum(1.0 / math.log2(i + 2) for i in range(ideal_hits))
    return dcg / idcg


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(values) / len(values)
