"""Shared, cached evaluation corpora.

Building a city (generation + address completion + summarization +
embedding) is the expensive part of every experiment; this module caches
prepared cities per (city, seed, count) so benchmarks, tests, and examples
share work within a process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prepare import DataPreparation, PreparedCity
from repro.data.dataset import Dataset
from repro.data.yelp import YelpStyleGenerator
from repro.eval.groundtruth import GroundTruthBuilder
from repro.geo.regions import CityRegion, city_by_code
from repro.llm.simulated import SimulatedLLM
from repro.semantics.ontology.build import default_ontology

_CACHE: dict[tuple[str, int, int | None, bool, int], "EvalCorpus"] = {}


@dataclass
class EvalCorpus:
    """A fully prepared city plus the shared evaluation helpers."""

    city: CityRegion
    dataset: Dataset
    prepared: PreparedCity
    ground_truth: GroundTruthBuilder
    llm: SimulatedLLM
    seed: int


def build_corpus(
    city_code: str,
    seed: int = 7,
    count: int | None = None,
    summarize: bool = True,
    shards: int = 1,
    eager_index: bool = True,
) -> EvalCorpus:
    """Generate and prepare a city corpus (no cache).

    ``shards > 1`` stores the embeddings in a hash-partitioned
    :class:`~repro.vectordb.sharded.ShardedCollection` instead of a single
    collection; the query pipeline is identical over either backend.
    Preparation builds the HNSW graph(s) eagerly — per shard, in parallel
    — so queries never pay for graph construction; ``eager_index=False``
    restores the lazy build.
    """
    city = city_by_code(city_code)
    graph, lexicon = default_ontology()
    generator = YelpStyleGenerator(graph, lexicon, seed=seed)
    dataset = Dataset(generator.generate_city(city, count=count), city.code)
    llm = SimulatedLLM(graph, lexicon)
    preparation = DataPreparation(llm=llm, summarize=summarize, shards=shards,
                                  eager_index=eager_index)
    prepared = preparation.prepare(dataset)
    return EvalCorpus(
        city=city,
        dataset=dataset,
        prepared=prepared,
        ground_truth=GroundTruthBuilder(graph, lexicon),
        llm=llm,
        seed=seed,
    )


def get_corpus(
    city_code: str,
    seed: int = 7,
    count: int | None = None,
    summarize: bool = True,
    shards: int = 1,
) -> EvalCorpus:
    """Cached :func:`build_corpus` (per-process)."""
    key = (city_code.upper(), seed, count, summarize, shards)
    corpus = _CACHE.get(key)
    if corpus is None:
        corpus = build_corpus(city_code, seed=seed, count=count,
                              summarize=summarize, shards=shards)
        _CACHE[key] = corpus
    return corpus


def clear_corpus_cache() -> None:
    """Drop all cached corpora (tests use this to bound memory)."""
    _CACHE.clear()
