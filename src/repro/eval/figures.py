"""Plain-text chart rendering for ablation curves.

The benchmarks attach ablation curves as ``extra_info``; examples and
EXPERIMENTS.md use these little ASCII renderers so curves are readable
without a plotting stack (nothing beyond the standard library).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    max_value: float | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values.

    >>> print(bar_chart({"a": 1.0, "b": 0.5}, width=4))
    a  1.00 ████
    b  0.50 ██
    """
    if not values:
        return "(no data)"
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    peak = max_value if max_value is not None else max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for label, value in values.items():
        filled = int(round(width * min(value, peak) / peak))
        lines.append(
            f"{str(label).ljust(label_width)}  {value:.2f}{unit} "
            + "█" * filled
        )
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 10,
    width: int = 50,
    y_label: str = "",
) -> str:
    """A coarse ASCII scatter/line plot of one series."""
    if len(xs) != len(ys):
        raise ValueError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    if not xs:
        return "(no data)"
    if height <= 1 or width <= 1:
        raise ValueError("height and width must exceed 1")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((1.0 - (y - y_min) / y_span) * (height - 1)))
        grid[row][col] = "*"
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{y_max:7.2f} |"
        elif i == height - 1:
            prefix = f"{y_min:7.2f} |"
        else:
            prefix = "        |"
        lines.append(prefix + "".join(row))
    lines.append("        +" + "-" * width)
    lines.append(f"         {x_min:g}{' ' * max(1, width - 12)}{x_max:g}")
    if y_label:
        lines.insert(0, f"  {y_label}")
    return "\n".join(lines)
