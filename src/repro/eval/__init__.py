"""Evaluation harness: metrics, ground truth, query sets, experiments."""

from repro.eval.ablations import (
    LLMQualityPoint,
    llm_quality_sweep,
    summary_ablation,
)
from repro.eval.corpus import EvalCorpus, build_corpus, clear_corpus_cache, get_corpus
from repro.eval.experiments import (
    PAPER_TABLE2,
    TABLE2_CITIES,
    TABLE2_K,
    TABLE2_SYSTEMS,
    CityEvaluation,
    Table2Result,
    build_test_queries,
    evaluate_city,
    run_table2,
)
from repro.eval.figures import bar_chart, line_plot
from repro.eval.groundtruth import GroundTruthBuilder, true_concepts
from repro.eval.metrics import (
    average_precision,
    f1_at_k,
    mean,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.eval.queries import (
    QUERIES_PER_CITY,
    QUERYGEN_MODEL,
    QuerySetStats,
    EvalQuery,
    EvalQueryBuilder,
)
from repro.eval.report import format_table, format_table2
from repro.eval.stats import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    cohens_d_paired,
    paired_permutation_pvalue,
)
from repro.eval.timing import TimingReport, measure_query_times

__all__ = [
    "CityEvaluation",
    "ConfidenceInterval",
    "EvalCorpus",
    "GroundTruthBuilder",
    "PAPER_TABLE2",
    "QUERIES_PER_CITY",
    "QUERYGEN_MODEL",
    "QuerySetStats",
    "TABLE2_CITIES",
    "TABLE2_K",
    "TABLE2_SYSTEMS",
    "Table2Result",
    "EvalQuery",
    "EvalQueryBuilder",
    "LLMQualityPoint",
    "TimingReport",
    "average_precision",
    "bar_chart",
    "bootstrap_mean_ci",
    "cohens_d_paired",
    "build_corpus",
    "build_test_queries",
    "clear_corpus_cache",
    "evaluate_city",
    "f1_at_k",
    "format_table",
    "format_table2",
    "get_corpus",
    "line_plot",
    "llm_quality_sweep",
    "paired_permutation_pvalue",
    "summary_ablation",
    "true_concepts",
    "mean",
    "measure_query_times",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "run_table2",
]
