"""Statistical utilities for experiment reporting (extension).

The paper reports point averages over 30 queries per city. With a fully
scripted harness we can do better: bootstrap confidence intervals on the
per-query F1 scores, and a paired sign-flip permutation test for system
comparisons — so EXPERIMENTS.md can state whether SemaSK's margin over the
baselines is noise or signal.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap percentile confidence interval around a mean."""

    mean: float
    lower: float
    upper: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.3f} "
            f"[{self.lower:.3f}, {self.upper:.3f}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 7,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of the mean of ``values``."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(values, dtype=np.float64)
    rng = np.random.default_rng(seed)
    indexes = rng.integers(0, data.size, size=(n_resamples, data.size))
    means = data[indexes].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        mean=float(data.mean()),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
    )


def paired_permutation_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    n_permutations: int = 5000,
    seed: int = 7,
) -> float:
    """Two-sided sign-flip permutation test on paired per-query scores.

    Tests the null hypothesis that systems ``a`` and ``b`` have the same
    expected score, using the per-query pairing (same query, same ground
    truth). Returns the p-value.
    """
    if len(a) != len(b):
        raise ValueError(
            f"paired samples must align: {len(a)} vs {len(b)} scores"
        )
    if not a:
        raise ValueError("cannot test empty samples")
    diffs = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    observed = abs(diffs.mean())
    if np.allclose(diffs, 0.0):
        return 1.0
    rng = np.random.default_rng(seed)
    signs = rng.choice((-1.0, 1.0), size=(n_permutations, diffs.size))
    permuted = np.abs((signs * diffs).mean(axis=1))
    # Add-one smoothing keeps the estimate conservative and never zero.
    return float((np.sum(permuted >= observed - 1e-12) + 1) / (n_permutations + 1))


def cohens_d_paired(a: Sequence[float], b: Sequence[float]) -> float:
    """Paired Cohen's d (mean difference over the difference SD)."""
    if len(a) != len(b) or not a:
        raise ValueError("paired samples must align and be non-empty")
    diffs = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    sd = diffs.std(ddof=1) if diffs.size > 1 else 0.0
    mean_diff = float(diffs.mean())
    if sd == 0.0:
        if mean_diff == 0.0:
            return 0.0
        return float(np.copysign(np.inf, mean_diff))
    return mean_diff / float(sd)
