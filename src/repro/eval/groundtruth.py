"""Ground-truth answer sets for test queries.

The paper constructs answer sets by *manual inspection* of the query range
("we manually inspect the corresponding query range to determine the
answer set"). Offline, the synthetic corpus makes the inspection exact:
each POI carries the latent concept profile it was generated from, so the
answer set is *every POI in the range whose true concepts satisfy the
query's intent* — including POIs other than the generation target, exactly
as the paper notes ("there may be other POIs besides the target POI").

Structured truths count too: a POI whose opening hours genuinely run past
midnight satisfies an "open late" intent even if no tip says so.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.gen.hours import is_open_late, opens_early
from repro.data.model import POIRecord
from repro.errors import EvaluationError
from repro.geo.bbox import BoundingBox
from repro.semantics.concepts import ConceptGraph
from repro.semantics.intent import QueryIntent
from repro.semantics.lexicon import ConceptExtractor, Lexicon, full_knowledge


def true_concepts(record: POIRecord) -> frozenset[str]:
    """A POI's ground-truth concepts: latent profile + structured truths."""
    if record.profile is None:
        raise EvaluationError(
            f"POI {record.business_id} has no latent profile; ground truth "
            "requires generator-produced records"
        )
    concepts = set(record.profile.all_concepts())
    if is_open_late(record.hours):
        concepts.add("late_night")
    if opens_early(record.hours):
        concepts.add("open_early")
    return frozenset(concepts)


class GroundTruthBuilder:
    """Derives intents from query text and answer sets from latent profiles."""

    def __init__(self, graph: ConceptGraph, lexicon: Lexicon) -> None:
        self._graph = graph
        self._oracle = ConceptExtractor(lexicon, full_knowledge())

    def intent_of(self, query_text: str) -> QueryIntent | None:
        """The intent an all-knowing reader derives from the query text.

        Returns None when the text mentions no known concept (such queries
        are rejected during test-set construction, mirroring the paper's
        manual filtering).
        """
        required = self._oracle.extract_concepts(query_text)
        if not required:
            return None
        return QueryIntent(required=required)

    def answer_set(
        self,
        dataset: Dataset,
        box: BoundingBox,
        intent: QueryIntent,
    ) -> frozenset[str]:
        """Business ids of all in-range POIs truly satisfying ``intent``."""
        answers = set()
        for record in dataset.in_range(box):
            if intent.is_satisfied_by(true_concepts(record), self._graph):
                answers.add(record.business_id)
        return frozenset(answers)
