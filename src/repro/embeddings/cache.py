"""A small LRU cache wrapper for embedding models.

The data-preparation pipeline embeds each POI document once, but query
processing may re-embed repeated query texts (benchmark sweeps re-run the
same 30 queries many times); caching keeps that honest-but-cheap.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.embeddings.base import EmbeddingModel


class CachingEmbedder(EmbeddingModel):
    """Wraps any :class:`EmbeddingModel` with an LRU cache on text."""

    def __init__(self, inner: EmbeddingModel, max_entries: int = 50_000) -> None:
        super().__init__(inner.dim)
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.model_id = inner.model_id
        self._inner = inner
        self._max_entries = max_entries
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def inner(self) -> EmbeddingModel:
        """The wrapped model."""
        return self._inner

    def embed(self, text: str) -> np.ndarray:
        cached = self._cache.get(text)
        if cached is not None:
            self._cache.move_to_end(text)
            self.hits += 1
            return cached
        self.misses += 1
        vector = self._inner.embed(text)
        self._cache[text] = vector
        if len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
        return vector

    def embed_batch(self, texts) -> np.ndarray:
        """Batch embedding with per-text cache hits.

        Cached texts are served from the LRU without touching the inner
        model; the remaining *unique* misses go to the inner model's own
        ``embed_batch`` in one call. A text repeated within the batch is
        embedded once — the first occurrence counts as the miss, later
        occurrences count as hits, so ``hits + misses`` still advances by
        ``len(texts)``.
        """
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float32)
        out: list[np.ndarray | None] = [None] * len(texts)
        missing: dict[str, list[int]] = {}
        for i, text in enumerate(texts):
            cached = self._cache.get(text)
            if cached is not None:
                self._cache.move_to_end(text)
                self.hits += 1
                out[i] = cached
            else:
                missing.setdefault(text, []).append(i)
        if missing:
            unique = list(missing)
            vectors = self._inner.embed_batch(unique)
            for text, vector in zip(unique, vectors):
                positions = missing[text]
                self.misses += 1
                self.hits += len(positions) - 1
                # Copy: a row view would pin the whole batch matrix in the
                # LRU for as long as any single entry survives eviction.
                vector = vector.copy()
                self._cache[text] = vector
                if len(self._cache) > self._max_entries:
                    self._cache.popitem(last=False)
                for i in positions:
                    out[i] = vector
        return np.stack(out)

    def clear(self) -> None:
        """Drop all cached vectors and reset counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
