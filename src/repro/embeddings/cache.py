"""A small LRU cache wrapper for embedding models.

The data-preparation pipeline embeds each POI document once, but query
processing may re-embed repeated query texts (benchmark sweeps re-run the
same 30 queries many times); caching keeps that honest-but-cheap.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.embeddings.base import EmbeddingModel


class CachingEmbedder(EmbeddingModel):
    """Wraps any :class:`EmbeddingModel` with an LRU cache on text."""

    def __init__(self, inner: EmbeddingModel, max_entries: int = 50_000) -> None:
        super().__init__(inner.dim)
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.model_id = inner.model_id
        self._inner = inner
        self._max_entries = max_entries
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def inner(self) -> EmbeddingModel:
        """The wrapped model."""
        return self._inner

    def embed(self, text: str) -> np.ndarray:
        cached = self._cache.get(text)
        if cached is not None:
            self._cache.move_to_end(text)
            self.hits += 1
            return cached
        self.misses += 1
        vector = self._inner.embed(text)
        self._cache[text] = vector
        if len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
        return vector

    def clear(self) -> None:
        """Drop all cached vectors and reset counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
