"""The simulated ``text-embedding-3-small`` model.

A real sentence-embedding model places semantically related texts near each
other because it has internalized distributional knowledge: "flat white"
and "café" co-occur with the same contexts. This simulation makes that
knowledge explicit and *partial*:

* the text is scanned for known surface forms under the model's
  :class:`~repro.semantics.lexicon.KnowledgeProfile` (a graded, hashed
  subset of the lexicon — harder paraphrases are more likely missed);
* recognized concepts contribute stable random unit vectors, with
  is-a ancestors added at decayed weight (so "espresso" partially matches
  a "coffee" query even in concept space);
* a lexical hashed-ngram component is mixed in, which is what carries
  similarity for out-of-lexicon vocabulary (names, streets).

The resulting retrieval quality sits between pure lexical matching and the
simulated LLM's judgment — the slot the paper's SemaSK-EM variant occupies.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.embeddings.base import EmbeddingModel
from repro.embeddings.hashed import HashedNgramEmbedder
from repro.semantics.concepts import ConceptGraph
from repro.semantics.lexicon import (
    ConceptExtractor,
    KnowledgeProfile,
    Lexicon,
    linear_knowledge,
)
from repro.semantics.ontology.build import default_ontology

#: Default knowledge curve of the embedding model: perfect on literal
#: labels, ~30% on the hardest paraphrases.
DEFAULT_EMBEDDING_KNOWLEDGE = ("text-embedding-3-small", 1.05, 0.8)


def _concept_vector(concept_id: str, dim: int, salt: str) -> np.ndarray:
    """A stable Gaussian unit vector for a concept."""
    digest = hashlib.sha256(f"{salt}:{concept_id}".encode()).digest()
    seed = int.from_bytes(digest[:8], "big")
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(dim)
    return vector / np.linalg.norm(vector)


class SemanticEmbedder(EmbeddingModel):
    """Concept-projection embedder standing in for text-embedding-3-small."""

    model_id = "text-embedding-3-small"

    def __init__(
        self,
        dim: int = 256,
        graph: ConceptGraph | None = None,
        lexicon: Lexicon | None = None,
        knowledge: KnowledgeProfile | None = None,
        concept_weight: float = 1.0,
        lexical_weight: float = 0.4,
        ancestor_decay: float = 0.5,
        salt: str = "sem-embed-v1",
    ) -> None:
        super().__init__(dim)
        if graph is None or lexicon is None:
            graph, lexicon = default_ontology()
        if knowledge is None:
            name, base, slope = DEFAULT_EMBEDDING_KNOWLEDGE
            knowledge = linear_knowledge(name, base, slope)
        self._graph = graph
        self._extractor = ConceptExtractor(lexicon, knowledge)
        self._concept_weight = concept_weight
        self._lexical_weight = lexical_weight
        self._ancestor_decay = ancestor_decay
        self._salt = salt
        self._lexical = HashedNgramEmbedder(dim=dim, salt=f"{salt}:lex")
        self._concept_cache: dict[str, np.ndarray] = {}

    @property
    def knowledge(self) -> KnowledgeProfile:
        """The lexicon-coverage profile of this embedding model."""
        return self._extractor.knowledge

    def _vector_of(self, concept_id: str) -> np.ndarray:
        cached = self._concept_cache.get(concept_id)
        if cached is None:
            cached = _concept_vector(concept_id, self._dim, self._salt)
            self._concept_cache[concept_id] = cached
        return cached

    def embed(self, text: str) -> np.ndarray:
        mentions = self._extractor.extract(text)
        vector = np.zeros(self._dim, dtype=np.float64)
        # Accumulate per-concept weights first so repeated mentions saturate
        # sub-linearly (sqrt), like TF weighting in real encoders.
        weights: dict[str, float] = {}
        for mention in mentions:
            weights[mention.concept_id] = weights.get(mention.concept_id, 0.0) + 1.0
            if mention.concept_id in self._graph:
                for ancestor in self._graph.ancestors(mention.concept_id):
                    weights[ancestor] = (
                        weights.get(ancestor, 0.0) + self._ancestor_decay
                    )
        for concept_id, weight in weights.items():
            vector += np.sqrt(weight) * self._vector_of(concept_id)
        if weights:
            vector = vector / np.linalg.norm(vector)

        lexical = self._lexical.embed(text).astype(np.float64, copy=False)
        combined = self._concept_weight * vector + self._lexical_weight * lexical
        return self._normalize(combined)

    def embed_batch(self, texts) -> np.ndarray:
        """Batch embedding with per-batch text deduplication.

        Concept extraction is the expensive step, and batched query
        workloads repeat texts (benchmark sweeps, popular queries); each
        unique text is embedded once per batch. Rows are bitwise identical
        to :meth:`embed`. Concept vectors are additionally memoized
        instance-wide, so repeated concepts across distinct texts are
        shared too.
        """
        if not texts:
            return np.zeros((0, self._dim), dtype=np.float32)
        unique: dict[str, np.ndarray] = {}
        for text in texts:
            if text not in unique:
                unique[text] = self.embed(text)
        return np.stack([unique[text] for text in texts])

    def concepts_in(self, text: str) -> frozenset[str]:
        """Concepts this model recognizes in ``text`` (diagnostics/ablations)."""
        return self._extractor.extract_concepts(text)
