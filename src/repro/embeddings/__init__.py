"""Embedding substrate: simulated text-embedding-3-small and utilities."""

from repro.embeddings.base import EmbeddingModel
from repro.embeddings.cache import CachingEmbedder
from repro.embeddings.hashed import HashedNgramEmbedder
from repro.embeddings.semantic import DEFAULT_EMBEDDING_KNOWLEDGE, SemanticEmbedder

__all__ = [
    "CachingEmbedder",
    "DEFAULT_EMBEDDING_KNOWLEDGE",
    "EmbeddingModel",
    "HashedNgramEmbedder",
    "SemanticEmbedder",
]
