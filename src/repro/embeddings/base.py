"""Embedding model interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np


class EmbeddingModel(ABC):
    """Maps text to a fixed-dimension, unit-norm dense vector."""

    #: Model identifier (mirrors OpenAI-style model ids).
    model_id: str = "abstract"

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"embedding dimension must be positive, got {dim}")
        self._dim = dim

    @property
    def dim(self) -> int:
        """Dimensionality of produced vectors."""
        return self._dim

    @abstractmethod
    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a float32 unit vector of length :attr:`dim`."""

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed ``texts`` into an ``(n, dim)`` float32 matrix.

        Contract for all implementations: row ``i`` is bitwise identical to
        ``embed(texts[i])`` — batching is an amortization, never a different
        model. Subclasses override this to share work across the batch
        (feature-hash memoization, per-batch text dedup, cache lookups).
        """
        if not texts:
            return np.zeros((0, self._dim), dtype=np.float32)
        return np.stack([self.embed(t) for t in texts])

    @staticmethod
    def _normalize(vector: np.ndarray) -> np.ndarray:
        """Unit-normalize, mapping the zero vector to itself."""
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            return vector.astype(np.float32, copy=False)
        return (vector / norm).astype(np.float32, copy=False)
