"""Hashed n-gram embedder: a purely lexical dense representation.

Feature hashing with sign hashing (Weinberger et al., 2009) over word
unigrams and character trigrams. Two texts are similar under this model
iff they share vocabulary — it has no semantics at all, and serves as the
lexical component inside :class:`~repro.embeddings.semantic.SemanticEmbedder`
as well as a baseline embedding in ablations.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.embeddings.base import EmbeddingModel
from repro.text.stopwords import remove_stopwords
from repro.text.tokenize import char_ngrams, tokenize


def _bucket_and_sign(feature: str, dim: int, salt: str) -> tuple[int, float]:
    digest = hashlib.blake2b(
        f"{salt}:{feature}".encode(), digest_size=8
    ).digest()
    value = int.from_bytes(digest, "big")
    bucket = value % dim
    sign = 1.0 if (value >> 63) & 1 else -1.0
    return bucket, sign


class HashedNgramEmbedder(EmbeddingModel):
    """Signed feature hashing of word unigrams and char trigrams."""

    model_id = "hashed-ngram"

    def __init__(
        self,
        dim: int = 256,
        char_ngram_weight: float = 0.35,
        salt: str = "hashed-ngram-v1",
    ) -> None:
        super().__init__(dim)
        if char_ngram_weight < 0:
            raise ValueError("char_ngram_weight must be non-negative")
        self._char_weight = char_ngram_weight
        self._salt = salt

    def embed(self, text: str) -> np.ndarray:
        vector = np.zeros(self._dim, dtype=np.float64)
        tokens = remove_stopwords(tokenize(text))
        for token in tokens:
            bucket, sign = _bucket_and_sign(f"w:{token}", self._dim, self._salt)
            vector[bucket] += sign
            if self._char_weight > 0:
                for gram in char_ngrams(token, 3):
                    bucket, sign = _bucket_and_sign(
                        f"c:{gram}", self._dim, self._salt
                    )
                    vector[bucket] += sign * self._char_weight
        return self._normalize(vector)
