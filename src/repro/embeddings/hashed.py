"""Hashed n-gram embedder: a purely lexical dense representation.

Feature hashing with sign hashing (Weinberger et al., 2009) over word
unigrams and character trigrams. Two texts are similar under this model
iff they share vocabulary — it has no semantics at all, and serves as the
lexical component inside :class:`~repro.embeddings.semantic.SemanticEmbedder`
as well as a baseline embedding in ablations.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.embeddings.base import EmbeddingModel
from repro.text.stopwords import remove_stopwords
from repro.text.tokenize import char_ngrams, tokenize


def _bucket_and_sign(feature: str, dim: int, salt: str) -> tuple[int, float]:
    digest = hashlib.blake2b(
        f"{salt}:{feature}".encode(), digest_size=8
    ).digest()
    value = int.from_bytes(digest, "big")
    bucket = value % dim
    sign = 1.0 if (value >> 63) & 1 else -1.0
    return bucket, sign


class HashedNgramEmbedder(EmbeddingModel):
    """Signed feature hashing of word unigrams and char trigrams."""

    model_id = "hashed-ngram"

    def __init__(
        self,
        dim: int = 256,
        char_ngram_weight: float = 0.35,
        salt: str = "hashed-ngram-v1",
    ) -> None:
        super().__init__(dim)
        if char_ngram_weight < 0:
            raise ValueError("char_ngram_weight must be non-negative")
        self._char_weight = char_ngram_weight
        self._salt = salt

    def embed(self, text: str) -> np.ndarray:
        return self._embed_one(text, {})

    def embed_batch(self, texts) -> np.ndarray:
        """Batch embedding with a shared feature-hash memo.

        Hashing a feature (one blake2b digest) is the dominant per-token
        cost; texts in one batch share vocabulary heavily, so the memo
        turns repeated features into dict lookups. Accumulation order per
        text is unchanged, so rows are bitwise identical to :meth:`embed`.
        """
        if not texts:
            return np.zeros((0, self._dim), dtype=np.float32)
        memo: dict[str, tuple[int, float]] = {}
        return np.stack([self._embed_one(t, memo) for t in texts])

    def _embed_one(
        self, text: str, memo: dict[str, tuple[int, float]]
    ) -> np.ndarray:
        vector = np.zeros(self._dim, dtype=np.float64)
        tokens = remove_stopwords(tokenize(text))
        for token in tokens:
            bucket, sign = self._slot(f"w:{token}", memo)
            vector[bucket] += sign
            if self._char_weight > 0:
                for gram in char_ngrams(token, 3):
                    bucket, sign = self._slot(f"c:{gram}", memo)
                    vector[bucket] += sign * self._char_weight
        return self._normalize(vector)

    def _slot(
        self, feature: str, memo: dict[str, tuple[int, float]]
    ) -> tuple[int, float]:
        cached = memo.get(feature)
        if cached is None:
            cached = _bucket_and_sign(feature, self._dim, self._salt)
            memo[feature] = cached
        return cached
