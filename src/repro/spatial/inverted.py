"""A classic inverted index from terms to document ids."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from typing import Any


class InvertedIndex:
    """Term -> posting list (document ids with term frequencies)."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[Any, int]] = {}
        self._doc_lengths: dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._doc_lengths)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    def add_document(self, doc_id: Any, tokens: Iterable[str]) -> None:
        """Index a document's tokens (re-adding an id raises)."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"document {doc_id!r} already indexed")
        counts = Counter(tokens)
        self._doc_lengths[doc_id] = sum(counts.values())
        for term, count in counts.items():
            self._postings.setdefault(term, {})[doc_id] = count

    def postings(self, term: str) -> dict[Any, int]:
        """Posting list of ``term`` (copy; empty when unseen)."""
        return dict(self._postings.get(term, {}))

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, {}))

    def doc_length(self, doc_id: Any) -> int:
        """Token count of an indexed document (0 when unknown)."""
        return self._doc_lengths.get(doc_id, 0)

    def average_doc_length(self) -> float:
        """Mean document length (0.0 for an empty index)."""
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def documents_with_any(self, terms: Iterable[str]) -> set[Any]:
        """Ids of documents containing at least one of ``terms``."""
        result: set[Any] = set()
        for term in terms:
            result.update(self._postings.get(term, {}))
        return result

    def documents_with_all(self, terms: Iterable[str]) -> set[Any]:
        """Ids of documents containing every one of ``terms``."""
        term_list = list(terms)
        if not term_list:
            return set()
        posting_sets = [
            set(self._postings.get(term, {})) for term in term_list
        ]
        posting_sets.sort(key=len)
        result = posting_sets[0]
        for postings in posting_sets[1:]:
            result &= postings
            if not result:
                break
        return result
