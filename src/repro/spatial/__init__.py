"""Spatial index substrate: R-tree, IR-tree, grid, inverted index."""

from repro.spatial.grid import GridIndex
from repro.spatial.inverted import InvertedIndex
from repro.spatial.irtree import IRTree
from repro.spatial.rtree import RTree, RTreeEntry

__all__ = ["GridIndex", "IRTree", "InvertedIndex", "RTree", "RTreeEntry"]
