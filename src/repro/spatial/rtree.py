"""An R-tree over geographic points, with quadratic split and STR packing.

This is the classic spatial index the spatial-keyword literature builds on
(the IR-tree of Li et al. 2011 is an R-tree whose nodes carry inverted
files — see :mod:`repro.spatial.irtree`). Supports incremental insertion
(Guttman's quadratic split) and bulk loading with the Sort-Tile-Recursive
algorithm, plus range and kNN queries.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Any

from repro.geo.bbox import BoundingBox
from repro.geo.point import equirectangular_km


@dataclass
class RTreeEntry:
    """A leaf entry: one data object at a point location."""

    object_id: Any
    lat: float
    lon: float

    @property
    def mbr(self) -> BoundingBox:
        """Degenerate bounding box of the point."""
        return BoundingBox(self.lat, self.lon, self.lat, self.lon)


class _Node:
    """An R-tree node; leaves hold entries, internal nodes hold children."""

    __slots__ = ("entries", "children", "mbr")

    def __init__(self, leaf: bool) -> None:
        self.entries: list[RTreeEntry] = [] if leaf else None  # type: ignore[assignment]
        self.children: list[_Node] | None = None if leaf else []
        self.mbr: BoundingBox | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def recompute_mbr(self) -> None:
        boxes: list[BoundingBox]
        if self.is_leaf:
            boxes = [e.mbr for e in self.entries]
        else:
            boxes = [c.mbr for c in self.children if c.mbr is not None]
        if not boxes:
            self.mbr = None
            return
        mbr = boxes[0]
        for box in boxes[1:]:
            mbr = mbr.union(box)
        self.mbr = mbr


def _min_dist_km(lat: float, lon: float, box: BoundingBox) -> float:
    """Minimum distance from a point to a box (0 when inside)."""
    clamped_lat = min(max(lat, box.min_lat), box.max_lat)
    clamped_lon = min(max(lon, box.min_lon), box.max_lon)
    return equirectangular_km(lat, lon, clamped_lat, clamped_lon)


class RTree:
    """Point R-tree with configurable fanout."""

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self._max = max_entries
        self._min = max(2, max_entries // 3)
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> _Node:
        """Root node (exposed for IR-tree and tests)."""
        return self._root

    # ------------------------------------------------------------------
    # insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------

    def insert(self, object_id: Any, lat: float, lon: float) -> None:
        """Insert one point object."""
        entry = RTreeEntry(object_id, lat, lon)
        split = self._insert_into(self._root, entry)
        if split is not None:
            new_root = _Node(leaf=False)
            new_root.children = [self._root, split]
            new_root.recompute_mbr()
            self._root = new_root
        self._size += 1

    def _insert_into(self, node: _Node, entry: RTreeEntry) -> _Node | None:
        if node.is_leaf:
            node.entries.append(entry)
            node.mbr = entry.mbr if node.mbr is None else node.mbr.union(entry.mbr)
            if len(node.entries) > self._max:
                return self._split_leaf(node)
            return None

        best = self._choose_subtree(node, entry)
        split = self._insert_into(best, entry)
        node.mbr = entry.mbr if node.mbr is None else node.mbr.union(entry.mbr)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self._max:
                return self._split_internal(node)
        return None

    def _choose_subtree(self, node: _Node, entry: RTreeEntry) -> _Node:
        best = None
        best_enlargement = math.inf
        best_area = math.inf
        for child in node.children:
            if child.mbr is None:
                return child
            enlargement = child.mbr.enlargement(entry.mbr)
            area = child.mbr.area_deg2()
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best, best_enlargement, best_area = child, enlargement, area
        assert best is not None  # children is non-empty by construction
        return best

    @staticmethod
    def _pick_seeds(boxes: list[BoundingBox]) -> tuple[int, int]:
        """Quadratic pick-seeds: the pair wasting the most area together."""
        worst_pair = (0, 1)
        worst_waste = -math.inf
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                waste = (
                    boxes[i].union(boxes[j]).area_deg2()
                    - boxes[i].area_deg2()
                    - boxes[j].area_deg2()
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    def _quadratic_partition(
        self, boxes: list[BoundingBox]
    ) -> tuple[list[int], list[int]]:
        seed_a, seed_b = self._pick_seeds(boxes)
        group_a, group_b = [seed_a], [seed_b]
        mbr_a, mbr_b = boxes[seed_a], boxes[seed_b]
        remaining = [i for i in range(len(boxes)) if i not in (seed_a, seed_b)]
        while remaining:
            # Force-assign when one group must absorb the rest to reach min.
            if len(group_a) + len(remaining) <= self._min:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) <= self._min:
                group_b.extend(remaining)
                break
            # Pick the box with the strongest preference.
            best_idx, best_diff, prefer_a = -1, -math.inf, True
            for idx in remaining:
                d_a = mbr_a.enlargement(boxes[idx])
                d_b = mbr_b.enlargement(boxes[idx])
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_idx, best_diff, prefer_a = idx, diff, d_a <= d_b
            remaining.remove(best_idx)
            if prefer_a:
                group_a.append(best_idx)
                mbr_a = mbr_a.union(boxes[best_idx])
            else:
                group_b.append(best_idx)
                mbr_b = mbr_b.union(boxes[best_idx])
        return group_a, group_b

    def _split_leaf(self, node: _Node) -> _Node:
        entries = node.entries
        group_a, group_b = self._quadratic_partition([e.mbr for e in entries])
        sibling = _Node(leaf=True)
        node.entries = [entries[i] for i in group_a]
        sibling.entries = [entries[i] for i in group_b]
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    def _split_internal(self, node: _Node) -> _Node:
        children = node.children
        boxes = [c.mbr for c in children]
        group_a, group_b = self._quadratic_partition(boxes)
        sibling = _Node(leaf=False)
        node.children = [children[i] for i in group_a]
        sibling.children = [children[i] for i in group_b]
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # ------------------------------------------------------------------
    # bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: Sequence[tuple[Any, float, float]],
        max_entries: int = 16,
    ) -> "RTree":
        """Build a packed R-tree from ``(object_id, lat, lon)`` triples."""
        tree = cls(max_entries=max_entries)
        if not items:
            return tree
        entries = [RTreeEntry(oid, lat, lon) for oid, lat, lon in items]
        tree._root = tree._str_pack(entries)
        tree._size = len(entries)
        return tree

    def _str_pack(self, entries: list[RTreeEntry]) -> _Node:
        cap = self._max
        if len(entries) <= cap:
            leaf = _Node(leaf=True)
            leaf.entries = list(entries)
            leaf.recompute_mbr()
            return leaf

        # STR: sort by lon, slice into vertical strips, sort strips by lat.
        n_leaves = math.ceil(len(entries) / cap)
        n_strips = math.ceil(math.sqrt(n_leaves))
        by_lon = sorted(entries, key=lambda e: (e.lon, e.lat))
        strip_size = math.ceil(len(entries) / n_strips)
        leaves: list[_Node] = []
        for s in range(0, len(by_lon), strip_size):
            strip = sorted(by_lon[s : s + strip_size], key=lambda e: (e.lat, e.lon))
            for t in range(0, len(strip), cap):
                leaf = _Node(leaf=True)
                leaf.entries = strip[t : t + cap]
                leaf.recompute_mbr()
                leaves.append(leaf)
        return self._pack_upwards(leaves)

    def _pack_upwards(self, nodes: list[_Node]) -> _Node:
        cap = self._max
        while len(nodes) > 1:
            nodes.sort(
                key=lambda node: (
                    (node.mbr.min_lon + node.mbr.max_lon) / 2,
                    (node.mbr.min_lat + node.mbr.max_lat) / 2,
                )
            )
            parents: list[_Node] = []
            for i in range(0, len(nodes), cap):
                parent = _Node(leaf=False)
                parent.children = nodes[i : i + cap]
                parent.recompute_mbr()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_query(self, box: BoundingBox) -> list[Any]:
        """Ids of all objects inside ``box``."""
        results: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(box):
                continue
            if node.is_leaf:
                results.extend(
                    e.object_id
                    for e in node.entries
                    if box.contains_coords(e.lat, e.lon)
                )
            else:
                stack.extend(node.children)
        return results

    def nearest(self, lat: float, lon: float, k: int = 1) -> list[tuple[Any, float]]:
        """k nearest objects as ``(object_id, distance_km)``, best first.

        Best-first branch-and-bound over node MBRs (Hjaltason & Samet).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self._size == 0:
            return []
        counter = 0  # tie-breaker to keep heap comparisons well-defined
        heap: list[tuple[float, int, bool, Any]] = []
        if self._root.mbr is not None:
            heap.append((0.0, counter, False, self._root))
        results: list[tuple[Any, float]] = []
        while heap and len(results) < k:
            dist, _, is_object, payload = heapq.heappop(heap)
            if is_object:
                results.append((payload, dist))
                continue
            node: _Node = payload
            if node.is_leaf:
                for entry in node.entries:
                    counter += 1
                    d = equirectangular_km(lat, lon, entry.lat, entry.lon)
                    heapq.heappush(heap, (d, counter, True, entry.object_id))
            else:
                for child in node.children:
                    if child.mbr is None:
                        continue
                    counter += 1
                    d = _min_dist_km(lat, lon, child.mbr)
                    heapq.heappush(heap, (d, counter, False, child))
        return results

    def iter_entries(self) -> Iterator[RTreeEntry]:
        """All leaf entries (arbitrary order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    def height(self) -> int:
        """Tree height (1 for a lone leaf root)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height
