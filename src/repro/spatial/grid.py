"""A uniform grid index over geographic points.

Simpler alternative to the R-tree for range filtering; used in ablations
to show the filtering stage is index-agnostic.
"""

from __future__ import annotations

import math
from typing import Any

from repro.geo.bbox import BoundingBox


class GridIndex:
    """Fixed-resolution lat/lon grid with per-cell object buckets."""

    def __init__(self, bounds: BoundingBox, cells_per_axis: int = 64) -> None:
        if cells_per_axis <= 0:
            raise ValueError(
                f"cells_per_axis must be positive, got {cells_per_axis}"
            )
        self._bounds = bounds
        self._n = cells_per_axis
        self._lat_step = (bounds.max_lat - bounds.min_lat) / cells_per_axis or 1e-9
        self._lon_step = (bounds.max_lon - bounds.min_lon) / cells_per_axis or 1e-9
        self._cells: dict[tuple[int, int], list[tuple[Any, float, float]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _cell_of(self, lat: float, lon: float) -> tuple[int, int]:
        row = int((lat - self._bounds.min_lat) / self._lat_step)
        col = int((lon - self._bounds.min_lon) / self._lon_step)
        return (
            min(max(row, 0), self._n - 1),
            min(max(col, 0), self._n - 1),
        )

    def insert(self, object_id: Any, lat: float, lon: float) -> None:
        """Insert a point object (points outside bounds clamp to edge cells)."""
        cell = self._cell_of(lat, lon)
        self._cells.setdefault(cell, []).append((object_id, lat, lon))
        self._size += 1

    def range_query(self, box: BoundingBox) -> list[Any]:
        """Ids of all objects inside ``box``.

        Antimeridian-crossing boxes are handled by scanning each plain
        half separately (the cell-range arithmetic needs ordered
        longitude edges); membership always tests against the full box.
        """
        results: list[Any] = []
        scanned: set[tuple[int, int]] = set()
        for part in box.split_antimeridian():
            lo_row = int(
                math.floor(
                    (part.min_lat - self._bounds.min_lat) / self._lat_step
                )
            )
            hi_row = int(
                math.floor(
                    (part.max_lat - self._bounds.min_lat) / self._lat_step
                )
            )
            lo_col = int(
                math.floor(
                    (part.min_lon - self._bounds.min_lon) / self._lon_step
                )
            )
            hi_col = int(
                math.floor(
                    (part.max_lon - self._bounds.min_lon) / self._lon_step
                )
            )
            lo_row, hi_row = max(lo_row, 0), min(hi_row, self._n - 1)
            lo_col, hi_col = max(lo_col, 0), min(hi_col, self._n - 1)
            for row in range(lo_row, hi_row + 1):
                for col in range(lo_col, hi_col + 1):
                    if (row, col) in scanned:
                        continue
                    scanned.add((row, col))
                    for object_id, lat, lon in self._cells.get((row, col), ()):
                        if box.contains_coords(lat, lon):
                            results.append(object_id)
        return results

    def occupancy(self) -> dict[str, float]:
        """Cell occupancy statistics (diagnostics)."""
        if not self._cells:
            return {"cells_used": 0, "max_bucket": 0, "avg_bucket": 0.0}
        sizes = [len(bucket) for bucket in self._cells.values()]
        return {
            "cells_used": len(sizes),
            "max_bucket": max(sizes),
            "avg_bucket": sum(sizes) / len(sizes),
        }
