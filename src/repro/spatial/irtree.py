"""IR-tree: an R-tree whose nodes carry inverted files (Li et al., 2011).

The IR-tree is the canonical efficient index for spatial keyword queries
and the paper's main point of reference for prior work. Each node stores
the union of keywords appearing in its subtree, so subtrees containing no
query keyword are pruned during traversal.

This implementation builds on :class:`repro.spatial.rtree.RTree` (STR
bulk-loaded) and adds per-node keyword sets plus a document-level inverted
index at the leaves, supporting boolean keyword range queries and top-k
keyword kNN queries — the operations SemaSK's keyword-matching strawman
(Figure 1) and the related-work baselines exercise.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from typing import Any

from repro.geo.bbox import BoundingBox
from repro.geo.point import equirectangular_km
from repro.spatial.rtree import RTree, _min_dist_km, _Node
from repro.text.tokenize import tokenize


class IRTree:
    """R-tree with per-node keyword summaries for keyword-aware pruning."""

    def __init__(
        self,
        items: Sequence[tuple[Any, float, float, str]],
        max_entries: int = 16,
    ) -> None:
        """Build from ``(object_id, lat, lon, text)`` tuples (bulk load)."""
        self._doc_tokens: dict[Any, frozenset[str]] = {
            oid: frozenset(tokenize(text)) for oid, lat, lon, text in items
        }
        self._tree = RTree.bulk_load(
            [(oid, lat, lon) for oid, lat, lon, _ in items],
            max_entries=max_entries,
        )
        self._node_keywords: dict[int, frozenset[str]] = {}
        self._annotate(self._tree.root)

    def __len__(self) -> int:
        return len(self._doc_tokens)

    def _annotate(self, node: _Node) -> frozenset[str]:
        """Attach the subtree keyword union to every node (post-order)."""
        if node.is_leaf:
            keywords: set[str] = set()
            for entry in node.entries:
                keywords |= self._doc_tokens[entry.object_id]
            result = frozenset(keywords)
        else:
            keywords = set()
            for child in node.children:
                keywords |= self._annotate(child)
            result = frozenset(keywords)
        self._node_keywords[id(node)] = result
        return result

    def node_keywords(self, node: _Node) -> frozenset[str]:
        """Keyword union of a node's subtree."""
        return self._node_keywords[id(node)]

    def keywords_of(self, object_id: Any) -> frozenset[str]:
        """Indexed tokens of one object."""
        return self._doc_tokens[object_id]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_keyword_query(
        self, box: BoundingBox, keywords: Sequence[str], match_all: bool = True
    ) -> list[Any]:
        """Objects in ``box`` containing the query keywords.

        ``match_all=True`` is boolean-AND semantics (the Google-Maps-style
        matching of the paper's Figure 1); ``False`` is boolean-OR.
        Subtrees whose keyword union misses a required keyword are pruned.
        """
        terms = [t for kw in keywords for t in tokenize(kw)]
        if not terms:
            return []
        term_set = frozenset(terms)
        results: list[Any] = []
        stack = [self._tree.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(box):
                continue
            available = self._node_keywords[id(node)]
            if match_all and not term_set <= available:
                continue
            if not match_all and not (term_set & available):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if not box.contains_coords(entry.lat, entry.lon):
                        continue
                    doc = self._doc_tokens[entry.object_id]
                    ok = (
                        term_set <= doc if match_all else bool(term_set & doc)
                    )
                    if ok:
                        results.append(entry.object_id)
            else:
                stack.extend(node.children)
        return results

    def nearest_keyword_query(
        self, lat: float, lon: float, keywords: Sequence[str], k: int = 10
    ) -> list[tuple[Any, float]]:
        """k nearest objects containing *all* query keywords.

        Best-first traversal with keyword pruning — the classic top-k
        spatial keyword query (Cong et al., 2009) the IR-tree targets.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        terms = frozenset(t for kw in keywords for t in tokenize(kw))
        if not terms:
            return []
        counter = 0
        heap: list[tuple[float, int, bool, Any]] = []
        root = self._tree.root
        if root.mbr is not None and terms <= self._node_keywords[id(root)]:
            heap.append((0.0, counter, False, root))
        results: list[tuple[Any, float]] = []
        while heap and len(results) < k:
            dist, _, is_object, payload = heapq.heappop(heap)
            if is_object:
                results.append((payload, dist))
                continue
            node: _Node = payload
            if node.is_leaf:
                for entry in node.entries:
                    if terms <= self._doc_tokens[entry.object_id]:
                        counter += 1
                        d = equirectangular_km(lat, lon, entry.lat, entry.lon)
                        heapq.heappush(heap, (d, counter, True, entry.object_id))
            else:
                for child in node.children:
                    if child.mbr is None:
                        continue
                    if not terms <= self._node_keywords[id(child)]:
                        continue
                    counter += 1
                    heapq.heappush(
                        heap,
                        (_min_dist_km(lat, lon, child.mbr), counter, False, child),
                    )
        return results
