"""Okapi BM25 ranking (extension baseline, not in the paper's table).

Included because BM25 is the standard lexical ranking function; the
ablation benchmarks use it to show that the semantic gap is a property of
*lexical matching per se*, not of TF-IDF's particular weighting.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.baselines.ranker import RankedPOI, TextRanker, record_text
from repro.baselines.tfidf import preprocess
from repro.data.model import POIRecord
from repro.errors import EvaluationError
from repro.spatial.inverted import InvertedIndex


class Bm25Ranker(TextRanker):
    """Okapi BM25 with standard k1/b parameters."""

    name = "BM25"

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0 or not 0 <= b <= 1:
            raise ValueError(f"invalid BM25 parameters k1={k1}, b={b}")
        self._k1 = k1
        self._b = b
        self._index: InvertedIndex | None = None
        self._doc_tokens: dict[str, list[str]] = {}

    def fit(self, records: Sequence[POIRecord]) -> "Bm25Ranker":
        """Index the corpus for document frequencies and lengths."""
        index = InvertedIndex()
        self._doc_tokens = {}
        for record in records:
            tokens = preprocess(record_text(record))
            index.add_document(record.business_id, tokens)
            self._doc_tokens[record.business_id] = tokens
        self._index = index
        return self

    def _idf(self, term: str) -> float:
        assert self._index is not None
        n = len(self._index)
        df = self._index.document_frequency(term)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score(self, query_terms: list[str], business_id: str) -> float:
        """BM25 score of one indexed document against query terms."""
        if self._index is None:
            raise EvaluationError("Bm25Ranker.score called before fit")
        tokens = self._doc_tokens.get(business_id)
        if tokens is None:
            return 0.0
        doc_len = len(tokens)
        avg_len = self._index.average_doc_length() or 1.0
        counts: dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        total = 0.0
        for term in query_terms:
            tf = counts.get(term, 0)
            if tf == 0:
                continue
            norm = tf * (self._k1 + 1) / (
                tf + self._k1 * (1 - self._b + self._b * doc_len / avg_len)
            )
            total += self._idf(term) * norm
        return total

    def rank(
        self, query_text: str, candidates: Sequence[POIRecord], k: int
    ) -> list[RankedPOI]:
        if self._index is None:
            raise EvaluationError("Bm25Ranker.rank called before fit")
        query_terms = preprocess(query_text)
        scored = []
        for record in candidates:
            if record.business_id not in self._doc_tokens:
                # Out-of-corpus candidate: index it lazily for scoring.
                tokens = preprocess(record_text(record))
                self._doc_tokens[record.business_id] = tokens
            scored.append(
                RankedPOI(
                    record.business_id,
                    self.score(query_terms, record.business_id),
                )
            )
        return self._top_k(scored, k)
