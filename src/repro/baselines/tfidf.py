"""TF-IDF ranking baseline.

The stronger of the paper's two baselines ("TF-IDF is more accurate,
despite being a simpler model"). Documents and queries are tokenized,
stopword-filtered, Porter-stemmed, and compared by cosine over
``tf * idf`` weights with smoothed IDF.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

from repro.baselines.ranker import RankedPOI, TextRanker, record_text
from repro.data.model import POIRecord
from repro.errors import EvaluationError
from repro.text.similarity import cosine_sparse
from repro.text.stemming import stem_tokens
from repro.text.stopwords import remove_stopwords
from repro.text.tokenize import tokenize
from repro.text.vocabulary import Vocabulary


def preprocess(text: str) -> list[str]:
    """tokenize -> remove stopwords -> stem (shared by TF-IDF and BM25)."""
    return stem_tokens(remove_stopwords(tokenize(text)))


class TfIdfRanker(TextRanker):
    """Cosine similarity over smoothed TF-IDF vectors."""

    name = "TF-IDF"

    def __init__(self, sublinear_tf: bool = True) -> None:
        self._sublinear = sublinear_tf
        self._vocabulary: Vocabulary | None = None
        self._idf: dict[int, float] = {}
        self._doc_vectors: dict[str, dict[int, float]] = {}
        self._n_docs = 0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._vocabulary is not None

    def fit(self, records: Sequence[POIRecord]) -> "TfIdfRanker":
        """Compute IDF over the corpus and cache document vectors."""
        vocabulary = Vocabulary()
        doc_term_ids: dict[str, list[int]] = {}
        document_frequency: Counter[int] = Counter()
        for record in records:
            tokens = preprocess(record_text(record))
            term_ids = vocabulary.add_document(tokens)
            doc_term_ids[record.business_id] = term_ids
            document_frequency.update(set(term_ids))

        n = len(records)
        self._n_docs = n
        self._vocabulary = vocabulary
        self._idf = {
            term_id: math.log((1 + n) / (1 + df)) + 1.0
            for term_id, df in document_frequency.items()
        }
        self._doc_vectors = {
            business_id: self._weigh(term_ids)
            for business_id, term_ids in doc_term_ids.items()
        }
        return self

    def _weigh(self, term_ids: list[int]) -> dict[int, float]:
        counts = Counter(term_ids)
        vector: dict[int, float] = {}
        for term_id, count in counts.items():
            idf = self._idf.get(term_id)
            if idf is None:
                continue
            tf = 1.0 + math.log(count) if self._sublinear else float(count)
            vector[term_id] = tf * idf
        return vector

    def query_vector(self, query_text: str) -> dict[int, float]:
        """Sparse TF-IDF vector of a query (unknown terms dropped)."""
        if self._vocabulary is None:
            raise EvaluationError("TfIdfRanker.rank called before fit")
        tokens = preprocess(query_text)
        term_ids = self._vocabulary.encode(tokens)
        return self._weigh(term_ids)

    def rank(
        self, query_text: str, candidates: Sequence[POIRecord], k: int
    ) -> list[RankedPOI]:
        q_vec = self.query_vector(query_text)
        scored = []
        for record in candidates:
            d_vec = self._doc_vectors.get(record.business_id)
            if d_vec is None:
                # Candidate outside the fitted corpus: vectorize on the fly.
                tokens = preprocess(record_text(record))
                d_vec = self._weigh(self._vocabulary.encode(tokens))
            scored.append(
                RankedPOI(record.business_id, cosine_sparse(q_vec, d_vec))
            )
        return self._top_k(scored, k)
