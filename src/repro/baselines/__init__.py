"""Baseline rankers: TF-IDF and LDA (paper), BM25 and keyword (extensions)."""

from repro.baselines.bm25 import Bm25Ranker
from repro.baselines.fusion import ReciprocalRankFusion
from repro.baselines.irtree_ranker import IRTreeRanker
from repro.baselines.keyword import KeywordMatcher
from repro.baselines.lda import LdaModel, LdaRanker
from repro.baselines.ranker import RankedPOI, TextRanker, record_text
from repro.baselines.tfidf import TfIdfRanker, preprocess

__all__ = [
    "Bm25Ranker",
    "IRTreeRanker",
    "ReciprocalRankFusion",
    "KeywordMatcher",
    "LdaModel",
    "LdaRanker",
    "RankedPOI",
    "TextRanker",
    "TfIdfRanker",
    "preprocess",
    "record_text",
]
