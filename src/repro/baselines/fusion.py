"""Rank-fusion ranker (extension beyond the paper).

Combines two rankers with Reciprocal Rank Fusion (Cormack et al., 2009):
``score(d) = Σ 1 / (k0 + rank_i(d))``. The natural pairing here is the
lexical TF-IDF ranker with embedding retrieval — a cheap middle ground
between SemaSK-EM and the LLM-refined system, used by the ablation
benchmarks to show how far *fusion without an LLM* can close the gap.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.ranker import RankedPOI, TextRanker
from repro.data.model import POIRecord

#: The standard RRF dampening constant.
DEFAULT_RRF_K = 60.0


class ReciprocalRankFusion(TextRanker):
    """Fuses the rankings of several :class:`TextRanker` components."""

    name = "RRF"

    def __init__(
        self,
        rankers: Sequence[TextRanker],
        k0: float = DEFAULT_RRF_K,
        weights: Sequence[float] | None = None,
    ) -> None:
        if not rankers:
            raise ValueError("fusion needs at least one component ranker")
        if k0 <= 0:
            raise ValueError(f"k0 must be positive, got {k0}")
        if weights is not None and len(weights) != len(rankers):
            raise ValueError(
                f"got {len(weights)} weights for {len(rankers)} rankers"
            )
        self._rankers = list(rankers)
        self._k0 = k0
        self._weights = list(weights) if weights is not None else [1.0] * len(rankers)
        self.name = "RRF(" + "+".join(r.name for r in rankers) + ")"

    def fit(self, records: Sequence[POIRecord]) -> "ReciprocalRankFusion":
        """Fit every component on the corpus."""
        for ranker in self._rankers:
            ranker.fit(records)
        return self

    def rank(
        self, query_text: str, candidates: Sequence[POIRecord], k: int
    ) -> list[RankedPOI]:
        scores: dict[str, float] = {}
        # Each component ranks the full candidate set so ranks are
        # comparable; fused score accumulates reciprocal ranks.
        pool = max(k, len(candidates))
        for ranker, weight in zip(self._rankers, self._weights):
            ranked = ranker.rank(query_text, candidates, pool)
            for rank, result in enumerate(ranked):
                if result.score <= 0.0:
                    continue  # a zero-score result carries no evidence
                scores[result.business_id] = scores.get(
                    result.business_id, 0.0
                ) + weight / (self._k0 + rank + 1)
        fused = [RankedPOI(business_id, score) for business_id, score in scores.items()]
        return self._top_k(fused, k)
