"""Latent Dirichlet Allocation baseline.

The paper's weaker baseline, following Qian et al. (2016/2018): documents
and queries are represented by their topic distributions, and relevance is
distribution similarity. As the paper observes, tips and queries are short,
"making it difficult for LDA to learn accurate distributions" — which is
exactly the behaviour reproduced here.

Inference is mean-field variational EM (Blei, Ng & Jordan 2003), fully
vectorized with numpy so fitting a city corpus takes seconds. Queries are
folded in with the E-step against the learned topics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.ranker import RankedPOI, TextRanker, record_text
from repro.baselines.tfidf import preprocess
from repro.data.model import POIRecord
from repro.errors import EvaluationError
from repro.text.similarity import jensen_shannon_similarity
from repro.text.vocabulary import Vocabulary


class LdaModel:
    """Variational-EM LDA over bag-of-words documents."""

    def __init__(
        self,
        n_topics: int = 20,
        alpha: float | None = None,
        eta: float = 0.01,
        max_iterations: int = 30,
        e_step_iterations: int = 15,
        seed: int = 7,
    ) -> None:
        if n_topics < 2:
            raise ValueError(f"n_topics must be >= 2, got {n_topics}")
        self.n_topics = n_topics
        self.alpha = alpha if alpha is not None else 1.0 / n_topics
        self.eta = eta
        self.max_iterations = max_iterations
        self.e_step_iterations = e_step_iterations
        self._rng = np.random.default_rng(seed)
        #: topic-word distribution, shape (K, V); set by fit().
        self.topic_word: np.ndarray | None = None

    def _e_step(
        self,
        docs: list[tuple[np.ndarray, np.ndarray]],
        expelog_beta: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One variational E-step.

        Returns (gamma, sstats): per-document topic posteriors and the
        sufficient statistics for the M-step.
        """
        n_docs = len(docs)
        k = self.n_topics
        gamma = self._rng.gamma(100.0, 0.01, size=(n_docs, k))
        sstats = np.zeros_like(expelog_beta)
        for d, (term_ids, counts) in enumerate(docs):
            if term_ids.size == 0:
                continue
            gamma_d = gamma[d]
            expelog_theta = np.exp(_dirichlet_expectation_1d(gamma_d))
            beta_d = expelog_beta[:, term_ids]
            phinorm = expelog_theta @ beta_d + 1e-100
            for _ in range(self.e_step_iterations):
                gamma_d = self.alpha + expelog_theta * (
                    (counts / phinorm) @ beta_d.T
                )
                new_theta = np.exp(_dirichlet_expectation_1d(gamma_d))
                if np.mean(np.abs(new_theta - expelog_theta)) < 1e-4:
                    expelog_theta = new_theta
                    break
                expelog_theta = new_theta
                phinorm = expelog_theta @ beta_d + 1e-100
            gamma[d] = gamma_d
            sstats[:, term_ids] += np.outer(expelog_theta, counts / phinorm) * beta_d
        return gamma, sstats

    def fit(self, docs: list[tuple[np.ndarray, np.ndarray]], vocab_size: int) -> "LdaModel":
        """Fit topics on ``docs`` = list of (term_ids, counts) arrays."""
        if vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        k = self.n_topics
        lam = self._rng.gamma(100.0, 0.01, size=(k, vocab_size))
        for _ in range(self.max_iterations):
            expelog_beta = np.exp(_dirichlet_expectation_2d(lam))
            _, sstats = self._e_step(docs, expelog_beta)
            lam = self.eta + sstats
        self.topic_word = lam / lam.sum(axis=1, keepdims=True)
        return self

    def transform(self, docs: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Infer normalized topic distributions for ``docs``."""
        if self.topic_word is None:
            raise EvaluationError("LdaModel.transform called before fit")
        expelog_beta = np.exp(np.log(self.topic_word + 1e-100))
        gamma, _ = self._e_step(docs, expelog_beta)
        return gamma / gamma.sum(axis=1, keepdims=True)


def _dirichlet_expectation_1d(alpha: np.ndarray) -> np.ndarray:
    from scipy.special import psi  # local import keeps scipy optional elsewhere

    return psi(alpha) - psi(alpha.sum())


def _dirichlet_expectation_2d(alpha: np.ndarray) -> np.ndarray:
    from scipy.special import psi

    return psi(alpha) - psi(alpha.sum(axis=1, keepdims=True))


class LdaRanker(TextRanker):
    """Ranks by Jensen–Shannon similarity of topic distributions."""

    name = "LDA"

    def __init__(
        self,
        n_topics: int = 20,
        max_iterations: int = 30,
        seed: int = 7,
        min_term_frequency: int = 2,
    ) -> None:
        self._model = LdaModel(
            n_topics=n_topics, max_iterations=max_iterations, seed=seed
        )
        self._min_tf = min_term_frequency
        self._vocabulary: Vocabulary | None = None
        self._doc_topics: dict[str, np.ndarray] = {}

    def _encode(self, text: str) -> tuple[np.ndarray, np.ndarray]:
        assert self._vocabulary is not None
        ids = self._vocabulary.encode(preprocess(text))
        if not ids:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        unique, counts = np.unique(np.asarray(ids, dtype=np.int64), return_counts=True)
        return unique, counts.astype(np.float64)

    def fit(self, records: Sequence[POIRecord]) -> "LdaRanker":
        """Learn topics on the city corpus and cache per-POI distributions."""
        full_vocab = Vocabulary()
        for record in records:
            full_vocab.add_document(preprocess(record_text(record)))
        self._vocabulary = full_vocab.prune(min_frequency=self._min_tf)

        docs = [self._encode(record_text(r)) for r in records]
        self._model.fit(docs, vocab_size=len(self._vocabulary))
        topic_dists = self._model.transform(docs)
        self._doc_topics = {
            record.business_id: topic_dists[i]
            for i, record in enumerate(records)
        }
        return self

    def rank(
        self, query_text: str, candidates: Sequence[POIRecord], k: int
    ) -> list[RankedPOI]:
        if self._vocabulary is None:
            raise EvaluationError("LdaRanker.rank called before fit")
        query_topics = self._model.transform([self._encode(query_text)])[0]
        scored = []
        for record in candidates:
            doc_topics = self._doc_topics.get(record.business_id)
            if doc_topics is None:
                doc_topics = self._model.transform(
                    [self._encode(record_text(record))]
                )[0]
            scored.append(
                RankedPOI(
                    record.business_id,
                    jensen_shannon_similarity(query_topics, doc_topics),
                )
            )
        return self._top_k(scored, k)
