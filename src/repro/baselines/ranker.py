"""Common interface for textual relevance rankers (the paper's baselines)."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.data.model import POIRecord


@dataclass(frozen=True)
class RankedPOI:
    """One ranked result: the POI's id and its relevance score."""

    business_id: str
    score: float


class TextRanker(ABC):
    """Ranks POIs in a query range by textual relevance to the query.

    Baselines are *fitted* on a city corpus (IDF statistics, LDA topics)
    and then rank candidate subsets at query time, mirroring the paper's
    setup where LDA and TF-IDF "rank the POIs in the query range".
    """

    name: str = "abstract"

    @abstractmethod
    def fit(self, records: Sequence[POIRecord]) -> "TextRanker":
        """Learn corpus statistics; returns self for chaining."""

    @abstractmethod
    def rank(
        self, query_text: str, candidates: Sequence[POIRecord], k: int
    ) -> list[RankedPOI]:
        """Top-``k`` candidates by descending relevance to ``query_text``."""

    @staticmethod
    def _top_k(scored: list[RankedPOI], k: int) -> list[RankedPOI]:
        """Sort by (-score, id) for deterministic ties and truncate to k."""
        scored.sort(key=lambda r: (-r.score, r.business_id))
        return scored[:k]


def record_text(record: POIRecord) -> str:
    """The document text baselines index for a POI.

    Uses the same fields as the embedding input (name, address, categories,
    tips/summary) so every system sees the same evidence.
    """
    return record.document_text(use_summary=False)
