"""Boolean keyword matching — the Figure-1 strawman.

This is the "Google Maps" behaviour the paper motivates against: return
POIs in the range whose text literally contains the query keywords. A café
whose name and tips never say "café" is invisible to it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.ranker import RankedPOI, TextRanker, record_text
from repro.data.model import POIRecord
from repro.text.stopwords import remove_stopwords
from repro.text.tokenize import tokenize


class KeywordMatcher(TextRanker):
    """Boolean AND/OR matching on raw tokens (no stemming, no weighting)."""

    name = "Keyword"

    def __init__(self, match_all: bool = True) -> None:
        self._match_all = match_all
        self._doc_tokens: dict[str, frozenset[str]] = {}

    def fit(self, records: Sequence[POIRecord]) -> "KeywordMatcher":
        """Pre-tokenize the corpus."""
        self._doc_tokens = {
            r.business_id: frozenset(tokenize(record_text(r))) for r in records
        }
        return self

    def _tokens_of(self, record: POIRecord) -> frozenset[str]:
        cached = self._doc_tokens.get(record.business_id)
        if cached is None:
            cached = frozenset(tokenize(record_text(record)))
            self._doc_tokens[record.business_id] = cached
        return cached

    def matches(self, query_text: str, record: POIRecord) -> bool:
        """Whether the record's text contains the query keywords."""
        terms = remove_stopwords(tokenize(query_text))
        if not terms:
            return False
        doc = self._tokens_of(record)
        if self._match_all:
            return all(t in doc for t in terms)
        return any(t in doc for t in terms)

    def rank(
        self, query_text: str, candidates: Sequence[POIRecord], k: int
    ) -> list[RankedPOI]:
        """Matching candidates first (score = matched-term fraction)."""
        terms = remove_stopwords(tokenize(query_text))
        if not terms:
            return []
        scored = []
        for record in candidates:
            doc = self._tokens_of(record)
            hit = sum(1 for t in terms if t in doc)
            if self._match_all and hit < len(terms):
                continue
            if hit == 0:
                continue
            scored.append(RankedPOI(record.business_id, hit / len(terms)))
        return self._top_k(scored, k)
