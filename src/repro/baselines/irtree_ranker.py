"""IR-tree-style baseline: boolean keywords, ranked by distance.

The classic efficient spatial keyword systems the paper's related work
surveys (IR-tree, Cong et al. 2009) return objects *containing the query
keywords*, ranked by spatial proximity. Wrapping our IR-tree in the
:class:`TextRanker` interface lets the evaluation harness score that
paradigm directly — demonstrating that the efficiency-focused classics
inherit exactly the keyword-matching blindness of Figure 1.

The ranker is corpus-backed: it builds the IR-tree once over the fitted
records and, per query, runs a top-k nearest-keyword query from the
candidate set's centroid (the paper's queries come as a range, not a
point; the centroid is the natural anchor).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.ranker import RankedPOI, TextRanker, record_text
from repro.data.model import POIRecord
from repro.errors import EvaluationError
from repro.spatial.irtree import IRTree
from repro.text.stopwords import remove_stopwords
from repro.text.tokenize import tokenize


class IRTreeRanker(TextRanker):
    """Boolean-AND keyword retrieval over an IR-tree, nearest first."""

    name = "IR-tree"

    def __init__(self, max_entries: int = 16) -> None:
        self._max_entries = max_entries
        self._tree: IRTree | None = None

    def fit(self, records: Sequence[POIRecord]) -> "IRTreeRanker":
        """Bulk-load the IR-tree over the corpus texts."""
        self._tree = IRTree(
            [
                (r.business_id, r.latitude, r.longitude, record_text(r))
                for r in records
            ],
            max_entries=self._max_entries,
        )
        return self

    def rank(
        self, query_text: str, candidates: Sequence[POIRecord], k: int
    ) -> list[RankedPOI]:
        if self._tree is None:
            raise EvaluationError("IRTreeRanker.rank called before fit")
        terms = remove_stopwords(tokenize(query_text))
        if not terms or not candidates:
            return []
        center_lat = sum(r.latitude for r in candidates) / len(candidates)
        center_lon = sum(r.longitude for r in candidates) / len(candidates)
        candidate_ids = {r.business_id for r in candidates}
        # Over-fetch: tree results outside the candidate range are skipped.
        hits = self._tree.nearest_keyword_query(
            center_lat, center_lon, terms, k=max(4 * k, 32)
        )
        ranked = [
            # Nearer is better; scores decrease with distance.
            RankedPOI(object_id, 1.0 / (1.0 + distance))
            for object_id, distance in hits
            if object_id in candidate_ids
        ]
        return ranked[:k]
