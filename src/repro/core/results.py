"""Query result types: ranked answers with LLM explanations and timings."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ResultEntry:
    """One POI in a query answer."""

    business_id: str
    name: str
    score: float           # similarity (embedding) or rank-derived score
    reason: str = ""       # the LLM's explanation (empty for non-LLM systems)
    recommended: bool = True  # False = fetched by embeddings, filtered by LLM


@dataclass(frozen=True)
class QueryTimings:
    """Wall-clock and modelled latencies of one query (paper §4, timing)."""

    filter_s: float            # measured: range filter + embedding kNN
    refine_compute_s: float    # measured: simulated-LLM compute
    refine_modeled_s: float    # modelled: what a hosted LLM would take

    @property
    def total_modeled_s(self) -> float:
        """Filter time plus modelled LLM latency (the paper's user view)."""
        return self.filter_s + self.refine_modeled_s


@dataclass(frozen=True)
class QueryResult:
    """The full outcome of one SemaSK query."""

    query_text: str
    entries: tuple[ResultEntry, ...]        # recommended, in priority order
    filtered_out: tuple[ResultEntry, ...]   # embedding hits the LLM rejected
    timings: QueryTimings
    candidates_considered: int
    raw_llm_output: str = field(default="", repr=False)

    def top_k(self, k: int) -> list[ResultEntry]:
        """The first ``k`` recommended entries."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        return list(self.entries[:k])

    def ids(self, k: int | None = None) -> list[str]:
        """Business ids of recommended entries (optionally first ``k``)."""
        entries = self.entries if k is None else self.entries[:k]
        return [e.business_id for e in entries]
