"""Persistence for prepared cities.

Data preparation (geocoding, summarization, embedding) is the expensive
offline phase; a deployment prepares once and serves queries forever.
:func:`save_prepared` / :func:`load_prepared` snapshot a
:class:`~repro.core.prepare.PreparedCity` to disk — the dataset as JSONL
and the vector collection as a directory snapshot — so a served system
restarts without re-running the pipeline. Sharded collections round-trip
too: the snapshot directory then contains one sub-directory per shard,
and the reloaded city serves queries through the same sharded backend it
was prepared with (see :mod:`repro.vectordb.persistence`).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.prepare import PreparedCity
from repro.data.dataset import Dataset
from repro.embeddings.base import EmbeddingModel
from repro.embeddings.semantic import SemanticEmbedder
from repro.errors import DatasetError
from repro.vectordb.client import VectorDBClient
from repro.vectordb.persistence import load_collection, save_collection

_MANIFEST = "prepared.json"
_DATASET = "dataset.jsonl.gz"
_COLLECTION_DIR = "collection"


def collection_snapshot_dir(directory: str | Path) -> Path:
    """The vector-collection snapshot inside a prepared-city snapshot.

    Public because WAL helpers need this path: the collection's
    write-ahead logs live in a *sibling* of this directory (see
    :func:`repro.vectordb.wal.wal_directory`).
    """
    return Path(directory) / _COLLECTION_DIR


def has_prepared(directory: str | Path) -> bool:
    """Whether ``directory`` holds a :func:`save_prepared` snapshot.

    Checks only for the manifest — :func:`load_prepared` still validates
    the full contents (and raises :class:`~repro.errors.DatasetError`)
    when the snapshot is actually read.
    """
    return (Path(directory) / _MANIFEST).exists()


def save_prepared(prepared: PreparedCity, directory: str | Path) -> None:
    """Write a prepared city (dataset + vector collection) to ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    prepared.dataset.save(directory / _DATASET)
    collection = prepared.client.get_collection(prepared.collection_name)
    save_collection(collection, directory / _COLLECTION_DIR)
    manifest = {
        "collection_name": prepared.collection_name,
        "city_code": prepared.dataset.city_code,
        "poi_count": len(prepared.dataset),
        "embedder_dim": prepared.embedder.dim,
        "embedder_model": getattr(prepared.embedder, "model_id", "unknown"),
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def load_prepared(
    directory: str | Path,
    embedder: EmbeddingModel | None = None,
    client: VectorDBClient | None = None,
    mmap: bool = False,
    wal: str | None = None,
) -> PreparedCity:
    """Load a prepared city written by :func:`save_prepared`.

    ``embedder`` must match the one used at preparation time (the manifest
    records dim and model id and mismatches are rejected) — query vectors
    have to live in the same space as the stored document vectors.

    ``mmap=True`` memory-maps the collection's vector matrix instead of
    loading it into RAM (schema v3 snapshots; see
    :func:`repro.vectordb.persistence.load_collection`) — restarts of a
    served deployment fault in only the pages queries touch. Snapshots
    whose collection was prepared with an eager index build reload with
    their HNSW graphs attached, so the first query pays no
    reconstruction either way.

    ``wal`` (an fsync mode: ``"always"``, ``"batch"``, or ``"off"``)
    makes the collection durable: any write-ahead-log tail beside the
    collection snapshot is replayed on load (that part happens even with
    ``wal=None``) and live logs are attached so writes served afterwards
    survive a crash.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise DatasetError(f"no prepared-city snapshot at {directory}")
    manifest = json.loads(manifest_path.read_text())

    if embedder is None:
        embedder = SemanticEmbedder(dim=manifest["embedder_dim"])
    if embedder.dim != manifest["embedder_dim"]:
        raise DatasetError(
            f"embedder dim {embedder.dim} does not match snapshot dim "
            f"{manifest['embedder_dim']}"
        )
    model_id = getattr(embedder, "model_id", "unknown")
    if model_id != manifest["embedder_model"]:
        raise DatasetError(
            f"embedder model {model_id!r} does not match snapshot model "
            f"{manifest['embedder_model']!r}"
        )

    dataset = Dataset.load(directory / _DATASET)
    if len(dataset) != manifest["poi_count"]:
        raise DatasetError(
            f"snapshot dataset has {len(dataset)} POIs, manifest says "
            f"{manifest['poi_count']}"
        )
    collection = load_collection(directory / _COLLECTION_DIR, mmap=mmap, wal=wal)
    if client is None:
        client = VectorDBClient()
    client.attach_collection(collection)
    return PreparedCity(
        dataset=dataset,
        collection_name=manifest["collection_name"],
        client=client,
        embedder=embedder,
    )
