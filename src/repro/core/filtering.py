"""The filtering stage (paper §3.2, "Filtering").

Given a query, (1) restrict to POIs inside the query range via a payload
geo filter, then (2) run an approximate kNN search over embeddings to pull
the top-k most semantically similar candidates — all without any LLM call,
"to limit the LLM costs of the refinement step".
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.query import SpatialKeywordQuery
from repro.embeddings.base import EmbeddingModel
from repro.geo.bbox import BoundingBox
from repro.vectordb.client import VectorDBClient
from repro.vectordb.collection import SearchHit
from repro.vectordb.filters import GeoBoundingBoxFilter

#: Default candidate count fetched for refinement (the paper's top-k).
DEFAULT_CANDIDATES = 10


@dataclass(frozen=True)
class Candidate:
    """One filtering-stage hit."""

    business_id: str
    name: str
    score: float
    payload: dict[str, Any]


class FilteringStage:
    """Range filter + embedding kNN against the vector database."""

    def __init__(
        self,
        client: VectorDBClient,
        collection_name: str,
        embedder: EmbeddingModel,
        ef: int | None = None,
    ) -> None:
        self._client = client
        self._collection = collection_name
        self._embedder = embedder
        self._ef = ef

    def run(
        self, query: SpatialKeywordQuery, k: int = DEFAULT_CANDIDATES
    ) -> list[Candidate]:
        """Top-``k`` in-range candidates by embedding similarity."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        vector = self._embedder.embed(query.text)
        geo_filter = GeoBoundingBoxFilter("location", query.range)
        hits = self._client.search(
            self._collection, vector, k, flt=geo_filter, ef=self._ef
        )
        return _to_candidates(hits)

    def run_batch(
        self,
        queries: Sequence[SpatialKeywordQuery],
        k: int = DEFAULT_CANDIDATES,
    ) -> list[list[Candidate]]:
        """Per-query candidates for a whole batch, sharing work across it.

        Query texts embed in one :meth:`EmbeddingModel.embed_batch` call
        (repeated texts hit the embedder's dedup/cache), and queries with
        the same spatial range share one filtered ``search_batch`` — the
        geo filter's candidate set is evaluated once per distinct range
        instead of once per query. Results are equivalent to calling
        :meth:`run` once per query, in order.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not queries:
            return []
        vectors = self._embedder.embed_batch([q.text for q in queries])
        groups: dict[BoundingBox, list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault(query.range, []).append(position)
        results: list[list[Candidate]] = [[] for _ in queries]
        for box, positions in groups.items():
            geo_filter = GeoBoundingBoxFilter("location", box)
            hit_lists = self._client.search_batch(
                self._collection, vectors[positions], k,
                flt=geo_filter, ef=self._ef,
            )
            for position, hits in zip(positions, hit_lists):
                results[position] = _to_candidates(hits)
        return results


def _to_candidates(hits: list[SearchHit]) -> list[Candidate]:
    return [
        Candidate(
            business_id=hit.id,
            name=str(hit.payload.get("name", hit.id)),
            score=hit.score,
            payload=hit.payload,
        )
        for hit in hits
    ]
