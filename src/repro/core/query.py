"""The semantics-aware spatial keyword query model (paper §3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint

#: The paper's query range: a 5 km x 5 km region centred on a point.
DEFAULT_RANGE_KM = 5.0


@dataclass(frozen=True)
class SpatialKeywordQuery:
    """A query ``q`` with a spatial range ``q.r`` and textual constraint ``q.T``."""

    range: BoundingBox
    text: str

    def __post_init__(self) -> None:
        if not self.text or not self.text.strip():
            raise QueryError("query text must be non-empty")

    @classmethod
    def around(
        cls,
        center: GeoPoint,
        text: str,
        width_km: float = DEFAULT_RANGE_KM,
        height_km: float = DEFAULT_RANGE_KM,
    ) -> "SpatialKeywordQuery":
        """Build a query with the paper's square range around ``center``."""
        return cls(
            range=BoundingBox.around(center, width_km, height_km), text=text
        )
