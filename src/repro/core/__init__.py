"""SemaSK core: the paper's data-preparation and query-processing modules."""

from repro.core.conversation import ConversationTurn, ConversationalSession
from repro.core.filtering import DEFAULT_CANDIDATES, Candidate, FilteringStage
from repro.core.pipeline import SemaSK, SemaSKConfig
from repro.core.prepare import SUMMARIZE_MODEL, DataPreparation, PreparedCity
from repro.core.query import DEFAULT_RANGE_KM, SpatialKeywordQuery
from repro.core.refinement import (
    RefinementOutcome,
    RefinementStage,
    candidate_information,
)
from repro.core.results import QueryResult, QueryTimings, ResultEntry
from repro.core.spatial_filter import RTreeFilteringStage
from repro.core.storage import load_prepared, save_prepared
from repro.core.variants import semask, semask_em, semask_o1

__all__ = [
    "Candidate",
    "ConversationTurn",
    "ConversationalSession",
    "DEFAULT_CANDIDATES",
    "DEFAULT_RANGE_KM",
    "DataPreparation",
    "FilteringStage",
    "PreparedCity",
    "QueryResult",
    "QueryTimings",
    "RefinementOutcome",
    "RTreeFilteringStage",
    "RefinementStage",
    "ResultEntry",
    "SUMMARIZE_MODEL",
    "SemaSK",
    "SemaSKConfig",
    "SpatialKeywordQuery",
    "candidate_information",
    "load_prepared",
    "save_prepared",
    "semask",
    "semask_em",
    "semask_o1",
]
