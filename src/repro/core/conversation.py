"""Conversational query refinement (extension; the paper's future work).

The paper closes by noting "opportunities for further studies on
semantics-aware query processing". The natural next step for a demo system
is *follow-up turns*: the user narrows an answer ("actually, somewhere
cheaper", "it needs outdoor seating") without restating the whole query.

:class:`ConversationalSession` keeps the last query's candidate pool and
answers follow-ups by re-running the LLM refinement over the *combined*
query text — original intent plus accumulated follow-up constraints — over
the same spatial range. This reuses the expensive filtering stage across
turns and keeps every turn explainable (each answer carries the LLM's
reasons, as in the base system).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import SemaSK
from repro.core.query import SpatialKeywordQuery
from repro.core.results import QueryResult
from repro.errors import QueryError
from repro.geo.bbox import BoundingBox


@dataclass
class ConversationTurn:
    """One turn of the session: what was asked and what came back."""

    text: str             # the user's utterance this turn
    combined_text: str    # the full constraint set sent to the pipeline
    result: QueryResult


@dataclass
class ConversationalSession:
    """Multi-turn refinement over one spatial range."""

    system: SemaSK
    range: BoundingBox
    turns: list[ConversationTurn] = field(default_factory=list)

    def ask(self, text: str) -> QueryResult:
        """Start (or restart) the conversation with a fresh query."""
        if not text or not text.strip():
            raise QueryError("query text must be non-empty")
        self.turns.clear()
        return self._run(text, text)

    def refine(self, follow_up: str) -> QueryResult:
        """Add a follow-up constraint to the current conversation."""
        if not self.turns:
            raise QueryError(
                "no active conversation; call ask() before refine()"
            )
        if not follow_up or not follow_up.strip():
            raise QueryError("follow-up text must be non-empty")
        combined = f"{self.turns[-1].combined_text} Also: {follow_up.strip()}"
        return self._run(follow_up, combined)

    def _run(self, text: str, combined: str) -> QueryResult:
        result = self.system.query(
            SpatialKeywordQuery(range=self.range, text=combined)
        )
        self.turns.append(
            ConversationTurn(text=text, combined_text=combined, result=result)
        )
        return result

    @property
    def current_result(self) -> QueryResult | None:
        """The latest turn's result (None before the first ask)."""
        return self.turns[-1].result if self.turns else None

    def history(self) -> list[str]:
        """The user's utterances so far, in order."""
        return [turn.text for turn in self.turns]
