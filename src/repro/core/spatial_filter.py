"""R-tree-backed filtering stage (index ablation, extension).

The default :class:`~repro.core.filtering.FilteringStage` delegates the
spatial predicate to the vector database's payload filter — a scan, as in
Qdrant's filtered search over small collections. This alternative first
resolves the range with a bulk-loaded R-tree (the classic spatial-keyword
design the paper's related work builds on) and then lets the vector
database score only the surviving ids. Results are identical; the ablation
benchmark compares the latency profiles.
"""

from __future__ import annotations

from repro.core.filtering import Candidate
from repro.core.prepare import PreparedCity
from repro.core.query import SpatialKeywordQuery
from repro.spatial.rtree import RTree
from repro.vectordb.filters import FieldIn


class RTreeFilteringStage:
    """Spatial range via R-tree, then embedding kNN over the survivors."""

    def __init__(self, prepared: PreparedCity) -> None:
        self._client = prepared.client
        self._collection = prepared.collection_name
        self._embedder = prepared.embedder
        self._rtree = RTree.bulk_load(
            [
                (record.business_id, record.latitude, record.longitude)
                for record in prepared.dataset
            ]
        )

    def __len__(self) -> int:
        return len(self._rtree)

    def run(self, query: SpatialKeywordQuery, k: int = 10) -> list[Candidate]:
        """Top-``k`` in-range candidates (same contract as FilteringStage)."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        in_range = self._rtree.range_query(query.range)
        if not in_range:
            return []
        vector = self._embedder.embed(query.text)
        hits = self._client.search(
            self._collection,
            vector,
            k,
            flt=FieldIn("business_id", in_range),
        )
        return [
            Candidate(
                business_id=hit.id,
                name=str(hit.payload.get("name", hit.id)),
                score=hit.score,
                payload=hit.payload,
            )
            for hit in hits
        ]
