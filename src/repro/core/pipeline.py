"""The SemaSK query pipeline: filtering + (optional) LLM refinement.

``SemaSK`` wires the two stages of paper §3.2 over a prepared city. The
``refine_model`` knob realizes the paper's system variants:

* ``"gpt-4o"``  — **SemaSK** (the default system);
* ``"o1-mini"`` — **SemaSK-O1**;
* ``None``      — **SemaSK-EM** (embeddings only, no refinement).

Batched execution: :meth:`SemaSK.query_many` answers a list of queries
through the batched read path — one ``embed_batch`` call for all query
texts, shared filter evaluation per distinct range, and (optionally)
LLM refinement fanned out over a thread pool. Each query's
:class:`QueryResult` is equivalent to what sequential :meth:`SemaSK.query`
calls would return, with the batch's filtering time amortized evenly
across the per-query timings. The serving layer builds on this
equivalence: concurrent single-query HTTP clients are coalesced into
one ``query_many`` call per dispatch window
(:class:`repro.serving.batcher.QueryCoalescer`).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.filtering import DEFAULT_CANDIDATES, Candidate, FilteringStage
from repro.core.prepare import PreparedCity
from repro.core.query import SpatialKeywordQuery
from repro.core.refinement import RefinementStage
from repro.core.results import QueryResult, QueryTimings, ResultEntry
from repro.llm.base import LLMClient
from repro.llm.simulated import SimulatedLLM


@dataclass(frozen=True)
class SemaSKConfig:
    """Tunables of the SemaSK pipeline."""

    refine_model: str | None = "gpt-4o"
    candidate_k: int = DEFAULT_CANDIDATES
    ef: int | None = None  # HNSW beam width override for filtering

    def variant_name(self) -> str:
        """The paper's name for this configuration."""
        if self.refine_model is None:
            return "SemaSK-EM"
        if self.refine_model == "o1-mini":
            return "SemaSK-O1"
        if self.refine_model == "gpt-4o":
            return "SemaSK"
        return f"SemaSK[{self.refine_model}]"


class SemaSK:
    """The full semantics-aware spatial keyword query system."""

    def __init__(
        self,
        prepared: PreparedCity,
        config: SemaSKConfig | None = None,
        llm: LLMClient | None = None,
        filtering: FilteringStage | None = None,
    ) -> None:
        self._config = config or SemaSKConfig()
        self._llm = llm if llm is not None else SimulatedLLM()
        # Any object with run(query, k) -> list[Candidate] can stand in for
        # the default stage (e.g. the R-tree variant in core.spatial_filter).
        self._filtering = filtering or FilteringStage(
            prepared.client,
            prepared.collection_name,
            prepared.embedder,
            ef=self._config.ef,
        )
        self._refinement = (
            RefinementStage(self._llm, self._config.refine_model)
            if self._config.refine_model is not None
            else None
        )

    @property
    def name(self) -> str:
        """Variant name (SemaSK / SemaSK-O1 / SemaSK-EM)."""
        return self._config.variant_name()

    @property
    def config(self) -> SemaSKConfig:
        """The pipeline configuration."""
        return self._config

    @property
    def llm(self) -> LLMClient:
        """The LLM client (ledger carries usage/cost accounting)."""
        return self._llm

    def query(self, query: SpatialKeywordQuery) -> QueryResult:
        """Answer one query with the filtering-and-refinement procedure."""
        t0 = time.perf_counter()
        candidates = self._filtering.run(query, k=self._config.candidate_k)
        filter_s = time.perf_counter() - t0

        if self._refinement is None:
            return self._embedding_only_result(query, candidates, filter_s)

        t1 = time.perf_counter()
        outcome = self._refinement.run(query.text, candidates)
        refine_compute_s = time.perf_counter() - t1
        return self._refined_result(
            query, candidates, outcome, filter_s, refine_compute_s
        )

    def query_many(
        self,
        queries: Sequence[SpatialKeywordQuery],
        *,
        parallel_refine: int = 1,
    ) -> list[QueryResult]:
        """Answer many queries through the batched read path.

        Filtering runs once for the whole batch (batched embedding, shared
        range-filter evaluation, matrix scoring); refinement then runs per
        query, on a thread pool of ``parallel_refine`` workers when > 1
        (LLM calls are I/O-bound against a hosted provider). Results are
        returned in query order and are equivalent to sequential
        :meth:`query` calls. Each result's ``filter_s`` is the batch
        filtering time divided by the batch size.
        """
        if parallel_refine <= 0:
            raise ValueError(
                f"parallel_refine must be positive, got {parallel_refine}"
            )
        if not queries:
            return []

        t0 = time.perf_counter()
        run_batch = getattr(self._filtering, "run_batch", None)
        if run_batch is not None:
            candidate_lists = run_batch(queries, k=self._config.candidate_k)
        else:  # duck-typed stages without a batch path fall back per query
            candidate_lists = [
                self._filtering.run(q, k=self._config.candidate_k)
                for q in queries
            ]
        filter_s = (time.perf_counter() - t0) / len(queries)

        if self._refinement is None:
            return [
                self._embedding_only_result(query, candidates, filter_s)
                for query, candidates in zip(queries, candidate_lists)
            ]

        def refine(
            pair: tuple[SpatialKeywordQuery, list[Candidate]]
        ) -> QueryResult:
            query, candidates = pair
            t1 = time.perf_counter()
            outcome = self._refinement.run(query.text, candidates)
            refine_compute_s = time.perf_counter() - t1
            return self._refined_result(
                query, candidates, outcome, filter_s, refine_compute_s
            )

        pairs = list(zip(queries, candidate_lists))
        if parallel_refine == 1 or len(pairs) == 1:
            return [refine(pair) for pair in pairs]
        with ThreadPoolExecutor(max_workers=parallel_refine) as pool:
            return list(pool.map(refine, pairs))

    # ------------------------------------------------------------------
    # result assembly (shared by query and query_many)
    # ------------------------------------------------------------------

    def _embedding_only_result(
        self,
        query: SpatialKeywordQuery,
        candidates: list[Candidate],
        filter_s: float,
    ) -> QueryResult:
        entries = tuple(
            ResultEntry(
                business_id=c.business_id,
                name=c.name,
                score=c.score,
                reason="",
                recommended=True,
            )
            for c in candidates
        )
        return QueryResult(
            query_text=query.text,
            entries=entries,
            filtered_out=(),
            timings=QueryTimings(
                filter_s=filter_s,
                refine_compute_s=0.0,
                refine_modeled_s=0.0,
            ),
            candidates_considered=len(candidates),
        )

    def _refined_result(
        self,
        query: SpatialKeywordQuery,
        candidates: list[Candidate],
        outcome,
        filter_s: float,
        refine_compute_s: float,
    ) -> QueryResult:
        n = max(len(outcome.accepted), 1)
        entries = tuple(
            ResultEntry(
                business_id=c.business_id,
                name=c.name,
                score=1.0 - rank / n,
                reason=reason,
                recommended=True,
            )
            for rank, (c, reason) in enumerate(outcome.accepted)
        )
        filtered_out = tuple(
            ResultEntry(
                business_id=c.business_id,
                name=c.name,
                score=c.score,
                reason="Filtered out by the LLM refinement step.",
                recommended=False,
            )
            for c in outcome.rejected
        )
        return QueryResult(
            query_text=query.text,
            entries=entries,
            filtered_out=filtered_out,
            timings=QueryTimings(
                filter_s=filter_s,
                refine_compute_s=refine_compute_s,
                refine_modeled_s=outcome.modeled_latency_s,
            ),
            candidates_considered=len(candidates),
            raw_llm_output=outcome.raw_output,
        )
