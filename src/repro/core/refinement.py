"""The refinement stage (paper §3.2, "Refinement").

The top-k candidates' raw attributes are serialized into the paper's
refinement prompt; the LLM returns a priority-ordered ``{name: reason}``
dictionary of the candidates it judges relevant, which is parsed and
mapped back to POIs. Candidates the LLM leaves out are retained as
"filtered out" (the demo's blue markers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.filtering import Candidate
from repro.llm.base import ChatMessage, LLMClient
from repro.llm.parsing import parse_ranked_dict
from repro.llm.prompts import build_rerank_prompt

#: Attribute keys sent to the LLM (the "Raw POI attributes" of the prompt).
_PROMPT_ATTRIBUTES: tuple[str, ...] = (
    "name", "address", "neighborhood", "city", "state", "stars",
    "categories", "hours", "tip_summary", "tips",
)


@dataclass(frozen=True)
class RefinementOutcome:
    """Parsed refinement result."""

    accepted: list[tuple[Candidate, str]]   # (candidate, LLM reason), ordered
    rejected: list[Candidate]               # candidates the LLM filtered out
    raw_output: str
    modeled_latency_s: float


def candidate_information(candidate: Candidate) -> dict[str, Any]:
    """The attribute dict for one candidate as embedded in the prompt."""
    info = {
        key: candidate.payload[key]
        for key in _PROMPT_ATTRIBUTES
        if key in candidate.payload and candidate.payload[key] not in ("", None)
    }
    info.setdefault("name", candidate.name)
    return info


class RefinementStage:
    """LLM re-ranking of filtering-stage candidates."""

    def __init__(self, llm: LLMClient, model: str = "gpt-4o") -> None:
        self._llm = llm
        self._model = model

    @property
    def model(self) -> str:
        """The model id used for refinement."""
        return self._model

    def run(self, query_text: str, candidates: list[Candidate]) -> RefinementOutcome:
        """Re-rank ``candidates``; empty candidate lists short-circuit."""
        if not candidates:
            return RefinementOutcome(
                accepted=[], rejected=[], raw_output="{}", modeled_latency_s=0.0
            )
        information = [candidate_information(c) for c in candidates]
        prompt = build_rerank_prompt(information, query_text)
        completion = self._llm.chat(self._model, [ChatMessage("user", prompt)])
        ranked = parse_ranked_dict(completion.content)

        # Map returned names back to candidates. Duplicate names are
        # resolved in candidate order (first unclaimed wins), matching how
        # a user would read the answer.
        unclaimed: dict[str, list[Candidate]] = {}
        for candidate in candidates:
            unclaimed.setdefault(candidate.name, []).append(candidate)
        accepted: list[tuple[Candidate, str]] = []
        for name, reason in ranked:
            bucket = unclaimed.get(name)
            if bucket:
                accepted.append((bucket.pop(0), reason))
        accepted_ids = {c.business_id for c, _ in accepted}
        rejected = [c for c in candidates if c.business_id not in accepted_ids]
        return RefinementOutcome(
            accepted=accepted,
            rejected=rejected,
            raw_output=completion.content,
            modeled_latency_s=completion.latency_s,
        )
