"""The data-preparation module (paper §3.1).

Three steps, exactly as the paper lays out:

1. **Address completion** — reverse-geocode each POI's coordinates into
   city/county/suburb/neighborhood (synthetic geocoder offline).
2. **Tip summarization** — prompt the (simulated) GPT-3.5-Turbo with the
   paper's summarization prompt, one call per POI.
3. **Embedding generation** — embed "POI name, address, categories, hours,
   and tip summary" with the (simulated) text-embedding-3-small and store
   the vectors with full attribute payloads in the vector database.

Embedding generation also builds the collection's HNSW graph eagerly
(per-shard graphs in parallel worker processes for sharded collections)
— graph construction is the dominant offline cost, and paying it at
prepare time means the first query never stalls on a lazy build.
``eager_index=False`` restores the lazy behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import Dataset
from repro.embeddings.base import EmbeddingModel
from repro.embeddings.semantic import SemanticEmbedder
from repro.geo.geocoder import ReverseGeocoder
from repro.llm.base import ChatMessage, LLMClient
from repro.llm.parsing import parse_summary
from repro.llm.prompts import build_summarize_prompt
from repro.llm.simulated import SimulatedLLM
from repro.vectordb.client import VectorDBClient
from repro.vectordb.collection import PointStruct
from repro.vectordb.sharded import ShardedCollection

#: Model used for summarization, per the paper ("for its lower costs").
SUMMARIZE_MODEL = "gpt-3.5-turbo"


@dataclass
class PreparedCity:
    """Handle to a city that has been through data preparation."""

    dataset: Dataset
    collection_name: str
    client: VectorDBClient
    embedder: EmbeddingModel


class DataPreparation:
    """Runs the paper's three-step preparation over a city dataset."""

    def __init__(
        self,
        llm: LLMClient | None = None,
        embedder: EmbeddingModel | None = None,
        geocoder: ReverseGeocoder | None = None,
        client: VectorDBClient | None = None,
        summarize: bool = True,
        shards: int = 1,
        eager_index: bool = True,
        index_workers: int | None = None,
    ) -> None:
        self._llm = llm if llm is not None else SimulatedLLM()
        self._embedder = (
            embedder if embedder is not None else SemanticEmbedder()
        )
        self._geocoder = geocoder if geocoder is not None else ReverseGeocoder()
        self._client = client if client is not None else VectorDBClient()
        self._summarize = summarize
        self._shards = shards
        self._eager_index = eager_index
        self._index_workers = index_workers

    @property
    def llm(self) -> LLMClient:
        """The LLM client used for summarization (usage on its ledger)."""
        return self._llm

    @property
    def client(self) -> VectorDBClient:
        """The vector-database client collections are created in."""
        return self._client

    def complete_address(self, dataset: Dataset) -> None:
        """Step 1: fill county/suburb/neighborhood from coordinates."""
        for record in list(dataset):
            if record.neighborhood:
                continue  # already completed
            address = self._geocoder.reverse(record.latitude, record.longitude)
            dataset.replace(
                record.with_preparation(
                    county=address.county,
                    suburb=address.suburb,
                    neighborhood=address.neighborhood,
                    tip_summary=record.tip_summary,
                )
            )

    def summarize_tips(self, dataset: Dataset) -> None:
        """Step 2: one summarization call per POI (skips already-summarized)."""
        for record in list(dataset):
            if record.tip_summary or not record.tips:
                continue
            prompt = build_summarize_prompt(list(record.tips))
            completion = self._llm.chat(
                SUMMARIZE_MODEL, [ChatMessage("user", prompt)]
            )
            summary = parse_summary(completion.content)
            dataset.replace(
                record.with_preparation(
                    county=record.county,
                    suburb=record.suburb,
                    neighborhood=record.neighborhood,
                    tip_summary=summary,
                )
            )

    def generate_embeddings(self, dataset: Dataset, collection_name: str) -> None:
        """Step 3: embed each POI document and upsert into the collection."""
        collection = self._client.create_collection(
            collection_name, dim=self._embedder.dim, exist_ok=True,
            shards=self._shards,
        )
        # Secondary index on business_id accelerates id-set filters (the
        # R-tree filtering stage resolves ranges to id lists).
        collection.create_payload_index("business_id")
        points = []
        for record in dataset:
            vector = self._embedder.embed(record.document_text())
            payload = record.attributes(include_tips=True)
            payload["location"] = {
                "lat": record.latitude,
                "lon": record.longitude,
            }
            points.append(
                PointStruct(id=record.business_id, vector=vector, payload=payload)
            )
        collection.upsert(points)
        if self._eager_index:
            # Pay for graph construction here, not on the first query;
            # sharded collections build their per-shard graphs in
            # parallel worker processes.
            if isinstance(collection, ShardedCollection):
                collection.build_hnsw(parallel=self._index_workers)
            else:
                collection.build_hnsw()

    def prepare(self, dataset: Dataset, collection_name: str | None = None) -> PreparedCity:
        """Run all three steps; returns a handle for query processing."""
        name = collection_name or f"poi_{dataset.city_code.lower() or 'city'}"
        self.complete_address(dataset)
        if self._summarize:
            self.summarize_tips(dataset)
        self.generate_embeddings(dataset, name)
        return PreparedCity(
            dataset=dataset,
            collection_name=name,
            client=self._client,
            embedder=self._embedder,
        )
