"""Factory helpers for the paper's system variants."""

from __future__ import annotations

from repro.core.pipeline import SemaSK, SemaSKConfig
from repro.core.prepare import PreparedCity
from repro.llm.base import LLMClient


def semask(
    prepared: PreparedCity,
    llm: LLMClient | None = None,
    candidate_k: int = 10,
) -> SemaSK:
    """The full system: embedding filtering + GPT-4o refinement."""
    return SemaSK(
        prepared,
        SemaSKConfig(refine_model="gpt-4o", candidate_k=candidate_k),
        llm=llm,
    )


def semask_o1(
    prepared: PreparedCity,
    llm: LLMClient | None = None,
    candidate_k: int = 10,
) -> SemaSK:
    """SemaSK-O1: o1-mini instead of GPT-4o for refinement."""
    return SemaSK(
        prepared,
        SemaSKConfig(refine_model="o1-mini", candidate_k=candidate_k),
        llm=llm,
    )


def semask_em(prepared: PreparedCity, candidate_k: int = 10) -> SemaSK:
    """SemaSK-EM: embeddings only, refinement step forgone."""
    return SemaSK(
        prepared,
        SemaSKConfig(refine_model=None, candidate_k=candidate_k),
    )
