"""Tests for the Dataset container and persistence."""

from __future__ import annotations

import dataclasses

import pytest

from repro.data.dataset import Dataset
from repro.data.yelp import YelpStyleGenerator
from repro.errors import DatasetError
from repro.geo.bbox import BoundingBox
from repro.geo.regions import SANTA_BARBARA


@pytest.fixture(scope="module")
def dataset() -> Dataset:
    records = YelpStyleGenerator(seed=5).generate_city(SANTA_BARBARA, count=120)
    return Dataset(records, "SB")


class TestDataset:
    def test_len_and_iteration(self, dataset):
        assert len(dataset) == 120
        assert len(list(dataset)) == 120

    def test_get_by_id(self, dataset):
        record = dataset[0]
        assert dataset.get(record.business_id) is record

    def test_get_unknown_raises(self, dataset):
        with pytest.raises(KeyError):
            dataset.get("nope")

    def test_contains_id(self, dataset):
        assert dataset.contains_id(dataset[0].business_id)
        assert not dataset.contains_id("nope")

    def test_duplicate_ids_rejected(self, dataset):
        record = dataset[0]
        with pytest.raises(DatasetError, match="duplicate"):
            Dataset([record, record])

    def test_in_range_matches_linear_scan(self, dataset):
        box = BoundingBox.around(SANTA_BARBARA.center, 4, 4)
        expected = {
            r.business_id
            for r in dataset
            if box.contains_coords(r.latitude, r.longitude)
        }
        assert {r.business_id for r in dataset.in_range(box)} == expected

    def test_replace_swaps_record(self, dataset):
        record = dataset[3]
        updated = dataclasses.replace(record, tip_summary="A new summary.")
        dataset.replace(updated)
        assert dataset.get(record.business_id).tip_summary == "A new summary."
        assert dataset[3].tip_summary == "A new summary."

    def test_replace_unknown_raises(self, dataset):
        ghost = dataclasses.replace(dataset[0], business_id="ghost-id-123")
        with pytest.raises(DatasetError):
            dataset.replace(ghost)

    def test_statistics_keys(self, dataset):
        stats = dataset.statistics()
        assert set(stats) == {
            "poi_count", "avg_tips", "avg_tip_tokens", "avg_summary_tokens",
        }

    def test_statistics_empty_dataset(self):
        stats = Dataset([], "X").statistics()
        assert stats["poi_count"] == 0


class TestPersistence:
    def test_jsonl_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "sb.jsonl"
        dataset.save(path)
        loaded = Dataset.load(path)
        assert loaded.city_code == "SB"
        assert len(loaded) == len(dataset)
        assert loaded[0].to_dict() == dataset[0].to_dict()

    def test_gzip_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "sb.jsonl.gz"
        dataset.save(path)
        loaded = Dataset.load(path)
        assert len(loaded) == len(dataset)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            Dataset.load(tmp_path / "missing.jsonl")

    def test_load_corrupt_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"city_code": "X"}\nnot json\n')
        with pytest.raises(DatasetError, match="bad.jsonl:2"):
            Dataset.load(path)

    def test_profiles_survive_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "sb.jsonl"
        dataset.save(path)
        loaded = Dataset.load(path)
        assert loaded[0].profile == dataset[0].profile
