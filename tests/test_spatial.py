"""Tests for the spatial index substrate (R-tree, IR-tree, grid, inverted)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BoundingBox
from repro.geo.point import equirectangular_km
from repro.spatial.grid import GridIndex
from repro.spatial.inverted import InvertedIndex
from repro.spatial.irtree import IRTree
from repro.spatial.rtree import RTree


def random_points(n: int, seed: int = 0) -> list[tuple[int, float, float]]:
    rng = random.Random(seed)
    return [
        (i, rng.uniform(38.5, 38.8), rng.uniform(-90.4, -90.0))
        for i in range(n)
    ]


BOX = BoundingBox(38.55, -90.3, 38.65, -90.15)


def brute_range(points, box):
    return sorted(i for i, lat, lon in points if box.contains_coords(lat, lon))


class TestRTree:
    def test_bulk_load_range_matches_brute_force(self):
        points = random_points(2000, seed=1)
        tree = RTree.bulk_load(points)
        assert sorted(tree.range_query(BOX)) == brute_range(points, BOX)

    def test_incremental_insert_range_matches(self):
        points = random_points(800, seed=2)
        tree = RTree(max_entries=8)
        for i, lat, lon in points:
            tree.insert(i, lat, lon)
        assert sorted(tree.range_query(BOX)) == brute_range(points, BOX)

    def test_len(self):
        points = random_points(100)
        assert len(RTree.bulk_load(points)) == 100

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.range_query(BOX) == []
        assert tree.nearest(38.6, -90.2, 3) == []

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_nearest_matches_brute_force(self):
        points = random_points(500, seed=3)
        tree = RTree.bulk_load(points)
        qlat, qlon = 38.62, -90.21
        expected = sorted(
            points, key=lambda p: equirectangular_km(qlat, qlon, p[1], p[2])
        )[:5]
        got = tree.nearest(qlat, qlon, k=5)
        assert [i for i, _ in got] == [i for i, _, _ in expected]

    def test_nearest_distances_ascending(self):
        tree = RTree.bulk_load(random_points(300, seed=4))
        dists = [d for _, d in tree.nearest(38.6, -90.2, k=10)]
        assert dists == sorted(dists)

    def test_nearest_invalid_k(self):
        tree = RTree.bulk_load(random_points(10))
        with pytest.raises(ValueError):
            tree.nearest(38.6, -90.2, k=0)

    def test_height_grows_with_size(self):
        small = RTree.bulk_load(random_points(10))
        large = RTree.bulk_load(random_points(2000, seed=5))
        assert large.height() > small.height()

    def test_iter_entries_complete(self):
        points = random_points(150, seed=6)
        tree = RTree.bulk_load(points)
        assert sorted(e.object_id for e in tree.iter_entries()) == list(range(150))

    def test_node_capacity_respected(self):
        tree = RTree(max_entries=6)
        for i, lat, lon in random_points(400, seed=7):
            tree.insert(i, lat, lon)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.entries) <= 6
            else:
                assert len(node.children) <= 6
                stack.extend(node.children)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_range_query_property(self, seed):
        rng = random.Random(seed)
        points = [
            (i, rng.uniform(0, 1), rng.uniform(0, 1)) for i in range(120)
        ]
        box = BoundingBox(0.25, 0.25, 0.7, 0.7)
        tree = RTree.bulk_load(points, max_entries=5)
        assert sorted(tree.range_query(box)) == brute_range(points, box)


class TestIRTree:
    @pytest.fixture(scope="class")
    def irtree(self):
        points = random_points(600, seed=8)
        items = []
        for i, lat, lon in points:
            text = "cafe flat white" if i % 4 == 0 else "tire repair shop"
            if i % 8 == 0:
                text += " late night"
            items.append((i, lat, lon, text))
        return IRTree(items), points

    def test_range_keyword_and_semantics(self, irtree):
        tree, points = irtree
        hits = tree.range_keyword_query(BOX, ["cafe", "white"])
        assert hits
        assert all(h % 4 == 0 for h in hits)
        in_box = set(brute_range(points, BOX))
        assert all(h in in_box for h in hits)

    def test_range_keyword_or_semantics(self, irtree):
        tree, _ = irtree
        any_hits = tree.range_keyword_query(
            BOX, ["cafe", "tire"], match_all=False
        )
        all_hits = tree.range_keyword_query(BOX, ["cafe", "tire"])
        assert all_hits == []  # no doc has both
        assert any_hits

    def test_missing_keyword_prunes_everything(self, irtree):
        tree, _ = irtree
        assert tree.range_keyword_query(BOX, ["zzzunknown"]) == []

    def test_empty_keywords(self, irtree):
        tree, _ = irtree
        assert tree.range_keyword_query(BOX, []) == []

    def test_nearest_keyword_query_filters(self, irtree):
        tree, points = irtree
        results = tree.nearest_keyword_query(38.6, -90.2, ["cafe"], k=5)
        assert len(results) == 5
        assert all(i % 4 == 0 for i, _ in results)
        dists = [d for _, d in results]
        assert dists == sorted(dists)

    def test_nearest_keyword_matches_brute_force(self, irtree):
        tree, points = irtree
        got = tree.nearest_keyword_query(38.6, -90.2, ["late", "night"], k=3)
        eligible = [
            (i, lat, lon) for i, lat, lon in points if i % 8 == 0
        ]
        expected = sorted(
            eligible,
            key=lambda p: equirectangular_km(38.6, -90.2, p[1], p[2]),
        )[:3]
        assert [i for i, _ in got] == [i for i, _, _ in expected]

    def test_keywords_of(self, irtree):
        tree, _ = irtree
        assert "cafe" in tree.keywords_of(0)

    def test_invalid_k(self, irtree):
        tree, _ = irtree
        with pytest.raises(ValueError):
            tree.nearest_keyword_query(38.6, -90.2, ["cafe"], k=0)


class TestGridIndex:
    def test_range_matches_brute_force(self):
        points = random_points(1000, seed=9)
        grid = GridIndex(BoundingBox(38.5, -90.4, 38.8, -90.0), cells_per_axis=32)
        for i, lat, lon in points:
            grid.insert(i, lat, lon)
        assert sorted(grid.range_query(BOX)) == brute_range(points, BOX)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            GridIndex(BOX, cells_per_axis=0)

    def test_out_of_bounds_points_clamped_not_lost(self):
        grid = GridIndex(BoundingBox(0, 0, 1, 1), cells_per_axis=4)
        grid.insert("far", 5.0, 5.0)
        assert len(grid) == 1

    def test_occupancy_stats(self):
        grid = GridIndex(BoundingBox(0, 0, 1, 1), cells_per_axis=4)
        assert grid.occupancy()["cells_used"] == 0
        grid.insert("a", 0.5, 0.5)
        assert grid.occupancy()["cells_used"] == 1


class TestInvertedIndex:
    def test_postings_and_df(self):
        index = InvertedIndex()
        index.add_document("d1", ["cafe", "coffee", "coffee"])
        index.add_document("d2", ["coffee"])
        assert index.document_frequency("coffee") == 2
        assert index.postings("coffee")["d1"] == 2

    def test_duplicate_document_raises(self):
        index = InvertedIndex()
        index.add_document("d1", ["a"])
        with pytest.raises(ValueError):
            index.add_document("d1", ["b"])

    def test_documents_with_all(self):
        index = InvertedIndex()
        index.add_document("d1", ["a", "b"])
        index.add_document("d2", ["a"])
        assert index.documents_with_all(["a", "b"]) == {"d1"}
        assert index.documents_with_all(["a"]) == {"d1", "d2"}
        assert index.documents_with_all([]) == set()
        assert index.documents_with_all(["zzz"]) == set()

    def test_documents_with_any(self):
        index = InvertedIndex()
        index.add_document("d1", ["a"])
        index.add_document("d2", ["b"])
        assert index.documents_with_any(["a", "b"]) == {"d1", "d2"}

    def test_lengths(self):
        index = InvertedIndex()
        index.add_document("d1", ["a", "b", "c"])
        index.add_document("d2", ["a"])
        assert index.doc_length("d1") == 3
        assert index.average_doc_length() == 2.0
        assert index.doc_length("ghost") == 0

    def test_empty_index(self):
        index = InvertedIndex()
        assert len(index) == 0
        assert index.average_doc_length() == 0.0
        assert index.vocabulary_size == 0
